//! # p2pgrid-topology — wide-area network substrate
//!
//! The paper builds its emulated Internet with the Brite topology generator configured with the
//! **Waxman model** and assigns per-link bandwidths in the 0.1–10 Mb/s range (Table I).  The
//! schedulers only ever consume two quantities from that substrate:
//!
//! 1. the **effective end-to-end bandwidth** between a pair of peers (used for estimating data
//!    aggregation cost and actually timing transfers), and
//! 2. coarse **latency/locality** information (used implicitly through the bandwidth of nearby
//!    versus faraway peers).
//!
//! This crate reproduces that substrate from scratch:
//!
//! * [`Topology`] — an undirected weighted graph with node coordinates, per-edge bandwidth and
//!   propagation latency;
//! * [`WaxmanGenerator`] — the Waxman random-graph model with connectivity repair, the same
//!   model Brite uses for flat router-level topologies;
//! * [`PairwiseMetrics`] — all-pairs *bottleneck bandwidth* (widest path) and latency, computed
//!   with a rayon-parallel Dijkstra sweep;
//! * [`LandmarkEstimator`] — the landmark-based bandwidth prediction scheme the paper cites
//!   (each node only probes `log2 n` landmarks and pairwise bandwidth is estimated through the
//!   best common landmark);
//! * [`synthetic`] — tiny hand-constructed topologies for unit tests and examples.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod landmark;
pub mod paths;
pub mod synthetic;
pub mod waxman;

pub use graph::{EdgeProps, NodeId, Topology};
pub use landmark::LandmarkEstimator;
pub use paths::PairwiseMetrics;
pub use waxman::{WaxmanConfig, WaxmanGenerator};
