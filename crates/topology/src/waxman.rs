//! Waxman random topology generator (the model Brite uses for flat router-level topologies).
//!
//! Nodes are placed uniformly at random on an `L × L` plane.  Each pair `(u, v)` is connected
//! with probability
//!
//! ```text
//! P(u, v) = alpha * exp(-d(u, v) / (beta * L_max))
//! ```
//!
//! where `d` is the Euclidean distance and `L_max = L * sqrt(2)` is the plane diagonal.  Larger
//! `alpha` increases edge density; larger `beta` increases the fraction of long links.  Because
//! the raw model can leave the graph disconnected (the scheduler needs every resource node to
//! be reachable), the generator repairs connectivity by linking each secondary component to the
//! giant component through its geometrically closest node pair, mimicking Brite's behaviour of
//! producing connected graphs.
//!
//! Link bandwidths are drawn uniformly from the paper's 0.1–10 Mb/s range, and propagation
//! latency is proportional to distance (a 2 000 km-diagonal plane at ~5 µs/km, plus a fixed
//! per-hop forwarding cost).

use crate::graph::{EdgeProps, NodeId, Topology};
use p2pgrid_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Parameters of the Waxman generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaxmanConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Waxman `alpha` (overall edge density), typically 0.1–0.3.
    pub alpha: f64,
    /// Waxman `beta` (long-link preference), typically 0.1–0.3.
    pub beta: f64,
    /// Side length of the placement plane (arbitrary units; only ratios matter).
    pub plane_size: f64,
    /// Minimum link bandwidth in Mb/s (Table I: 0.1).
    pub min_bandwidth_mbps: f64,
    /// Maximum link bandwidth in Mb/s (Table I: 10).
    pub max_bandwidth_mbps: f64,
    /// Propagation delay in milliseconds per plane-distance unit.
    pub latency_ms_per_unit: f64,
    /// Fixed per-hop forwarding latency in milliseconds.
    pub hop_latency_ms: f64,
}

impl Default for WaxmanConfig {
    fn default() -> Self {
        WaxmanConfig {
            nodes: 200,
            alpha: 0.15,
            beta: 0.2,
            plane_size: 1000.0,
            min_bandwidth_mbps: 0.1,
            max_bandwidth_mbps: 10.0,
            latency_ms_per_unit: 0.01,
            hop_latency_ms: 1.0,
        }
    }
}

impl WaxmanConfig {
    /// Convenience constructor that keeps every default except the node count.
    pub fn with_nodes(nodes: usize) -> Self {
        WaxmanConfig {
            nodes,
            ..WaxmanConfig::default()
        }
    }

    fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        assert!(
            self.beta > 0.0 && self.beta <= 1.0,
            "beta must be in (0, 1]"
        );
        assert!(self.plane_size > 0.0, "plane size must be positive");
        assert!(
            self.min_bandwidth_mbps > 0.0 && self.max_bandwidth_mbps >= self.min_bandwidth_mbps,
            "bandwidth range must be positive and non-empty"
        );
    }
}

/// The Waxman topology generator.
#[derive(Debug, Clone)]
pub struct WaxmanGenerator {
    config: WaxmanConfig,
}

impl WaxmanGenerator {
    /// Create a generator for the given configuration.
    pub fn new(config: WaxmanConfig) -> Self {
        config.validate();
        WaxmanGenerator { config }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &WaxmanConfig {
        &self.config
    }

    /// Generate a connected topology using the supplied RNG.
    pub fn generate(&self, rng: &mut SimRng) -> Topology {
        let cfg = &self.config;
        let n = cfg.nodes;
        let coords: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0.0..cfg.plane_size),
                    rng.gen_range(0.0..cfg.plane_size),
                )
            })
            .collect();
        let mut topo = Topology::new(coords);
        if n <= 1 {
            return topo;
        }
        let l_max = cfg.plane_size * std::f64::consts::SQRT_2;

        for u in 0..n {
            for v in (u + 1)..n {
                let d = topo.distance(u, v);
                let p = cfg.alpha * (-d / (cfg.beta * l_max)).exp();
                if rng.gen_bool(p) {
                    topo.add_edge(u, v, self.sample_edge(rng, d));
                }
            }
        }
        self.repair_connectivity(&mut topo, rng);
        topo
    }

    /// Draw bandwidth and latency for a link spanning distance `d`.
    fn sample_edge(&self, rng: &mut SimRng, d: f64) -> EdgeProps {
        let cfg = &self.config;
        EdgeProps {
            bandwidth_mbps: rng.gen_range(cfg.min_bandwidth_mbps..=cfg.max_bandwidth_mbps),
            latency_ms: cfg.hop_latency_ms + d * cfg.latency_ms_per_unit,
        }
    }

    /// Link every secondary component to the largest component through the geometrically
    /// closest cross-component node pair.
    fn repair_connectivity(&self, topo: &mut Topology, rng: &mut SimRng) {
        loop {
            let (k, comp) = topo.connected_components();
            if k <= 1 {
                return;
            }
            // Identify the largest component.
            let mut sizes = vec![0usize; k];
            for &c in &comp {
                sizes[c] += 1;
            }
            let giant = sizes
                .iter()
                .enumerate()
                .max_by_key(|(_, &s)| s)
                .map(|(i, _)| i)
                .expect("at least one component");
            // For every other component, attach its closest node to the closest giant node.
            let giant_nodes: Vec<NodeId> = (0..topo.node_count())
                .filter(|&u| comp[u] == giant)
                .collect();
            for c in 0..k {
                if c == giant {
                    continue;
                }
                let members: Vec<NodeId> =
                    (0..topo.node_count()).filter(|&u| comp[u] == c).collect();
                let mut best: Option<(f64, NodeId, NodeId)> = None;
                for &u in &members {
                    for &v in &giant_nodes {
                        let d = topo.distance(u, v);
                        if best.is_none_or(|(bd, _, _)| d < bd) {
                            best = Some((d, u, v));
                        }
                    }
                }
                let (d, u, v) = best.expect("both components are non-empty");
                topo.add_edge(u, v, self.sample_edge(rng, d));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64) -> Topology {
        let mut rng = SimRng::seed_from_u64(seed);
        WaxmanGenerator::new(WaxmanConfig::with_nodes(n)).generate(&mut rng)
    }

    #[test]
    fn generates_requested_node_count() {
        for &n in &[1usize, 2, 10, 100] {
            let t = gen(n, 1);
            assert_eq!(t.node_count(), n);
        }
    }

    #[test]
    fn generated_topology_is_connected() {
        for seed in 0..5 {
            let t = gen(100, seed);
            assert!(
                t.is_connected(),
                "seed {seed} produced a disconnected graph"
            );
        }
    }

    #[test]
    fn bandwidths_respect_table_i_range() {
        let t = gen(150, 9);
        for (_, _, p) in t.edges() {
            assert!(
                (0.1..=10.0).contains(&p.bandwidth_mbps),
                "bandwidth {} outside Table I range",
                p.bandwidth_mbps
            );
            assert!(p.latency_ms >= 1.0, "latency must include the per-hop cost");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = gen(80, 42);
        let b = gen(80, 42);
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a
            .edges()
            .map(|(u, v, p)| (u, v, p.bandwidth_mbps.to_bits()))
            .collect();
        let eb: Vec<_> = b
            .edges()
            .map(|(u, v, p)| (u, v, p.bandwidth_mbps.to_bits()))
            .collect();
        assert_eq!(ea, eb);
        let c = gen(80, 43);
        let ec: Vec<_> = c
            .edges()
            .map(|(u, v, p)| (u, v, p.bandwidth_mbps.to_bits()))
            .collect();
        assert_ne!(ea, ec);
    }

    #[test]
    fn higher_alpha_gives_denser_graphs() {
        let mut rng_a = SimRng::seed_from_u64(5);
        let mut rng_b = SimRng::seed_from_u64(5);
        let sparse = WaxmanGenerator::new(WaxmanConfig {
            nodes: 120,
            alpha: 0.05,
            ..WaxmanConfig::default()
        })
        .generate(&mut rng_a);
        let dense = WaxmanGenerator::new(WaxmanConfig {
            nodes: 120,
            alpha: 0.5,
            ..WaxmanConfig::default()
        })
        .generate(&mut rng_b);
        assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        WaxmanGenerator::new(WaxmanConfig {
            alpha: 0.0,
            ..WaxmanConfig::default()
        });
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let t0 = gen(0, 3);
        assert_eq!(t0.node_count(), 0);
        let t1 = gen(1, 3);
        assert_eq!(t1.edge_count(), 0);
        let t2 = gen(2, 3);
        assert!(t2.is_connected());
    }
}
