//! Landmark-based bandwidth estimation.
//!
//! The paper estimates network status with a "landmark based mechanism" (its reference \[17\]):
//! each node only monitors its links towards `log2(n)` landmark nodes and propagates that list
//! through the epidemic gossip protocol, after which every node can *estimate* the bandwidth of
//! any pair without ever probing it directly.  The classic landmark estimate of the bandwidth
//! between `u` and `v` is the best bottleneck through a common landmark:
//!
//! ```text
//! est(u, v) = max over landmarks L of min(bw(u, L), bw(L, v))
//! ```
//!
//! This under-estimates the true widest-path bandwidth (the real best path need not pass
//! through a landmark) but requires only `O(n log n)` probes instead of `O(n^2)`.

use crate::graph::NodeId;
use crate::paths::PairwiseMetrics;
use p2pgrid_sim::SimRng;

/// Landmark-based estimator of pairwise bandwidth.
#[derive(Debug, Clone)]
pub struct LandmarkEstimator {
    landmarks: Vec<NodeId>,
    /// `probes[u][k]` = measured bandwidth from node `u` to landmark `k` (Mb/s).
    probes: Vec<Vec<f64>>,
}

impl LandmarkEstimator {
    /// Number of landmarks the paper prescribes for an `n`-node system: `ceil(log2 n)`, at
    /// least 1.
    pub fn recommended_landmark_count(n: usize) -> usize {
        if n <= 2 {
            1
        } else {
            (n as f64).log2().ceil() as usize
        }
    }

    /// Build an estimator by choosing `k` random landmarks and probing every node's bandwidth
    /// towards each of them using the ground-truth metrics.
    pub fn build(metrics: &PairwiseMetrics, k: usize, rng: &mut SimRng) -> Self {
        let n = metrics.node_count();
        let k = k.clamp(1, n.max(1));
        let all: Vec<NodeId> = (0..n).collect();
        let landmarks: Vec<NodeId> = rng.choose_multiple(&all, k).into_iter().copied().collect();
        let probes = (0..n)
            .map(|u| {
                landmarks
                    .iter()
                    .map(|&l| {
                        let bw = metrics.bandwidth_mbps(u, l);
                        if bw.is_infinite() {
                            // A landmark probing itself sees "infinite" local bandwidth; cap it
                            // with its best real link so estimates stay finite.
                            (0..n)
                                .filter(|&v| v != u)
                                .map(|v| metrics.bandwidth_mbps(u, v))
                                .fold(0.0f64, f64::max)
                        } else {
                            bw
                        }
                    })
                    .collect()
            })
            .collect();
        LandmarkEstimator { landmarks, probes }
    }

    /// Build an estimator with the paper-recommended `log2(n)` landmarks.
    pub fn build_default(metrics: &PairwiseMetrics, rng: &mut SimRng) -> Self {
        let k = Self::recommended_landmark_count(metrics.node_count());
        Self::build(metrics, k, rng)
    }

    /// The chosen landmark nodes.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Estimate the bandwidth between `u` and `v` in Mb/s.
    pub fn estimate_bandwidth_mbps(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return f64::INFINITY;
        }
        self.landmarks
            .iter()
            .enumerate()
            .map(|(k, _)| self.probes[u][k].min(self.probes[v][k]))
            .fold(0.0f64, f64::max)
    }

    /// Mean relative error of the estimate against ground truth over all connected pairs.
    pub fn mean_relative_error(&self, metrics: &PairwiseMetrics) -> f64 {
        let n = metrics.node_count();
        let mut sum = 0.0;
        let mut cnt = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                let truth = metrics.bandwidth_mbps(u, v);
                if truth <= 0.0 || truth.is_infinite() {
                    continue;
                }
                let est = self.estimate_bandwidth_mbps(u, v);
                sum += (est - truth).abs() / truth;
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum / cnt as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waxman::{WaxmanConfig, WaxmanGenerator};

    fn setup(n: usize, seed: u64) -> (PairwiseMetrics, SimRng) {
        let mut rng = SimRng::seed_from_u64(seed);
        let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(n)).generate(&mut rng);
        (PairwiseMetrics::compute(&topo), rng)
    }

    #[test]
    fn recommended_count_is_log2() {
        assert_eq!(LandmarkEstimator::recommended_landmark_count(2), 1);
        assert_eq!(LandmarkEstimator::recommended_landmark_count(1024), 10);
        assert_eq!(LandmarkEstimator::recommended_landmark_count(1000), 10);
        assert_eq!(LandmarkEstimator::recommended_landmark_count(1_000_000), 20);
    }

    #[test]
    fn estimates_never_exceed_ground_truth_widest_path() {
        let (metrics, mut rng) = setup(60, 5);
        let est = LandmarkEstimator::build_default(&metrics, &mut rng);
        for u in 0..metrics.node_count() {
            for v in 0..metrics.node_count() {
                if u == v {
                    continue;
                }
                let e = est.estimate_bandwidth_mbps(u, v);
                let t = metrics.bandwidth_mbps(u, v);
                assert!(
                    e <= t + 1e-6,
                    "landmark estimate {e} exceeded ground truth {t} for ({u},{v})"
                );
                assert!(e >= 0.0);
            }
        }
    }

    #[test]
    fn estimate_is_symmetric() {
        let (metrics, mut rng) = setup(40, 7);
        let est = LandmarkEstimator::build_default(&metrics, &mut rng);
        for u in 0..40 {
            for v in 0..40 {
                let a = est.estimate_bandwidth_mbps(u, v);
                let b = est.estimate_bandwidth_mbps(v, u);
                if u == v {
                    assert_eq!(a, f64::INFINITY);
                } else {
                    assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn more_landmarks_reduce_error() {
        let (metrics, rng) = setup(80, 11);
        let few = LandmarkEstimator::build(&metrics, 2, &mut rng.derive("few"));
        let many = LandmarkEstimator::build(&metrics, 40, &mut rng.derive("many"));
        let err_few = few.mean_relative_error(&metrics);
        let err_many = many.mean_relative_error(&metrics);
        assert!(
            err_many <= err_few + 1e-9,
            "error with 40 landmarks ({err_many}) should not exceed error with 2 ({err_few})"
        );
    }

    #[test]
    fn landmark_count_is_clamped_to_node_count() {
        let (metrics, mut rng) = setup(5, 13);
        let est = LandmarkEstimator::build(&metrics, 100, &mut rng);
        assert_eq!(est.landmarks().len(), 5);
        let est1 = LandmarkEstimator::build(&metrics, 0, &mut rng);
        assert_eq!(est1.landmarks().len(), 1);
    }

    #[test]
    fn error_is_moderate_on_wan_topologies() {
        let (metrics, mut rng) = setup(100, 23);
        let est = LandmarkEstimator::build_default(&metrics, &mut rng);
        let err = est.mean_relative_error(&metrics);
        // The estimate is a lower bound; with log2(n) landmarks it should still be within a
        // reasonable band of the truth on Waxman graphs.
        assert!(err < 0.9, "mean relative error unexpectedly large: {err}");
    }
}
