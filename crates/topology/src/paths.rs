//! All-pairs end-to-end network metrics.
//!
//! The schedulers consume pairwise *effective bandwidth* (for data aggregation times) and
//! *latency* (for locality).  On a multi-hop WAN the effective bandwidth of a pair is the
//! **bottleneck bandwidth of the widest path** between them, and the latency is the length of
//! the shortest (minimum-latency) path.  [`PairwiseMetrics`] precomputes both matrices with a
//! Dijkstra sweep from every source, parallelised across sources with rayon — at the paper's
//! maximum scale (2 000 nodes) this is a few million relaxations and finishes in well under a
//! second.

use crate::graph::{NodeId, Topology};
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Dense all-pairs bandwidth/latency matrices.
#[derive(Debug, Clone)]
pub struct PairwiseMetrics {
    n: usize,
    /// Bottleneck bandwidth of the widest path, Mb/s; 0 when unreachable.
    bandwidth: Vec<f32>,
    /// Latency of the minimum-latency path, ms; +inf when unreachable.
    latency: Vec<f32>,
    avg_bandwidth: f64,
}

impl PairwiseMetrics {
    /// Compute all-pairs metrics for `topo`.
    pub fn compute(topo: &Topology) -> Self {
        let n = topo.node_count();
        let rows: Vec<(Vec<f32>, Vec<f32>)> = (0..n)
            .into_par_iter()
            .map(|src| single_source(topo, src))
            .collect();
        let mut bandwidth = Vec::with_capacity(n * n);
        let mut latency = Vec::with_capacity(n * n);
        for (bw_row, lat_row) in rows {
            bandwidth.extend_from_slice(&bw_row);
            latency.extend_from_slice(&lat_row);
        }
        let mut sum = 0.0f64;
        let mut cnt = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                let b = bandwidth[u * n + v] as f64;
                if b > 0.0 {
                    sum += b;
                    cnt += 1;
                }
            }
        }
        let avg_bandwidth = if cnt > 0 { sum / cnt as f64 } else { 0.0 };
        PairwiseMetrics {
            n,
            bandwidth,
            latency,
            avg_bandwidth,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Effective (bottleneck) bandwidth between `u` and `v` in Mb/s.
    ///
    /// Returns `f64::INFINITY` for `u == v` (a local transfer takes no time) and `0.0` when the
    /// pair is disconnected.
    pub fn bandwidth_mbps(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return f64::INFINITY;
        }
        self.bandwidth[u * self.n + v] as f64
    }

    /// Minimum path latency between `u` and `v` in milliseconds (0 for `u == v`).
    pub fn latency_ms(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        self.latency[u * self.n + v] as f64
    }

    /// True pairwise-average effective bandwidth over all connected ordered pairs, Mb/s.
    ///
    /// This is the ground-truth value that the aggregation gossip protocol estimates.
    pub fn average_bandwidth_mbps(&self) -> f64 {
        self.avg_bandwidth
    }

    /// Time in seconds to move `megabits` of data from `u` to `v`.
    ///
    /// Local transfers are free; transfers between disconnected nodes take infinitely long.
    pub fn transfer_secs(&self, u: NodeId, v: NodeId, megabits: f64) -> f64 {
        if u == v || megabits <= 0.0 {
            return 0.0;
        }
        let bw = self.bandwidth_mbps(u, v);
        if bw <= 0.0 {
            return f64::INFINITY;
        }
        megabits / bw + self.latency_ms(u, v) / 1000.0
    }
}

/// Widest-path bandwidth and shortest-path latency from a single source.
fn single_source(topo: &Topology, src: NodeId) -> (Vec<f32>, Vec<f32>) {
    let n = topo.node_count();
    let mut best_bw = vec![0.0f32; n];
    let mut best_lat = vec![f32::INFINITY; n];

    // Widest path (maximise the minimum edge bandwidth along the path): Dijkstra variant with a
    // max-heap keyed on bottleneck bandwidth.
    #[derive(PartialEq)]
    struct BwEntry(f32, NodeId);
    impl Eq for BwEntry {}
    impl PartialOrd for BwEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for BwEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            // total_cmp: a NaN key (conceivable only from corrupt edge props) must not be
            // able to poison the heap order the way `partial_cmp -> Equal` could.
            self.0.total_cmp(&other.0)
        }
    }
    let mut heap = BinaryHeap::new();
    best_bw[src] = f32::INFINITY;
    heap.push(BwEntry(f32::INFINITY, src));
    while let Some(BwEntry(bw, u)) = heap.pop() {
        if bw < best_bw[u] {
            continue;
        }
        for a in topo.neighbors(u) {
            let cand = bw.min(a.props.bandwidth_mbps as f32);
            if cand > best_bw[a.to] {
                best_bw[a.to] = cand;
                heap.push(BwEntry(cand, a.to));
            }
        }
    }
    best_bw[src] = f32::INFINITY;

    // Shortest latency path: standard Dijkstra with a min-heap (negated keys in a max-heap).
    #[derive(PartialEq)]
    struct LatEntry(f32, NodeId);
    impl Eq for LatEntry {}
    impl PartialOrd for LatEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for LatEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse (total_cmp): smaller latency pops first, NaN-proof like BwEntry.
            other.0.total_cmp(&self.0)
        }
    }
    let mut heap = BinaryHeap::new();
    best_lat[src] = 0.0;
    heap.push(LatEntry(0.0, src));
    while let Some(LatEntry(lat, u)) = heap.pop() {
        if lat > best_lat[u] {
            continue;
        }
        for a in topo.neighbors(u) {
            let cand = lat + a.props.latency_ms as f32;
            if cand < best_lat[a.to] {
                best_lat[a.to] = cand;
                heap.push(LatEntry(cand, a.to));
            }
        }
    }

    (best_bw, best_lat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeProps;
    use crate::waxman::{WaxmanConfig, WaxmanGenerator};
    use p2pgrid_sim::SimRng;
    use proptest::prelude::*;

    fn props(bw: f64, lat: f64) -> EdgeProps {
        EdgeProps {
            bandwidth_mbps: bw,
            latency_ms: lat,
        }
    }

    /// A 4-node line: 0 -10-> 1 -2-> 2 -8-> 3, plus a slow shortcut 0 -1-> 3.
    fn line_with_shortcut() -> Topology {
        let mut t = Topology::with_unplaced_nodes(4);
        t.add_edge(0, 1, props(10.0, 1.0));
        t.add_edge(1, 2, props(2.0, 1.0));
        t.add_edge(2, 3, props(8.0, 1.0));
        t.add_edge(0, 3, props(1.0, 10.0));
        t
    }

    #[test]
    fn widest_path_prefers_high_bottleneck_route() {
        let t = line_with_shortcut();
        let m = PairwiseMetrics::compute(&t);
        // 0 -> 3 via the line has bottleneck 2.0 (edge 1-2); the direct shortcut is only 1.0.
        assert!((m.bandwidth_mbps(0, 3) - 2.0).abs() < 1e-6);
        // 0 -> 2 bottleneck is 2.0 as well.
        assert!((m.bandwidth_mbps(0, 2) - 2.0).abs() < 1e-6);
        // Direct neighbours use their own link.
        assert!((m.bandwidth_mbps(0, 1) - 10.0).abs() < 1e-6);
        // Symmetric.
        assert!((m.bandwidth_mbps(3, 0) - m.bandwidth_mbps(0, 3)).abs() < 1e-6);
    }

    #[test]
    fn latency_uses_shortest_path() {
        let t = line_with_shortcut();
        let m = PairwiseMetrics::compute(&t);
        // 0 -> 3: line costs 3 ms, shortcut costs 10 ms.
        assert!((m.latency_ms(0, 3) - 3.0).abs() < 1e-5);
        assert_eq!(m.latency_ms(2, 2), 0.0);
    }

    #[test]
    fn self_pairs_are_free_and_disconnected_pairs_are_infinite() {
        let mut t = Topology::with_unplaced_nodes(3);
        t.add_edge(0, 1, props(4.0, 1.0));
        let m = PairwiseMetrics::compute(&t);
        assert_eq!(m.bandwidth_mbps(0, 0), f64::INFINITY);
        assert_eq!(m.transfer_secs(0, 0, 1000.0), 0.0);
        assert_eq!(m.bandwidth_mbps(0, 2), 0.0);
        assert_eq!(m.transfer_secs(0, 2, 1.0), f64::INFINITY);
    }

    #[test]
    fn transfer_time_matches_size_over_bandwidth() {
        let mut t = Topology::with_unplaced_nodes(2);
        t.add_edge(0, 1, props(5.0, 20.0));
        let m = PairwiseMetrics::compute(&t);
        // 100 Mb over 5 Mb/s = 20 s, plus 20 ms latency.
        let secs = m.transfer_secs(0, 1, 100.0);
        assert!((secs - 20.02).abs() < 1e-9);
        assert_eq!(m.transfer_secs(0, 1, 0.0), 0.0);
    }

    #[test]
    fn average_bandwidth_is_positive_on_connected_graphs() {
        let mut rng = SimRng::seed_from_u64(17);
        let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(60)).generate(&mut rng);
        let m = PairwiseMetrics::compute(&topo);
        assert!(m.average_bandwidth_mbps() > 0.0);
        assert!(m.average_bandwidth_mbps() <= 10.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// On any connected Waxman topology: bandwidth is symmetric, bounded by the best link,
        /// and every pair is reachable.
        #[test]
        fn prop_pairwise_invariants(seed in 0u64..500, n in 5usize..40) {
            let mut rng = SimRng::seed_from_u64(seed);
            let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(n)).generate(&mut rng);
            let max_edge_bw = topo
                .edges()
                .map(|(_, _, p)| p.bandwidth_mbps)
                .fold(0.0f64, f64::max);
            let m = PairwiseMetrics::compute(&topo);
            for u in 0..n {
                for v in 0..n {
                    if u == v { continue; }
                    let bw = m.bandwidth_mbps(u, v);
                    prop_assert!(bw > 0.0, "pair ({u},{v}) unreachable on a connected graph");
                    prop_assert!(bw <= max_edge_bw + 1e-6);
                    prop_assert!((bw - m.bandwidth_mbps(v, u)).abs() < 1e-6);
                    prop_assert!(m.latency_ms(u, v).is_finite());
                }
            }
        }
    }
}
