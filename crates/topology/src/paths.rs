//! All-pairs end-to-end network metrics.
//!
//! The schedulers consume pairwise *effective bandwidth* (for data aggregation times) and
//! *latency* (for locality).  On a multi-hop WAN the effective bandwidth of a pair is the
//! **bottleneck bandwidth of the widest path** between them, and the latency is the length of
//! the shortest (minimum-latency) path.  [`PairwiseMetrics`] precomputes both dense matrices.
//!
//! Both metrics are symmetric because the graph is undirected, and the bandwidth metric has
//! extra structure this module exploits: on an undirected graph the widest-path bottleneck
//! between `u` and `v` equals the minimum edge weight on the `u`–`v` path of a **maximum
//! spanning tree** (the classic maximin-path property).  So instead of running a widest-path
//! Dijkstra from every source (`O(n·m log n)`), `compute` builds one maximum spanning forest
//! with Kruskal (`O(m log m)`) and then fills each source's row with an `O(n)` tree walk —
//! roughly halving the all-pairs build, which dominates `Scenario::build` at paper scale.
//! Latency still needs one Dijkstra per source, parallelised across sources with rayon; its
//! lower triangle is mirrored from the upper one so that `latency(u,v)` and `latency(v,u)`
//! are bit-identical (path sums accumulate in opposite edge order otherwise, and f32
//! addition is not associative).

use crate::graph::{NodeId, Topology};
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Dense all-pairs bandwidth/latency matrices.
#[derive(Debug, Clone)]
pub struct PairwiseMetrics {
    n: usize,
    /// Bottleneck bandwidth of the widest path, Mb/s; 0 when unreachable.
    bandwidth: Vec<f32>,
    /// Latency of the minimum-latency path, ms; +inf when unreachable.
    latency: Vec<f32>,
    avg_bandwidth: f64,
    /// Smallest positive finite pairwise latency, ms; +inf when no pair is connected.
    min_positive_latency_ms: f64,
}

impl PairwiseMetrics {
    /// Compute all-pairs metrics for `topo`.
    pub fn compute(topo: &Topology) -> Self {
        let n = topo.node_count();
        let forest = MaxSpanningForest::build(topo);
        let rows: Vec<(Vec<f32>, Vec<f32>)> = (0..n)
            .into_par_iter()
            .map(|src| (forest.bottleneck_row(src), latency_row(topo, src)))
            .collect();
        let mut bandwidth = Vec::with_capacity(n * n);
        let mut latency = Vec::with_capacity(n * n);
        for (bw_row, lat_row) in rows {
            bandwidth.extend_from_slice(&bw_row);
            latency.extend_from_slice(&lat_row);
        }
        // Mirror the latency lower triangle from the upper one: the metric is symmetric,
        // but summing a path's edges from the other end can differ in the last f32 bit.
        for u in 0..n {
            for v in (u + 1)..n {
                latency[v * n + u] = latency[u * n + v];
            }
        }
        let mut sum = 0.0f64;
        let mut cnt = 0u64;
        let mut min_lat = f64::INFINITY;
        for u in 0..n {
            for v in (u + 1)..n {
                let b = bandwidth[u * n + v] as f64;
                if b > 0.0 {
                    sum += b;
                    cnt += 1;
                }
                let l = latency[u * n + v] as f64;
                if l > 0.0 && l.is_finite() && l < min_lat {
                    min_lat = l;
                }
            }
        }
        let avg_bandwidth = if cnt > 0 { sum / cnt as f64 } else { 0.0 };
        PairwiseMetrics {
            n,
            bandwidth,
            latency,
            avg_bandwidth,
            min_positive_latency_ms: min_lat,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Effective (bottleneck) bandwidth between `u` and `v` in Mb/s.
    ///
    /// Returns `f64::INFINITY` for `u == v` (a local transfer takes no time) and `0.0` when the
    /// pair is disconnected.
    pub fn bandwidth_mbps(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return f64::INFINITY;
        }
        self.bandwidth[u * self.n + v] as f64
    }

    /// Minimum path latency between `u` and `v` in milliseconds (0 for `u == v`).
    pub fn latency_ms(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        self.latency[u * self.n + v] as f64
    }

    /// True pairwise-average effective bandwidth over all connected ordered pairs, Mb/s.
    ///
    /// This is the ground-truth value that the aggregation gossip protocol estimates.
    pub fn average_bandwidth_mbps(&self) -> f64 {
        self.avg_bandwidth
    }

    /// Smallest positive finite pairwise path latency in milliseconds.
    ///
    /// Any data transfer between two *distinct* connected nodes takes at least this long, so
    /// it lower-bounds the cross-node interaction delay — the quantity a conservative PDES
    /// lookahead is derived from.  `f64::INFINITY` when no two nodes are connected (a
    /// single-node or fully disconnected topology), in which case callers should fall back to
    /// another bound (e.g. the gossip interval).
    pub fn min_positive_latency_ms(&self) -> f64 {
        self.min_positive_latency_ms
    }

    /// Time in seconds to move `megabits` of data from `u` to `v`.
    ///
    /// Local transfers are free; transfers between disconnected nodes take infinitely long.
    pub fn transfer_secs(&self, u: NodeId, v: NodeId, megabits: f64) -> f64 {
        if u == v || megabits <= 0.0 {
            return 0.0;
        }
        let bw = self.bandwidth_mbps(u, v);
        if bw <= 0.0 {
            return f64::INFINITY;
        }
        megabits / bw + self.latency_ms(u, v) / 1000.0
    }
}

/// A maximum spanning forest of the topology, weighted by link bandwidth.
///
/// The maximin-path property of undirected graphs: for every pair `(u, v)` in the same
/// component, the bottleneck bandwidth of the widest `u`–`v` path equals the minimum edge
/// weight on the unique `u`–`v` path through the maximum spanning tree.  Both sides of the
/// equality are the same element of the edge-weight multiset (compared as the `f32` the
/// matrices store), so rows derived from the forest are bit-identical to what a widest-path
/// Dijkstra would produce.
struct MaxSpanningForest {
    /// Tree adjacency: `(neighbour, edge bandwidth)`; at most `n - 1` edges total.
    adj: Vec<Vec<(NodeId, f32)>>,
}

impl MaxSpanningForest {
    /// Kruskal over edges sorted by descending bandwidth, with union-find by path halving.
    fn build(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut edges: Vec<(f32, NodeId, NodeId)> = topo
            .edges()
            .map(|(u, v, props)| (props.bandwidth_mbps as f32, u, v))
            .collect();
        edges.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));

        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        let mut adj = vec![Vec::new(); n];
        let mut joined = 0usize;
        for (bw, u, v) in edges {
            if n > 0 && joined == n - 1 {
                break;
            }
            let ru = find(&mut parent, u);
            let rv = find(&mut parent, v);
            if ru != rv {
                parent[ru] = rv;
                adj[u].push((v, bw));
                adj[v].push((u, bw));
                joined += 1;
            }
        }
        MaxSpanningForest { adj }
    }

    /// Bottleneck bandwidth from `src` to every node: one DFS over the forest, propagating
    /// the running minimum edge weight.  Nodes in other components stay at 0.
    fn bottleneck_row(&self, src: NodeId) -> Vec<f32> {
        let n = self.adj.len();
        let mut row = vec![0.0f32; n];
        row[src] = f32::INFINITY;
        let mut stack = vec![(src, f32::INFINITY)];
        while let Some((u, bottleneck)) = stack.pop() {
            for &(v, edge_bw) in &self.adj[u] {
                // Edge bandwidths are strictly positive, so 0.0 marks "not visited yet"
                // (src itself is already set to +inf).
                if row[v] == 0.0 {
                    let cand = bottleneck.min(edge_bw);
                    row[v] = cand;
                    stack.push((v, cand));
                }
            }
        }
        row
    }
}

/// Shortest-latency distances from a single source: standard Dijkstra with a min-heap.
fn latency_row(topo: &Topology, src: NodeId) -> Vec<f32> {
    let n = topo.node_count();
    let mut best_lat = vec![f32::INFINITY; n];

    #[derive(PartialEq)]
    struct LatEntry(f32, NodeId);
    impl Eq for LatEntry {}
    impl PartialOrd for LatEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for LatEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse (total_cmp): smaller latency pops first; a NaN key (conceivable only
            // from corrupt edge props) must not be able to poison the heap order the way
            // `partial_cmp -> Equal` could.
            other.0.total_cmp(&self.0)
        }
    }
    let mut heap = BinaryHeap::new();
    best_lat[src] = 0.0;
    heap.push(LatEntry(0.0, src));
    while let Some(LatEntry(lat, u)) = heap.pop() {
        if lat > best_lat[u] {
            continue;
        }
        for a in topo.neighbors(u) {
            let cand = lat + a.props.latency_ms as f32;
            if cand < best_lat[a.to] {
                best_lat[a.to] = cand;
                heap.push(LatEntry(cand, a.to));
            }
        }
    }

    best_lat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeProps;
    use crate::waxman::{WaxmanConfig, WaxmanGenerator};
    use p2pgrid_sim::SimRng;
    use proptest::prelude::*;

    fn props(bw: f64, lat: f64) -> EdgeProps {
        EdgeProps {
            bandwidth_mbps: bw,
            latency_ms: lat,
        }
    }

    /// Reference widest-path computation: Dijkstra variant with a max-heap keyed on the
    /// bottleneck bandwidth (the pre-spanning-forest implementation, kept as an oracle).
    fn reference_widest_row(topo: &Topology, src: NodeId) -> Vec<f32> {
        let n = topo.node_count();
        let mut best_bw = vec![0.0f32; n];

        #[derive(PartialEq)]
        struct BwEntry(f32, NodeId);
        impl Eq for BwEntry {}
        impl PartialOrd for BwEntry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for BwEntry {
            fn cmp(&self, other: &Self) -> Ordering {
                self.0.total_cmp(&other.0)
            }
        }
        let mut heap = BinaryHeap::new();
        best_bw[src] = f32::INFINITY;
        heap.push(BwEntry(f32::INFINITY, src));
        while let Some(BwEntry(bw, u)) = heap.pop() {
            if bw < best_bw[u] {
                continue;
            }
            for a in topo.neighbors(u) {
                let cand = bw.min(a.props.bandwidth_mbps as f32);
                if cand > best_bw[a.to] {
                    best_bw[a.to] = cand;
                    heap.push(BwEntry(cand, a.to));
                }
            }
        }
        best_bw[src] = f32::INFINITY;
        best_bw
    }

    /// A 4-node line: 0 -10-> 1 -2-> 2 -8-> 3, plus a slow shortcut 0 -1-> 3.
    fn line_with_shortcut() -> Topology {
        let mut t = Topology::with_unplaced_nodes(4);
        t.add_edge(0, 1, props(10.0, 1.0));
        t.add_edge(1, 2, props(2.0, 1.0));
        t.add_edge(2, 3, props(8.0, 1.0));
        t.add_edge(0, 3, props(1.0, 10.0));
        t
    }

    #[test]
    fn widest_path_prefers_high_bottleneck_route() {
        let t = line_with_shortcut();
        let m = PairwiseMetrics::compute(&t);
        // 0 -> 3 via the line has bottleneck 2.0 (edge 1-2); the direct shortcut is only 1.0.
        assert!((m.bandwidth_mbps(0, 3) - 2.0).abs() < 1e-6);
        // 0 -> 2 bottleneck is 2.0 as well.
        assert!((m.bandwidth_mbps(0, 2) - 2.0).abs() < 1e-6);
        // Direct neighbours use their own link.
        assert!((m.bandwidth_mbps(0, 1) - 10.0).abs() < 1e-6);
        // Symmetric.
        assert!((m.bandwidth_mbps(3, 0) - m.bandwidth_mbps(0, 3)).abs() < 1e-6);
    }

    #[test]
    fn latency_uses_shortest_path() {
        let t = line_with_shortcut();
        let m = PairwiseMetrics::compute(&t);
        // 0 -> 3: line costs 3 ms, shortcut costs 10 ms.
        assert!((m.latency_ms(0, 3) - 3.0).abs() < 1e-5);
        assert_eq!(m.latency_ms(2, 2), 0.0);
    }

    #[test]
    fn self_pairs_are_free_and_disconnected_pairs_are_infinite() {
        let mut t = Topology::with_unplaced_nodes(3);
        t.add_edge(0, 1, props(4.0, 1.0));
        let m = PairwiseMetrics::compute(&t);
        assert_eq!(m.bandwidth_mbps(0, 0), f64::INFINITY);
        assert_eq!(m.transfer_secs(0, 0, 1000.0), 0.0);
        assert_eq!(m.bandwidth_mbps(0, 2), 0.0);
        assert_eq!(m.transfer_secs(0, 2, 1.0), f64::INFINITY);
        // Latency across components is infinite both ways.
        assert_eq!(m.latency_ms(0, 2), f64::INFINITY);
        assert_eq!(m.latency_ms(2, 0), f64::INFINITY);
    }

    #[test]
    fn transfer_time_matches_size_over_bandwidth() {
        let mut t = Topology::with_unplaced_nodes(2);
        t.add_edge(0, 1, props(5.0, 20.0));
        let m = PairwiseMetrics::compute(&t);
        // 100 Mb over 5 Mb/s = 20 s, plus 20 ms latency.
        let secs = m.transfer_secs(0, 1, 100.0);
        assert!((secs - 20.02).abs() < 1e-9);
        assert_eq!(m.transfer_secs(0, 1, 0.0), 0.0);
    }

    #[test]
    fn min_positive_latency_is_the_cheapest_pair() {
        let t = line_with_shortcut();
        let m = PairwiseMetrics::compute(&t);
        // Every edge in the line costs 1 ms, so the cheapest connected pair is 1 ms.
        assert!((m.min_positive_latency_ms() - 1.0).abs() < 1e-6);
        // A lone node has no connected pair: the bound degenerates to +inf.
        let lonely = Topology::with_unplaced_nodes(1);
        assert_eq!(
            PairwiseMetrics::compute(&lonely).min_positive_latency_ms(),
            f64::INFINITY
        );
        // Waxman edges cost at least the 1 ms hop latency, so generated topologies always
        // yield a positive, >= 1 ms lookahead bound.
        let mut rng = SimRng::seed_from_u64(23);
        let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(50)).generate(&mut rng);
        let m = PairwiseMetrics::compute(&topo);
        assert!(m.min_positive_latency_ms() >= 1.0);
        assert!(m.min_positive_latency_ms().is_finite());
    }

    #[test]
    fn average_bandwidth_is_positive_on_connected_graphs() {
        let mut rng = SimRng::seed_from_u64(17);
        let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(60)).generate(&mut rng);
        let m = PairwiseMetrics::compute(&topo);
        assert!(m.average_bandwidth_mbps() > 0.0);
        assert!(m.average_bandwidth_mbps() <= 10.0);
    }

    #[test]
    fn metrics_are_bitwise_symmetric() {
        // The undirected-symmetry exploit promises exact symmetry, not epsilon symmetry:
        // metrics(u, v) == metrics(v, u) down to the bit for both matrices.
        for seed in [3u64, 19, 101] {
            let mut rng = SimRng::seed_from_u64(seed);
            let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(80)).generate(&mut rng);
            let m = PairwiseMetrics::compute(&topo);
            let n = topo.node_count();
            for u in 0..n {
                for v in (u + 1)..n {
                    assert_eq!(
                        m.bandwidth_mbps(u, v).to_bits(),
                        m.bandwidth_mbps(v, u).to_bits(),
                        "bandwidth asymmetric at ({u},{v}), seed {seed}"
                    );
                    assert_eq!(
                        m.latency_ms(u, v).to_bits(),
                        m.latency_ms(v, u).to_bits(),
                        "latency asymmetric at ({u},{v}), seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn spanning_forest_matches_widest_path_dijkstra_bitwise() {
        // The maximin-path property makes the forest-derived bottleneck row equal to the
        // Dijkstra row *exactly*: both values are the same element of the edge multiset.
        for seed in [5u64, 42, 333] {
            let mut rng = SimRng::seed_from_u64(seed);
            let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(70)).generate(&mut rng);
            let m = PairwiseMetrics::compute(&topo);
            let n = topo.node_count();
            for src in 0..n {
                let reference = reference_widest_row(&topo, src);
                for (dst, want) in reference.iter().enumerate() {
                    if src == dst {
                        continue;
                    }
                    let got = m.bandwidth_mbps(src, dst) as f32;
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "bottleneck mismatch ({src},{dst}), seed {seed}: forest {got} vs dijkstra {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn spanning_forest_handles_disconnected_components() {
        // Two components: {0,1,2} in a triangle and {3,4} on a lone edge.
        let mut t = Topology::with_unplaced_nodes(5);
        t.add_edge(0, 1, props(6.0, 1.0));
        t.add_edge(1, 2, props(4.0, 1.0));
        t.add_edge(0, 2, props(9.0, 1.0));
        t.add_edge(3, 4, props(2.0, 1.0));
        let m = PairwiseMetrics::compute(&t);
        assert!(
            (m.bandwidth_mbps(1, 2) - 6.0).abs() < 1e-6,
            "1-0-2 beats the direct 4.0 link"
        );
        assert_eq!(m.bandwidth_mbps(0, 3), 0.0);
        assert_eq!(m.bandwidth_mbps(4, 1), 0.0);
        assert!((m.bandwidth_mbps(3, 4) - 2.0).abs() < 1e-6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// On any connected Waxman topology: bandwidth is symmetric, bounded by the best link,
        /// and every pair is reachable.
        #[test]
        fn prop_pairwise_invariants(seed in 0u64..500, n in 5usize..40) {
            let mut rng = SimRng::seed_from_u64(seed);
            let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(n)).generate(&mut rng);
            let max_edge_bw = topo
                .edges()
                .map(|(_, _, p)| p.bandwidth_mbps)
                .fold(0.0f64, f64::max);
            let m = PairwiseMetrics::compute(&topo);
            for u in 0..n {
                for v in 0..n {
                    if u == v { continue; }
                    let bw = m.bandwidth_mbps(u, v);
                    prop_assert!(bw > 0.0, "pair ({u},{v}) unreachable on a connected graph");
                    prop_assert!(bw <= max_edge_bw + 1e-6);
                    prop_assert!((bw - m.bandwidth_mbps(v, u)).abs() < 1e-6);
                    prop_assert!(m.latency_ms(u, v).is_finite());
                }
            }
        }

        /// The forest-derived bottleneck agrees with the widest-path Dijkstra oracle bit for
        /// bit on arbitrary Waxman instances.
        #[test]
        fn prop_forest_equals_dijkstra(seed in 0u64..300, n in 5usize..32) {
            let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(77));
            let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(n)).generate(&mut rng);
            let m = PairwiseMetrics::compute(&topo);
            for src in 0..n {
                let reference = reference_widest_row(&topo, src);
                for (dst, want) in reference.iter().enumerate() {
                    if src == dst { continue; }
                    prop_assert_eq!((m.bandwidth_mbps(src, dst) as f32).to_bits(), want.to_bits());
                }
            }
        }
    }
}
