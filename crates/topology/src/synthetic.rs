//! Hand-constructed topologies for tests, examples and the paper's worked example (Fig. 3).

use crate::graph::{EdgeProps, Topology};

/// A fully connected ("clique") topology in which every pair of nodes is joined by a direct
/// link of identical bandwidth and latency.
///
/// With a uniform clique the network disappears as a variable, which is exactly what the
/// paper's worked example (Fig. 3) assumes when it quotes a single estimated finish-time matrix;
/// it is also the right substrate for unit-testing scheduling policies in isolation.
pub fn uniform_clique(n: usize, bandwidth_mbps: f64, latency_ms: f64) -> Topology {
    let mut topo = Topology::with_unplaced_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            topo.add_edge(
                u,
                v,
                EdgeProps {
                    bandwidth_mbps,
                    latency_ms,
                },
            );
        }
    }
    topo
}

/// A star topology: node 0 is the hub, all other nodes are leaves.
pub fn star(n: usize, bandwidth_mbps: f64, latency_ms: f64) -> Topology {
    assert!(n >= 1);
    let mut topo = Topology::with_unplaced_nodes(n);
    for leaf in 1..n {
        topo.add_edge(
            0,
            leaf,
            EdgeProps {
                bandwidth_mbps,
                latency_ms,
            },
        );
    }
    topo
}

/// A line (path) topology `0 - 1 - 2 - ... - (n-1)`.
pub fn line(n: usize, bandwidth_mbps: f64, latency_ms: f64) -> Topology {
    let mut topo = Topology::with_unplaced_nodes(n);
    for u in 1..n {
        topo.add_edge(
            u - 1,
            u,
            EdgeProps {
                bandwidth_mbps,
                latency_ms,
            },
        );
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::PairwiseMetrics;

    #[test]
    fn clique_has_all_pairs_connected_directly() {
        let t = uniform_clique(6, 5.0, 1.0);
        assert_eq!(t.edge_count(), 6 * 5 / 2);
        assert!(t.is_connected());
        let m = PairwiseMetrics::compute(&t);
        for u in 0..6 {
            for v in 0..6 {
                if u != v {
                    assert!((m.bandwidth_mbps(u, v) - 5.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn star_routes_through_hub() {
        let t = star(5, 2.0, 3.0);
        assert_eq!(t.edge_count(), 4);
        let m = PairwiseMetrics::compute(&t);
        // Leaf-to-leaf goes through the hub: two hops of latency.
        assert!((m.latency_ms(1, 2) - 6.0).abs() < 1e-9);
        assert!((m.bandwidth_mbps(1, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn line_latency_accumulates() {
        let t = line(5, 1.0, 2.0);
        let m = PairwiseMetrics::compute(&t);
        assert!((m.latency_ms(0, 4) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(uniform_clique(1, 1.0, 1.0).edge_count(), 0);
        assert_eq!(star(1, 1.0, 1.0).edge_count(), 0);
        assert_eq!(line(1, 1.0, 1.0).edge_count(), 0);
    }
}
