//! The network graph data structure.

use serde::{Deserialize, Serialize};

/// Identifier of a peer node; indices are dense `0..n`.
pub type NodeId = usize;

/// Properties of a single (undirected) network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeProps {
    /// Link bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// Propagation latency in milliseconds.
    pub latency_ms: f64,
}

/// One directed adjacency entry (each undirected edge is stored twice).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adjacency {
    /// The neighbouring node.
    pub to: NodeId,
    /// Link properties.
    pub props: EdgeProps,
}

/// An undirected wide-area-network topology.
///
/// Nodes carry 2-D coordinates (in the Waxman unit square scaled by the configured plane size),
/// which the generator uses for distance-dependent edge probabilities and latencies, and which
/// the landmark estimator uses to pick well-spread landmarks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    coords: Vec<(f64, f64)>,
    adjacency: Vec<Vec<Adjacency>>,
    edge_count: usize,
}

impl Topology {
    /// Create an edgeless topology with `n` nodes placed at the given coordinates.
    pub fn new(coords: Vec<(f64, f64)>) -> Self {
        let n = coords.len();
        Topology {
            coords,
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Create an edgeless topology with `n` nodes all placed at the origin.
    ///
    /// Useful for tests that only care about connectivity, not geometry.
    pub fn with_unplaced_nodes(n: usize) -> Self {
        Topology::new(vec![(0.0, 0.0); n])
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.coords.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Coordinates of node `u`.
    pub fn coords(&self, u: NodeId) -> (f64, f64) {
        self.coords[u]
    }

    /// Euclidean distance between two nodes.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        let (ux, uy) = self.coords[u];
        let (vx, vy) = self.coords[v];
        ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
    }

    /// Add an undirected edge between `u` and `v`.
    ///
    /// # Panics
    /// Panics if `u == v`, if either endpoint is out of range, or if the bandwidth is not
    /// strictly positive.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, props: EdgeProps) {
        assert!(u != v, "self-loops are not allowed");
        assert!(
            u < self.node_count() && v < self.node_count(),
            "endpoint out of range"
        );
        assert!(props.bandwidth_mbps > 0.0, "bandwidth must be positive");
        assert!(props.latency_ms >= 0.0, "latency must be non-negative");
        self.adjacency[u].push(Adjacency { to: v, props });
        self.adjacency[v].push(Adjacency { to: u, props });
        self.edge_count += 1;
    }

    /// True if an edge between `u` and `v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency[u].iter().any(|a| a.to == v)
    }

    /// Neighbours of `u`.
    pub fn neighbors(&self, u: NodeId) -> &[Adjacency] {
        &self.adjacency[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u].len()
    }

    /// Iterate over every undirected edge once, as `(u, v, props)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeProps)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, adj)| {
            adj.iter()
                .filter(move |a| u < a.to)
                .map(move |a| (u, a.to, a.props))
        })
    }

    /// Average bandwidth over all links, in Mb/s.  Returns `None` for an edgeless topology.
    ///
    /// This is the "system-wide average network bandwidth" that the aggregation gossip protocol
    /// estimates and that the schedulers use when computing expected transmission times.
    pub fn average_bandwidth_mbps(&self) -> Option<f64> {
        if self.edge_count == 0 {
            return None;
        }
        let sum: f64 = self.edges().map(|(_, _, p)| p.bandwidth_mbps).sum();
        Some(sum / self.edge_count as f64)
    }

    /// Connected components as a vector of component ids (`comp[u]` in `0..k`).
    pub fn connected_components(&self) -> (usize, Vec<usize>) {
        let n = self.node_count();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for a in &self.adjacency[u] {
                    if comp[a.to] == usize::MAX {
                        comp[a.to] = next;
                        stack.push(a.to);
                    }
                }
            }
            next += 1;
        }
        (next, comp)
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.node_count() <= 1 || self.connected_components().0 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props(bw: f64) -> EdgeProps {
        EdgeProps {
            bandwidth_mbps: bw,
            latency_ms: 1.0,
        }
    }

    #[test]
    fn add_edge_updates_both_endpoints() {
        let mut t = Topology::with_unplaced_nodes(3);
        t.add_edge(0, 1, props(5.0));
        assert!(t.has_edge(0, 1));
        assert!(t.has_edge(1, 0));
        assert!(!t.has_edge(0, 2));
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(1), 1);
        assert_eq!(t.degree(2), 0);
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let mut t = Topology::with_unplaced_nodes(2);
        t.add_edge(1, 1, props(1.0));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let mut t = Topology::with_unplaced_nodes(2);
        t.add_edge(0, 1, props(0.0));
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let mut t = Topology::with_unplaced_nodes(4);
        t.add_edge(0, 1, props(1.0));
        t.add_edge(1, 2, props(2.0));
        t.add_edge(2, 3, props(3.0));
        t.add_edge(0, 3, props(4.0));
        let edges: Vec<_> = t.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(t.average_bandwidth_mbps(), Some(2.5));
    }

    #[test]
    fn average_bandwidth_of_edgeless_graph_is_none() {
        let t = Topology::with_unplaced_nodes(5);
        assert_eq!(t.average_bandwidth_mbps(), None);
    }

    #[test]
    fn connectivity_detection() {
        let mut t = Topology::with_unplaced_nodes(5);
        t.add_edge(0, 1, props(1.0));
        t.add_edge(1, 2, props(1.0));
        assert!(!t.is_connected());
        let (k, comp) = t.connected_components();
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
        t.add_edge(2, 3, props(1.0));
        t.add_edge(3, 4, props(1.0));
        assert!(t.is_connected());
    }

    #[test]
    fn distance_is_euclidean() {
        let t = Topology::new(vec![(0.0, 0.0), (3.0, 4.0)]);
        assert!((t.distance(0, 1) - 5.0).abs() < 1e-12);
        assert!((t.distance(1, 0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_and_empty_graphs_are_connected() {
        assert!(Topology::with_unplaced_nodes(0).is_connected());
        assert!(Topology::with_unplaced_nodes(1).is_connected());
    }
}
