//! # p2pgrid-experiments — regenerating every table and figure of the paper
//!
//! Each module reproduces one experiment of Section IV:
//!
//! | module | paper artefact |
//! |---|---|
//! | [`static_comparison`] | Fig. 4 (throughput), Fig. 5 (ACT), Fig. 6 (AE) and the headline 20–60 % / 37.5–90 % claims |
//! | [`fcfs_ablation`]     | the §IV.B text numbers comparing phase-2 rules against FCFS |
//! | [`load_factor`]       | Fig. 7 / Fig. 8 (load-factor sweep 1–8) |
//! | [`ccr`]               | Fig. 9 / Fig. 10 (four load/data combinations, CCR 0.16–16) |
//! | [`scalability`]       | Fig. 11 (RSS size, AE, ACT versus system scale) |
//! | [`churn`]             | Fig. 12–14 (dynamic factor 0–0.4) |
//! | [`fault_tolerance`]   | the fault-tolerance study the paper never ran (MTBF × recovery policy, "Fig. 15") |
//! | [`workload`]          | replay of serialized workload artifacts (`repro --workload`) |
//! | [`rununit`]           | campaign-spec decomposition, run-unit execution and artifact merging (the campaign server's library core) |
//!
//! Every runner accepts an [`ExperimentScale`]: `Smoke` for unit tests, `Reduced` for the
//! Criterion benches and the default `repro` binary, and `Full` for the paper-scale
//! configuration (1 000 nodes, 36 simulated hours).  Absolute numbers differ from the paper —
//! the substrate is a reimplementation, not the authors' testbed — but the *shape* of every
//! figure (who wins, by roughly what factor, where the crossovers fall) is the reproduction
//! target, and `EXPERIMENTS.md` records both sides.
//!
//! All runners execute through the [`campaign`] module: sweep points are derived
//! copy-on-write from one base world (`Scenario::with_*`), so a whole sweep pays for a
//! single topology/all-pairs-metrics build, and the resulting jobs run across the shared
//! work-stealing pool with reports returned in input order.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod ccr;
pub mod churn;
pub mod fault_tolerance;
pub mod fcfs_ablation;
pub mod figures;
pub mod load_factor;
pub mod rununit;
pub mod scalability;
pub mod scale;
pub mod static_comparison;
pub mod workload;

pub use campaign::Campaign;
pub use figures::{FigureData, Series};
pub use rununit::{CampaignSpec, RunUnit, UnitRunner};
pub use scale::ExperimentScale;
