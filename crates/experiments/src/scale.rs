//! Experiment scale presets.

use p2pgrid_core::GridConfig;
use p2pgrid_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Tiny configuration for unit/integration tests (tens of nodes, a few hours).
    Smoke,
    /// Medium configuration for Criterion benches and the default `repro` run
    /// (low hundreds of nodes, the full 36-hour horizon).
    Reduced,
    /// The paper-scale configuration (1 000 nodes, 3 workflows per node, 36 hours).
    Full,
}

impl ExperimentScale {
    /// Parse from a command-line string.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(ExperimentScale::Smoke),
            "reduced" => Some(ExperimentScale::Reduced),
            "full" => Some(ExperimentScale::Full),
            _ => None,
        }
    }

    /// The base grid configuration for this scale (the headline CCR ≈ 0.16 workload of
    /// §IV.B: task loads 100–10 000 MI, dependent data 10–1 000 Mb).
    pub fn base_config(self, seed: u64) -> GridConfig {
        match self {
            ExperimentScale::Full => GridConfig::paper_default().with_seed(seed),
            ExperimentScale::Reduced => {
                let mut cfg = GridConfig::paper_default().with_nodes(120).with_seed(seed);
                cfg.workflows_per_node = 3;
                cfg
            }
            ExperimentScale::Smoke => {
                let mut cfg = GridConfig::paper_default().with_nodes(24).with_seed(seed);
                cfg.workflows_per_node = 1;
                cfg.workload.generator_mut().tasks = 2..=8;
                cfg.horizon = SimDuration::from_hours(12);
                cfg
            }
        }
    }

    /// Number of nodes used by this scale's base configuration.
    pub fn nodes(self) -> usize {
        match self {
            ExperimentScale::Full => 1000,
            ExperimentScale::Reduced => 120,
            ExperimentScale::Smoke => 24,
        }
    }

    /// The node-count sweep used by the Fig. 11 scalability experiment at this scale.
    pub fn scalability_sweep(self) -> Vec<usize> {
        match self {
            ExperimentScale::Full => {
                vec![100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000]
            }
            ExperimentScale::Reduced => vec![50, 100, 150, 200, 300, 400],
            ExperimentScale::Smoke => vec![16, 24, 32],
        }
    }

    /// The load-factor sweep of Fig. 7/8 at this scale.
    pub fn load_factor_sweep(self) -> Vec<usize> {
        match self {
            ExperimentScale::Full | ExperimentScale::Reduced => (1..=8).collect(),
            ExperimentScale::Smoke => vec![1, 2, 4],
        }
    }

    /// The dynamic-factor sweep of Fig. 12–14.
    pub fn dynamic_factor_sweep(self) -> Vec<f64> {
        match self {
            ExperimentScale::Full | ExperimentScale::Reduced => vec![0.0, 0.1, 0.2, 0.3, 0.4],
            ExperimentScale::Smoke => vec![0.0, 0.2, 0.4],
        }
    }

    /// The per-node MTBF sweep (in hours) of the fault-tolerance study, hardest first.
    /// The smallest value gives a node only a couple of expected failures-free hours —
    /// well inside the simulated horizon — so every recovery policy is actually exercised.
    pub fn mtbf_sweep_hours(self) -> Vec<f64> {
        match self {
            ExperimentScale::Full | ExperimentScale::Reduced => vec![2.0, 4.0, 8.0, 16.0, 32.0],
            ExperimentScale::Smoke => vec![2.0, 6.0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names_only() {
        assert_eq!(ExperimentScale::parse("full"), Some(ExperimentScale::Full));
        assert_eq!(
            ExperimentScale::parse("Reduced"),
            Some(ExperimentScale::Reduced)
        );
        assert_eq!(
            ExperimentScale::parse("SMOKE"),
            Some(ExperimentScale::Smoke)
        );
        assert_eq!(ExperimentScale::parse("huge"), None);
    }

    #[test]
    fn base_configs_are_valid_and_sized_as_documented() {
        for scale in [
            ExperimentScale::Smoke,
            ExperimentScale::Reduced,
            ExperimentScale::Full,
        ] {
            let cfg = scale.base_config(1);
            cfg.validate().unwrap();
            assert_eq!(cfg.nodes, scale.nodes());
        }
        assert_eq!(ExperimentScale::Full.base_config(1).nodes, 1000);
    }

    #[test]
    fn sweeps_match_the_paper_at_full_scale() {
        assert_eq!(
            ExperimentScale::Full.load_factor_sweep(),
            (1..=8).collect::<Vec<_>>()
        );
        assert_eq!(
            ExperimentScale::Full.dynamic_factor_sweep(),
            vec![0.0, 0.1, 0.2, 0.3, 0.4]
        );
        assert_eq!(ExperimentScale::Full.scalability_sweep().len(), 11);
        assert!(ExperimentScale::Smoke.scalability_sweep().len() >= 2);
    }
}
