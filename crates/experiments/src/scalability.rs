//! The scalability experiment of Fig. 11: DSMF as the system grows.
//!
//! * Fig. 11(a): the number of resource nodes each node knows through the mixed gossip protocol
//!   (the average `RSS` size) stays below ~30 even at 2 000 nodes.
//! * Fig. 11(b)/(c): DSMF's average efficiency and average finish time stay stable with scale.

use crate::campaign;
use crate::figures::{FigureData, Series};
use crate::scale::ExperimentScale;
use p2pgrid_core::{Algorithm, AlgorithmConfig, Scenario, SimulationReport};
use rayon::prelude::*;

/// Results of the scalability sweep (DSMF only, as in the paper).
#[derive(Debug, Clone)]
pub struct ScalabilitySweep {
    /// Swept node counts.
    pub node_counts: Vec<usize>,
    /// One report per node count.
    pub reports: Vec<SimulationReport>,
}

/// Run the sweep (one DSMF run per system scale, across the pool).
///
/// This is the one sweep that cannot derive its points copy-on-write: every point has a
/// different node count and therefore a genuinely different topology.  The worlds are built
/// in parallel, then the sessions run through the same [`campaign`] path as every other
/// experiment.
pub fn run(scale: ExperimentScale, seed: u64) -> ScalabilitySweep {
    let node_counts = scale.scalability_sweep();
    let scenarios: Vec<Scenario> = node_counts
        .par_iter()
        .map(|&n| {
            Scenario::build(scale.base_config(seed).with_nodes(n))
                .unwrap_or_else(|e| panic!("invalid {n}-node configuration: {e}"))
        })
        .collect();
    let jobs = campaign::cross(
        &scenarios,
        &[AlgorithmConfig::paper_default(Algorithm::Dsmf)],
    );
    ScalabilitySweep {
        node_counts,
        reports: campaign::run(&jobs),
    }
}

impl ScalabilitySweep {
    fn points(&self, f: impl Fn(&SimulationReport) -> f64) -> Vec<(f64, f64)> {
        self.node_counts
            .iter()
            .zip(&self.reports)
            .map(|(&n, r)| (n as f64, f(r)))
            .collect()
    }

    /// Fig. 11(a): average number of peers known per node (space scalability of the gossip).
    pub fn fig11a_rss_size(&self) -> FigureData {
        let mut fig = FigureData::new(
            "fig11a",
            "Number of nodes known by each node (gossip space scalability)",
            "system scale (n)",
            "average RSS size",
        );
        fig.push_series(Series::new("DSMF", self.points(|r| r.avg_rss_size)));
        fig
    }

    /// Fig. 11(b): average efficiency versus scale.
    pub fn fig11b_average_efficiency(&self) -> FigureData {
        let mut fig = FigureData::new(
            "fig11b",
            "Average execution efficiency versus system scale",
            "system scale (n)",
            "AE",
        );
        fig.push_series(Series::new("DSMF", self.points(|r| r.average_efficiency())));
        fig
    }

    /// Fig. 11(c): average finish time versus scale.
    pub fn fig11c_average_finish_time(&self) -> FigureData {
        let mut fig = FigureData::new(
            "fig11c",
            "Average finish-time versus system scale",
            "system scale (n)",
            "ACT (s)",
        );
        fig.push_series(Series::new("DSMF", self.points(|r| r.act_secs())));
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_reports_bounded_rss_and_stable_metrics() {
        let sweep = run(ExperimentScale::Smoke, 17);
        assert_eq!(sweep.reports.len(), sweep.node_counts.len());
        let fig_a = sweep.fig11a_rss_size();
        let fig_b = sweep.fig11b_average_efficiency();
        let fig_c = sweep.fig11c_average_finish_time();
        assert_eq!(fig_a.series[0].points.len(), sweep.node_counts.len());
        for &(_, rss) in &fig_a.series[0].points {
            assert!(rss >= 1.0);
            assert!(rss <= 40.0, "RSS size {rss} exceeds the O(log n) band");
        }
        for &(_, ae) in &fig_b.series[0].points {
            assert!(ae > 0.0);
        }
        for &(_, act) in &fig_c.series[0].points {
            assert!(act > 0.0);
        }
    }
}
