//! The resource-competition experiment of Fig. 7 / Fig. 8: sweep the *load factor* (average
//! number of workflows submitted per node) from 1 to 8 and compare converged ACT and AE.

use crate::campaign::{self, Campaign};
use crate::figures::{FigureData, Series};
use crate::scale::ExperimentScale;
use p2pgrid_core::{Algorithm, SimulationReport};

/// Results of the load-factor sweep: `reports[algorithm][sweep point]`.
#[derive(Debug, Clone)]
pub struct LoadFactorSweep {
    /// The swept load factors.
    pub load_factors: Vec<usize>,
    /// One row of reports per algorithm, in [`Algorithm::ALL`] order.
    pub reports: Vec<Vec<SimulationReport>>,
}

/// Run the sweep (algorithms × load factors, across the pool).  The base world is built
/// **once**; each sweep point is derived copy-on-write with [`Scenario::with_load_factor`]
/// (only the workflow draw changes), so the whole sweep pays for a single topology and
/// all-pairs-metrics computation.
///
/// [`Scenario::with_load_factor`]: p2pgrid_core::Scenario::with_load_factor
pub fn run(scale: ExperimentScale, seed: u64) -> LoadFactorSweep {
    let load_factors = scale.load_factor_sweep();
    let campaign = Campaign::from_config(scale.base_config(seed))
        .unwrap_or_else(|e| panic!("invalid load-factor base configuration: {e}"));
    let reports = campaign
        .sweep(
            &load_factors,
            |base, &lf| base.with_load_factor(lf),
            &campaign::paper_algorithms(),
        )
        .unwrap_or_else(|e| panic!("invalid load-factor sweep point: {e}"));
    LoadFactorSweep {
        load_factors,
        reports,
    }
}

impl LoadFactorSweep {
    fn figure(
        &self,
        id: &str,
        title: &str,
        y_label: &str,
        f: impl Fn(&SimulationReport) -> f64,
    ) -> FigureData {
        let mut fig = FigureData::new(id, title, "load factor", y_label);
        for (alg, row) in Algorithm::ALL.iter().zip(&self.reports) {
            let points = self
                .load_factors
                .iter()
                .zip(row)
                .map(|(&lf, r)| (lf as f64, f(r)))
                .collect();
            fig.push_series(Series::new(alg.name(), points));
        }
        fig
    }

    /// Fig. 7: converged average finish time versus load factor.
    pub fn fig7_average_finish_time(&self) -> FigureData {
        self.figure(
            "fig7",
            "Average finish-time of workflows under different load factors",
            "ACT (s)",
            |r| r.act_secs(),
        )
    }

    /// Fig. 8: converged average efficiency versus load factor.
    pub fn fig8_average_efficiency(&self) -> FigureData {
        self.figure(
            "fig8",
            "Average efficiency of workflows under different load factors",
            "AE",
            |r| r.average_efficiency(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_a_point_per_algorithm_and_factor() {
        let sweep = run(ExperimentScale::Smoke, 3);
        assert_eq!(sweep.reports.len(), 8);
        for row in &sweep.reports {
            assert_eq!(row.len(), sweep.load_factors.len());
        }
        let fig7 = sweep.fig7_average_finish_time();
        let fig8 = sweep.fig8_average_efficiency();
        assert_eq!(fig7.series.len(), 8);
        assert_eq!(fig8.series.len(), 8);
        for s in &fig7.series {
            assert_eq!(s.points.len(), sweep.load_factors.len());
            assert!(s.points.iter().all(|&(_, y)| y >= 0.0));
        }
        // Higher load factors submit more workflows.
        let dsmf_row = &sweep.reports[Algorithm::ALL
            .iter()
            .position(|&a| a == Algorithm::Dsmf)
            .unwrap()];
        assert!(dsmf_row.last().unwrap().submitted > dsmf_row.first().unwrap().submitted);
    }
}
