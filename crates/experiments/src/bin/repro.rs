//! `repro` — regenerate every table and figure of the paper from the command line.
//!
//! ```text
//! repro [--scale smoke|reduced|full] [--seed N] [--fig all|3|4-6|fcfs|7-8|9-10|11|12-14|headline]
//! ```
//!
//! The default is `--scale reduced --fig all`, which runs every experiment at a laptop-friendly
//! scale (120 nodes, full 36-hour horizon) and prints the regenerated series in the same layout
//! as the paper's figures.  `--scale full` runs the paper-scale configuration (1 000 nodes) and
//! takes correspondingly longer.

use p2pgrid_core::worked_example;
use p2pgrid_experiments::ExperimentScale;
use p2pgrid_experiments::{ccr, churn, fcfs_ablation, load_factor, scalability, static_comparison};
use p2pgrid_workflow::{ExpectedCosts, WorkflowAnalysis};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Figure {
    All,
    WorkedExample,
    StaticComparison,
    FcfsAblation,
    LoadFactor,
    Ccr,
    Scalability,
    Churn,
    Headline,
}

impl Figure {
    fn parse(s: &str) -> Option<Figure> {
        match s.to_ascii_lowercase().as_str() {
            "all" => Some(Figure::All),
            "3" | "fig3" | "example" => Some(Figure::WorkedExample),
            "4" | "5" | "6" | "4-6" | "static" => Some(Figure::StaticComparison),
            "fcfs" | "ablation" => Some(Figure::FcfsAblation),
            "7" | "8" | "7-8" | "load" => Some(Figure::LoadFactor),
            "9" | "10" | "9-10" | "ccr" => Some(Figure::Ccr),
            "11" | "scale" | "scalability" => Some(Figure::Scalability),
            "12" | "13" | "14" | "12-14" | "churn" => Some(Figure::Churn),
            "headline" => Some(Figure::Headline),
            _ => None,
        }
    }
}

struct Args {
    scale: ExperimentScale,
    seed: u64,
    figure: Figure,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = ExperimentScale::Reduced;
    let mut seed = 20100913u64;
    let mut figure = Figure::All;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                let v = argv.get(i).ok_or("--scale needs a value")?;
                scale = ExperimentScale::parse(v).ok_or(format!("unknown scale '{v}'"))?;
            }
            "--seed" => {
                i += 1;
                let v = argv.get(i).ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("invalid seed '{v}'"))?;
            }
            "--fig" => {
                i += 1;
                let v = argv.get(i).ok_or("--fig needs a value")?;
                figure = Figure::parse(v).ok_or(format!("unknown figure '{v}'"))?;
            }
            "--help" | "-h" => {
                return Err("usage: repro [--scale smoke|reduced|full] [--seed N] \
                            [--fig all|3|4-6|fcfs|7-8|9-10|11|12-14|headline]"
                    .to_string())
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    Ok(Args {
        scale,
        seed,
        figure,
    })
}

fn print_worked_example() {
    println!("== Fig. 3 worked example ==");
    let wa = worked_example::workflow_a();
    let wb = worked_example::workflow_b();
    let costs = ExpectedCosts::new(1.0, 1.0);
    let aa = WorkflowAnalysis::new(&wa, costs);
    let ab = WorkflowAnalysis::new(&wb, costs);
    let (a2, a3, b2, b3) = worked_example::schedule_points();
    println!("RPM(A2) = {} (paper: 80)", aa.rpm_secs(a2));
    println!("RPM(A3) = {} (paper: 115)", aa.rpm_secs(a3));
    println!("RPM(B2) = {} (paper: 65)", ab.rpm_secs(b2));
    println!("RPM(B3) = {} (paper: 60)", ab.rpm_secs(b3));
    println!("ms(A) = {}, ms(B) = {}", aa.rpm_secs(a3), ab.rpm_secs(b2));
    println!("DSMF dispatch order: B2, B3, A3, A2 (see tests in p2pgrid-core::worked_example)");
    println!();
}

fn run_static(scale: ExperimentScale, seed: u64, headline_only: bool) {
    let cmp = static_comparison::run(scale, seed);
    if !headline_only {
        println!("{}", cmp.fig4_throughput().render());
        println!("{}", cmp.fig5_average_finish_time().render());
        println!("{}", cmp.fig6_average_efficiency().render());
        println!("== converged summary (static environment) ==");
        println!("{}", cmp.summary_table());
    }
    let h = cmp.headline();
    println!("== headline claims (DSMF vs other decentralized algorithms) ==");
    println!(
        "ACT reduction:   {:.1}% .. {:.1}%   (paper: 20% .. 60%)",
        h.act_reduction_pct.0, h.act_reduction_pct.1
    );
    println!(
        "AE improvement:  {:.1}% .. {:.1}%   (paper: 37.5% .. 90%)",
        h.ae_improvement_pct.0, h.ae_improvement_pct.1
    );
    println!();
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("usage") { 0 } else { 2 });
        }
    };
    let scale = args.scale;
    let seed = args.seed;
    println!(
        "# p2pgrid reproduction — scale: {scale:?}, seed: {seed}, nodes: {}\n",
        scale.nodes()
    );

    let run_all = args.figure == Figure::All;
    if run_all || args.figure == Figure::WorkedExample {
        print_worked_example();
    }
    if run_all || args.figure == Figure::StaticComparison || args.figure == Figure::Headline {
        run_static(scale, seed, args.figure == Figure::Headline);
    }
    if run_all || args.figure == Figure::FcfsAblation {
        let ablation = fcfs_ablation::run(scale, seed);
        println!("== second-phase vs FCFS ablation (§IV.B) ==");
        println!("{}", ablation.table());
        println!(
            "paper second phase beats or matches FCFS for {}/{} algorithms\n",
            ablation.second_phase_wins(),
            ablation.pairs.len()
        );
    }
    if run_all || args.figure == Figure::LoadFactor {
        let sweep = load_factor::run(scale, seed);
        println!("{}", sweep.fig7_average_finish_time().render());
        println!("{}", sweep.fig8_average_efficiency().render());
    }
    if run_all || args.figure == Figure::Ccr {
        let sweep = ccr::run(scale, seed);
        println!("== CCR cases ==");
        for (i, case) in sweep.cases.iter().enumerate() {
            println!("case {i}: {}", case.label);
        }
        println!("{}", sweep.fig9_average_finish_time().render());
        println!("{}", sweep.fig10_average_efficiency().render());
    }
    if run_all || args.figure == Figure::Scalability {
        let sweep = scalability::run(scale, seed);
        println!("{}", sweep.fig11a_rss_size().render());
        println!("{}", sweep.fig11b_average_efficiency().render());
        println!("{}", sweep.fig11c_average_finish_time().render());
    }
    if run_all || args.figure == Figure::Churn {
        let sweep = churn::run(scale, seed);
        println!("{}", sweep.fig12_throughput().render());
        println!("{}", sweep.fig13_average_finish_time().render());
        println!("{}", sweep.fig14_average_efficiency().render());
        println!("== churn summary ==");
        for (df, r) in sweep.dynamic_factors.iter().zip(&sweep.reports) {
            println!(
                "df={df:.1}: finished {}, failed {}, ACT {:.0}s, AE {:.3}",
                r.completed,
                r.failed,
                r.act_secs(),
                r.average_efficiency()
            );
        }
    }
}
