//! `repro` — regenerate every table and figure of the paper from the command line.
//!
//! ```text
//! repro [--scale smoke|reduced|full] [--seed N]
//!       [--fig all|3|4-6|fcfs|7-8|9-10|11|12-14|15|headline]
//!       [--json [DIR]] [--workload FILE] [--check-workloads DIR]
//! ```
//!
//! The default is `--scale reduced --fig all`, which runs every experiment at a laptop-friendly
//! scale (120 nodes, full 36-hour horizon) and prints the regenerated series in the same layout
//! as the paper's figures.  `--scale full` runs the paper-scale configuration (1 000 nodes) and
//! takes correspondingly longer.  `--json` additionally writes one machine-readable artifact
//! per regenerated figure (`<DIR>/<figure-id>.json`, default directory `repro-json`),
//! serialized through the serde compat shim's JSON backend, plus a streaming
//! `<DIR>/figures.ndjson` with one wire-strict compact line per figure in emission order —
//! the same newline-delimited encoding the campaign server speaks on its sockets.
//!
//! Two workload-artifact modes replace the figure run when given:
//!
//! * `--workload FILE` replays a serialized `p2pgrid-workload/v1` trace (e.g. one of the
//!   checked-in files under `workloads/`) over this scale's base grid with all eight
//!   algorithms and prints the comparison table.
//! * `--check-workloads DIR` validates every `.json` artifact in a directory (parse with
//!   line/column error positions, full DAG validation, round-trip fixpoint) and exits with
//!   status 2 if any fails — the CI guard for the checked-in library.

use p2pgrid_core::worked_example;
use p2pgrid_experiments::ExperimentScale;
use p2pgrid_experiments::{
    ccr, churn, fault_tolerance, fcfs_ablation, load_factor, scalability, static_comparison,
    workload, FigureData,
};
use p2pgrid_workflow::{ExpectedCosts, WorkflowAnalysis};
use std::path::{Path, PathBuf};

/// The accepted `--scale` spellings, shown when an unknown value is passed.
const ACCEPTED_SCALES: &str = "smoke, reduced, full";
/// The accepted `--fig` spellings, shown when an unknown value is passed.
const ACCEPTED_FIGURES: &str =
    "all, 3 (example), 4-6 (static), fcfs (ablation), 7-8 (load), 9-10 (ccr), \
     11 (scalability), 12-14 (churn), 15 (fault), headline";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Figure {
    All,
    WorkedExample,
    StaticComparison,
    FcfsAblation,
    LoadFactor,
    Ccr,
    Scalability,
    Churn,
    FaultTolerance,
    Headline,
}

impl Figure {
    fn parse(s: &str) -> Option<Figure> {
        match s.to_ascii_lowercase().as_str() {
            "all" => Some(Figure::All),
            "3" | "fig3" | "example" => Some(Figure::WorkedExample),
            "4" | "5" | "6" | "4-6" | "static" => Some(Figure::StaticComparison),
            "fcfs" | "ablation" => Some(Figure::FcfsAblation),
            "7" | "8" | "7-8" | "load" => Some(Figure::LoadFactor),
            "9" | "10" | "9-10" | "ccr" => Some(Figure::Ccr),
            "11" | "scale" | "scalability" => Some(Figure::Scalability),
            "12" | "13" | "14" | "12-14" | "churn" => Some(Figure::Churn),
            "15" | "fault" | "faults" | "fault-tolerance" => Some(Figure::FaultTolerance),
            "headline" => Some(Figure::Headline),
            _ => None,
        }
    }
}

struct Args {
    scale: ExperimentScale,
    seed: u64,
    figure: Figure,
    json_dir: Option<PathBuf>,
    workload: Option<PathBuf>,
    check_workloads: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = ExperimentScale::Reduced;
    let mut seed = 20100913u64;
    let mut figure = Figure::All;
    let mut json_dir: Option<PathBuf> = None;
    let mut workload: Option<PathBuf> = None;
    let mut check_workloads: Option<PathBuf> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                let v = argv.get(i).ok_or("--scale needs a value")?;
                scale = ExperimentScale::parse(v)
                    .ok_or(format!("unknown scale '{v}' (accepted: {ACCEPTED_SCALES})"))?;
            }
            "--seed" => {
                i += 1;
                let v = argv.get(i).ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("invalid seed '{v}'"))?;
            }
            "--fig" => {
                i += 1;
                let v = argv.get(i).ok_or("--fig needs a value")?;
                figure = Figure::parse(v).ok_or(format!(
                    "unknown figure '{v}' (accepted: {ACCEPTED_FIGURES})"
                ))?;
            }
            "--json" => {
                // Optional value: `--json out/` names the directory, bare `--json` defaults.
                let dir = match argv.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        i += 1;
                        PathBuf::from(next)
                    }
                    _ => PathBuf::from("repro-json"),
                };
                json_dir = Some(dir);
            }
            "--workload" => {
                i += 1;
                workload = Some(PathBuf::from(argv.get(i).ok_or("--workload needs a file")?));
            }
            "--check-workloads" => {
                i += 1;
                check_workloads = Some(PathBuf::from(
                    argv.get(i).ok_or("--check-workloads needs a directory")?,
                ));
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: repro [--scale smoke|reduced|full] [--seed N] [--fig FIG] \
                     [--json [DIR]] [--workload FILE] [--check-workloads DIR]\n  \
                     scales:  {ACCEPTED_SCALES}\n  figures: {ACCEPTED_FIGURES}"
                ))
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    Ok(Args {
        scale,
        seed,
        figure,
        json_dir,
        workload,
        check_workloads,
    })
}

/// Print a regenerated figure and, when `--json` is on, write its JSON artifact.
fn emit(fig: &FigureData, json_dir: &Option<PathBuf>) {
    println!("{}", fig.render());
    if let Some(dir) = json_dir {
        write_json(fig, dir);
    }
}

fn write_json(fig: &FigureData, dir: &Path) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    let path = dir.join(format!("{}.json", fig.id));
    let mut doc = fig.to_json().to_string_pretty();
    doc.push('\n');
    if let Err(e) = std::fs::write(&path, doc) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    if let Err(e) = append_ndjson(fig, dir) {
        eprintln!(
            "cannot append to {}: {e}",
            dir.join(NDJSON_STREAM).display()
        );
        std::process::exit(2);
    }
    println!("wrote {}", path.display());
}

/// The run's streaming artifact: every figure as one wire-strict compact line, in emission
/// order — the same newline-delimited encoding (and the same `NdjsonWriter`) the campaign
/// server's master/worker protocol uses on its sockets.
const NDJSON_STREAM: &str = "figures.ndjson";

fn append_ndjson(fig: &FigureData, dir: &Path) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(NDJSON_STREAM))?;
    let mut stream = serde::json::NdjsonWriter::new(file);
    stream.write(&fig.to_json())
}

/// Start the run with an empty stream so repeated invocations do not concatenate.
fn truncate_ndjson(dir: &Path) {
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(dir.join(NDJSON_STREAM), b""))
    {
        eprintln!("cannot reset {}: {e}", dir.join(NDJSON_STREAM).display());
        std::process::exit(2);
    }
}

fn print_worked_example() {
    println!("== Fig. 3 worked example ==");
    let wa = worked_example::workflow_a();
    let wb = worked_example::workflow_b();
    let costs = ExpectedCosts::new(1.0, 1.0);
    let aa = WorkflowAnalysis::new(&wa, costs);
    let ab = WorkflowAnalysis::new(&wb, costs);
    let (a2, a3, b2, b3) = worked_example::schedule_points();
    println!("RPM(A2) = {} (paper: 80)", aa.rpm_secs(a2));
    println!("RPM(A3) = {} (paper: 115)", aa.rpm_secs(a3));
    println!("RPM(B2) = {} (paper: 65)", ab.rpm_secs(b2));
    println!("RPM(B3) = {} (paper: 60)", ab.rpm_secs(b3));
    println!("ms(A) = {}, ms(B) = {}", aa.rpm_secs(a3), ab.rpm_secs(b2));
    println!("DSMF dispatch order: B2, B3, A3, A2 (see tests in p2pgrid-core::worked_example)");
    println!();
}

fn run_static(scale: ExperimentScale, seed: u64, headline_only: bool, json_dir: &Option<PathBuf>) {
    let cmp = static_comparison::run(scale, seed);
    if !headline_only {
        emit(&cmp.fig4_throughput(), json_dir);
        emit(&cmp.fig5_average_finish_time(), json_dir);
        emit(&cmp.fig6_average_efficiency(), json_dir);
        println!("== converged summary (static environment) ==");
        println!("{}", cmp.summary_table());
    }
    let h = cmp.headline();
    println!("== headline claims (DSMF vs other decentralized algorithms) ==");
    println!(
        "ACT reduction:   {:.1}% .. {:.1}%   (paper: 20% .. 60%)",
        h.act_reduction_pct.0, h.act_reduction_pct.1
    );
    println!(
        "AE improvement:  {:.1}% .. {:.1}%   (paper: 37.5% .. 90%)",
        h.ae_improvement_pct.0, h.ae_improvement_pct.1
    );
    println!();
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("usage") { 0 } else { 2 });
        }
    };
    let scale = args.scale;
    let seed = args.seed;
    let json_dir = &args.json_dir;
    if let Some(dir) = json_dir {
        truncate_ndjson(dir);
    }

    // Workload-artifact modes replace the figure run.
    if args.workload.is_some() || args.check_workloads.is_some() {
        if let Some(dir) = &args.check_workloads {
            match workload::check_dir(dir) {
                Ok(checks) => {
                    println!("== workload artifacts in {} ==", dir.display());
                    for c in &checks {
                        println!(
                            "{:<20} workload `{}`: {} workflows, {} entries, {} tasks — OK",
                            c.file, c.name, c.workflows, c.entries, c.tasks
                        );
                    }
                }
                Err(report) => {
                    eprintln!("workload artifact validation failed:\n{report}");
                    std::process::exit(2);
                }
            }
        }
        if let Some(file) = &args.workload {
            match workload::run_file(file, scale, seed) {
                Ok(cmp) => {
                    println!("== workload replay ({}) ==", file.display());
                    println!("{}", cmp.table());
                }
                Err(msg) => {
                    eprintln!("cannot replay {}: {msg}", file.display());
                    std::process::exit(2);
                }
            }
        }
        return;
    }
    println!(
        "# p2pgrid reproduction — scale: {scale:?}, seed: {seed}, nodes: {}\n",
        scale.nodes()
    );

    let run_all = args.figure == Figure::All;
    if run_all || args.figure == Figure::WorkedExample {
        print_worked_example();
    }
    if run_all || args.figure == Figure::StaticComparison || args.figure == Figure::Headline {
        run_static(scale, seed, args.figure == Figure::Headline, json_dir);
    }
    if run_all || args.figure == Figure::FcfsAblation {
        let ablation = fcfs_ablation::run(scale, seed);
        println!("== second-phase vs FCFS ablation (§IV.B) ==");
        println!("{}", ablation.table());
        println!(
            "paper second phase beats or matches FCFS for {}/{} algorithms\n",
            ablation.second_phase_wins(),
            ablation.pairs.len()
        );
        // The figure duplicates the table on stdout, so only its JSON artifact is written —
        // stdout stays identical with and without --json.
        if let Some(dir) = json_dir {
            write_json(&ablation.figure(), dir);
        }
    }
    if run_all || args.figure == Figure::LoadFactor {
        let sweep = load_factor::run(scale, seed);
        emit(&sweep.fig7_average_finish_time(), json_dir);
        emit(&sweep.fig8_average_efficiency(), json_dir);
    }
    if run_all || args.figure == Figure::Ccr {
        let sweep = ccr::run(scale, seed);
        println!("== CCR cases ==");
        for (i, case) in sweep.cases.iter().enumerate() {
            println!("case {i}: {}", case.label);
        }
        emit(&sweep.fig9_average_finish_time(), json_dir);
        emit(&sweep.fig10_average_efficiency(), json_dir);
    }
    if run_all || args.figure == Figure::Scalability {
        let sweep = scalability::run(scale, seed);
        emit(&sweep.fig11a_rss_size(), json_dir);
        emit(&sweep.fig11b_average_efficiency(), json_dir);
        emit(&sweep.fig11c_average_finish_time(), json_dir);
    }
    if run_all || args.figure == Figure::Churn {
        let sweep = churn::run(scale, seed);
        emit(&sweep.fig12_throughput(), json_dir);
        emit(&sweep.fig13_average_finish_time(), json_dir);
        emit(&sweep.fig14_average_efficiency(), json_dir);
        println!("== churn summary ==");
        for (df, r) in sweep.dynamic_factors.iter().zip(&sweep.reports) {
            println!(
                "df={df:.1}: finished {}, failed {}, ACT {:.0}s, AE {:.3}",
                r.completed,
                r.failed,
                r.act_secs(),
                r.average_efficiency()
            );
        }
    }
    if run_all || args.figure == Figure::FaultTolerance {
        let sweep = fault_tolerance::run(scale, seed);
        emit(&sweep.fig15a_throughput(), json_dir);
        emit(&sweep.fig15b_goodput(), json_dir);
        emit(&sweep.fig15c_recovery_latency(), json_dir);
        println!("== fault-tolerance summary (MTBF x recovery policy) ==");
        println!("{}", sweep.summary_table());
    }
}
