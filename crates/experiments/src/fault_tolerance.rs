//! The fault-tolerance study the paper never ran: DSMF under stochastic node lifetimes,
//! comparing recovery policies.
//!
//! The paper's dynamic-environment experiment (Fig. 12–14) models churn as paired
//! join/leave swaps at scheduling intervals and only ever compares "fail the workflow"
//! against "re-schedule everything".  This study replaces churn with per-node exponential
//! failure/repair lifetimes ([`StochasticFaults`]) and sweeps the per-node MTBF against the
//! four [`RecoveryPolicy`] variants: the paper's fail-the-workflow baseline, bounded retry
//! with linear backoff, periodic checkpointing, and speculative replication.
//!
//! Throughput alone cannot rank these policies — replication can finish as many workflows
//! as retry while re-executing half the grid's work — so the figures also plot the
//! [`RobustnessStats`] ledger: goodput (useful MI over total executed MI) and the mean
//! latency between losing a task and re-dispatching its replacement.
//!
//! [`RobustnessStats`]: p2pgrid_metrics::RobustnessStats

use crate::campaign::{self, Campaign};
use crate::figures::{FigureData, Series};
use crate::scale::ExperimentScale;
use p2pgrid_core::{
    Algorithm, AlgorithmConfig, FaultModel, RecoveryPolicy, SimulationReport, StochasticFaults,
};
use p2pgrid_sim::SimDuration;

/// The recovery policies compared by the study, with their display labels.
///
/// The retry budget, backoff, checkpoint interval and replica count are fixed mid-range
/// values — the study sweeps the *failure pressure* (MTBF), not the policy parameters.
pub fn policies() -> Vec<(&'static str, RecoveryPolicy)> {
    vec![
        ("fail (paper)", RecoveryPolicy::FailWorkflow),
        (
            "retry x3",
            RecoveryPolicy::Retry {
                budget: 3,
                backoff: SimDuration::from_secs(5 * 60),
            },
        ),
        (
            "checkpoint 15m",
            RecoveryPolicy::Checkpoint {
                interval: SimDuration::from_secs(15 * 60),
            },
        ),
        ("replicate x2", RecoveryPolicy::Replicate { copies: 2 }),
    ]
}

/// Mean time to repair used at every sweep point: 20 minutes, long enough that a failed
/// node's tasks cannot simply wait the outage out.
pub const MTTR: SimDuration = SimDuration::from_secs(20 * 60);

/// Results of the MTBF × recovery-policy sweep (DSMF only).
#[derive(Debug, Clone)]
pub struct FaultToleranceSweep {
    /// Swept per-node MTBF values, in hours.
    pub mtbf_hours: Vec<f64>,
    /// Policy labels, row-aligned with [`reports`](FaultToleranceSweep::reports).
    pub policy_labels: Vec<&'static str>,
    /// `reports[policy][mtbf]`: one report per (policy, MTBF) cell.
    pub reports: Vec<Vec<SimulationReport>>,
}

/// Run the sweep: every recovery policy over every MTBF in the scale's sweep.
///
/// The base world is built **once**; each cell is derived copy-on-write — the fault
/// schedule re-drawn per MTBF via [`Scenario::with_faults`], the policy swapped for free
/// via [`Scenario::with_recovery`] — and the full grid of jobs runs across the shared
/// work-stealing pool.
///
/// [`Scenario::with_faults`]: p2pgrid_core::Scenario::with_faults
/// [`Scenario::with_recovery`]: p2pgrid_core::Scenario::with_recovery
pub fn run(scale: ExperimentScale, seed: u64) -> FaultToleranceSweep {
    let mtbf_hours = scale.mtbf_sweep_hours();
    let policies = policies();
    let campaign = Campaign::from_config(scale.base_config(seed))
        .unwrap_or_else(|e| panic!("invalid fault-tolerance base configuration: {e}"));
    // One flat derivation over the (policy, mtbf) grid, policy-major so the report vector
    // splits back into per-policy rows.
    let cells: Vec<(RecoveryPolicy, f64)> = policies
        .iter()
        .flat_map(|&(_, policy)| mtbf_hours.iter().map(move |&h| (policy, h)))
        .collect();
    let scenarios = campaign
        .derive(&cells, |base, &(policy, hours)| {
            let faults = StochasticFaults::new(SimDuration::from_secs_f64(hours * 3600.0), MTTR);
            base.with_faults(FaultModel::Stochastic(faults))?
                .with_recovery(policy)
        })
        .unwrap_or_else(|e| panic!("invalid fault-tolerance sweep point: {e}"));
    let jobs = campaign::cross(
        &scenarios,
        &[AlgorithmConfig::paper_default(Algorithm::Dsmf)],
    );
    let mut flat = campaign::run(&jobs);
    let mut reports = Vec::with_capacity(policies.len());
    for _ in &policies {
        let rest = flat.split_off(mtbf_hours.len());
        reports.push(flat);
        flat = rest;
    }
    FaultToleranceSweep {
        mtbf_hours,
        policy_labels: policies.iter().map(|&(label, _)| label).collect(),
        reports,
    }
}

impl FaultToleranceSweep {
    fn figure<F: Fn(&SimulationReport) -> f64>(
        &self,
        id: &str,
        title: &str,
        y: &str,
        value: F,
    ) -> FigureData {
        let mut fig = FigureData::new(id, title, "per-node MTBF (h)", y);
        for (label, row) in self.policy_labels.iter().zip(&self.reports) {
            let points = self
                .mtbf_hours
                .iter()
                .zip(row)
                .map(|(&h, r)| (h, value(r)))
                .collect();
            fig.push_series(Series::new(*label, points));
        }
        fig
    }

    /// Fig. 15a: workflows finished versus MTBF, one curve per recovery policy.
    pub fn fig15a_throughput(&self) -> FigureData {
        self.figure(
            "fig15a",
            "Throughput of DSMF under stochastic node failures",
            "workflows finished",
            |r| r.completed as f64,
        )
    }

    /// Fig. 15b: goodput (useful MI / total executed MI) versus MTBF per policy.
    pub fn fig15b_goodput(&self) -> FigureData {
        self.figure(
            "fig15b",
            "Goodput of DSMF under stochastic node failures",
            "useful / executed MI",
            |r| r.robustness.goodput(),
        )
    }

    /// Fig. 15c: mean recovery latency versus MTBF per policy.
    pub fn fig15c_recovery_latency(&self) -> FigureData {
        self.figure(
            "fig15c",
            "Mean task-recovery latency of DSMF under stochastic node failures",
            "loss-to-redispatch (s)",
            |r| r.robustness.mean_recovery_latency_secs(),
        )
    }

    /// Plain-text summary table: one row per (policy, MTBF) cell with the full robustness
    /// ledger.
    pub fn summary_table(&self) -> String {
        let mut out = format!(
            "{:<16} {:>8} {:>9} {:>7} {:>7} {:>9} {:>8} {:>8} {:>10}\n",
            "policy",
            "mtbf(h)",
            "finished",
            "failed",
            "lost",
            "retries",
            "goodput",
            "rec(s)",
            "wasted MI"
        );
        for (label, row) in self.policy_labels.iter().zip(&self.reports) {
            for (&h, r) in self.mtbf_hours.iter().zip(row) {
                let s = &r.robustness;
                out.push_str(&format!(
                    "{:<16} {:>8.1} {:>9} {:>7} {:>7} {:>9} {:>8.3} {:>8.0} {:>10.3e}\n",
                    label,
                    h,
                    r.completed,
                    r.failed,
                    s.tasks_lost,
                    s.retries,
                    s.goodput(),
                    s.mean_recovery_latency_secs(),
                    s.wasted_mi,
                ));
            }
        }
        out
    }

    /// The report for an exact (policy label, MTBF) cell.
    pub fn report_for(&self, label: &str, mtbf_hours: f64) -> Option<&SimulationReport> {
        let row = self.policy_labels.iter().position(|&l| l == label)?;
        let col = self
            .mtbf_hours
            .iter()
            .position(|&h| (h - mtbf_hours).abs() < 1e-9)?;
        Some(&self.reports[row][col])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_policy_by_mtbf_grid_and_faults_actually_fire() {
        let sweep = run(ExperimentScale::Smoke, 31);
        assert_eq!(sweep.reports.len(), sweep.policy_labels.len());
        for row in &sweep.reports {
            assert_eq!(row.len(), sweep.mtbf_hours.len());
        }
        // The harshest cell must actually exercise the fault substrate.
        let harsh = sweep.report_for("fail (paper)", 2.0).unwrap();
        assert!(
            harsh.robustness.node_failures > 0,
            "a 2h MTBF over a 12h horizon must fail some node"
        );
        // Figures carry one curve per policy.
        for fig in [
            sweep.fig15a_throughput(),
            sweep.fig15b_goodput(),
            sweep.fig15c_recovery_latency(),
        ] {
            assert_eq!(fig.series.len(), sweep.policy_labels.len());
            for s in &fig.series {
                assert_eq!(s.points.len(), sweep.mtbf_hours.len());
            }
        }
        assert!(sweep.summary_table().contains("replicate x2"));
    }

    #[test]
    fn recovery_policies_beat_the_paper_baseline_under_pressure() {
        let sweep = run(ExperimentScale::Smoke, 33);
        let fail = sweep.report_for("fail (paper)", 2.0).unwrap();
        let retry = sweep.report_for("retry x3", 2.0).unwrap();
        assert!(
            retry.completed >= fail.completed,
            "bounded retry should not finish fewer workflows than failing outright \
             (retry {}, fail {})",
            retry.completed,
            fail.completed
        );
        if retry.robustness.retries > 0 {
            assert!(
                retry.robustness.recoveries > 0,
                "retries imply recovered dispatches"
            );
        }
    }
}
