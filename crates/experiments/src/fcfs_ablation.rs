//! The §IV.B second-phase ablation: min-min / max-min / sufferage / DHEFT with their paper
//! ready-set rules versus plain FCFS ready sets.
//!
//! The paper reports converged average finish times of 31 977 / 33 495 / 30 321 / 30 728 with
//! the second phase enabled against 32 874 / 33 746 / 32 781 / 32 636 with FCFS, concluding
//! that "FCFS is not suggested to take over the ready task scheduling work".  The reproduction
//! target is the *direction* of that comparison (the paper rules beat or match FCFS), not the
//! absolute values.

use crate::campaign;
use crate::figures::{FigureData, Series};
use crate::scale::ExperimentScale;
use p2pgrid_core::{Algorithm, AlgorithmConfig, Scenario, SimulationReport};
use p2pgrid_metrics::format_table;

/// The algorithms the paper runs through the ablation.
pub const ABLATED_ALGORITHMS: [Algorithm; 4] = [
    Algorithm::MinMin,
    Algorithm::MaxMin,
    Algorithm::Sufferage,
    Algorithm::Dheft,
];

/// One ablation pair: the same first-phase heuristic with the paper ready-set rule and with
/// FCFS.
#[derive(Debug, Clone)]
pub struct AblationPair {
    /// The first-phase heuristic.
    pub algorithm: Algorithm,
    /// Report with the paper's second phase.
    pub with_second_phase: SimulationReport,
    /// Report with the FCFS ready set.
    pub with_fcfs: SimulationReport,
}

/// Results of the full ablation.
#[derive(Debug, Clone)]
pub struct FcfsAblation {
    /// One pair per ablated algorithm.
    pub pairs: Vec<AblationPair>,
}

/// Run the ablation (eight simulations across the pool, all sharing one pre-built world).
pub fn run(scale: ExperimentScale, seed: u64) -> FcfsAblation {
    let scenario = Scenario::build(scale.base_config(seed))
        .unwrap_or_else(|e| panic!("invalid ablation configuration: {e}"));
    let configs: Vec<AlgorithmConfig> = ABLATED_ALGORITHMS
        .iter()
        .flat_map(|&alg| {
            [
                AlgorithmConfig::paper_default(alg),
                AlgorithmConfig::with_fcfs_second_phase(alg),
            ]
        })
        .collect();
    let reports = campaign::run(&campaign::cross(std::slice::from_ref(&scenario), &configs));
    let pairs = ABLATED_ALGORITHMS
        .iter()
        .enumerate()
        .map(|(i, &algorithm)| AblationPair {
            algorithm,
            with_second_phase: reports[2 * i].clone(),
            with_fcfs: reports[2 * i + 1].clone(),
        })
        .collect();
    FcfsAblation { pairs }
}

impl FcfsAblation {
    /// The converged ACT comparison as a figure (x = algorithm index).
    pub fn figure(&self) -> FigureData {
        let mut fig = FigureData::new(
            "fcfs-ablation",
            "Converged ACT with the paper second phase vs FCFS ready sets",
            "algorithm index",
            "ACT (s)",
        );
        fig.push_series(Series::new(
            "paper second phase",
            self.pairs
                .iter()
                .enumerate()
                .map(|(i, p)| (i as f64, p.with_second_phase.act_secs()))
                .collect(),
        ));
        fig.push_series(Series::new(
            "FCFS",
            self.pairs
                .iter()
                .enumerate()
                .map(|(i, p)| (i as f64, p.with_fcfs.act_secs()))
                .collect(),
        ));
        fig
    }

    /// Render the ablation table (mirrors the §IV.B text numbers).
    pub fn table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .pairs
            .iter()
            .map(|p| {
                vec![
                    p.algorithm.name().to_string(),
                    format!("{:.0}", p.with_second_phase.act_secs()),
                    format!("{:.0}", p.with_fcfs.act_secs()),
                    format!("{:.3}", p.with_second_phase.average_efficiency()),
                    format!("{:.3}", p.with_fcfs.average_efficiency()),
                ]
            })
            .collect();
        format_table(
            &[
                "algorithm",
                "ACT (phase 2)",
                "ACT (FCFS)",
                "AE (phase 2)",
                "AE (FCFS)",
            ],
            &rows,
        )
    }

    /// Number of ablated algorithms whose paper second phase beats (or ties) FCFS on ACT.
    pub fn second_phase_wins(&self) -> usize {
        self.pairs
            .iter()
            .filter(|p| p.with_second_phase.act_secs() <= p.with_fcfs.act_secs() * 1.02)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_and_reports_all_pairs() {
        let ablation = run(ExperimentScale::Smoke, 5);
        assert_eq!(ablation.pairs.len(), 4);
        for p in &ablation.pairs {
            assert!(p.with_second_phase.completed > 0, "{}", p.algorithm);
            assert!(p.with_fcfs.completed > 0, "{}", p.algorithm);
            assert!(p.with_fcfs.algorithm.contains("FCFS"));
        }
        let table = ablation.table();
        assert!(table.contains("min-min"));
        assert!(table.contains("DHEFT"));
        let fig = ablation.figure();
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].points.len(), 4);
        assert!(ablation.second_phase_wins() <= 4);
    }
}
