//! Run-unit execution and artifact merging — the library core of the campaign server.
//!
//! A [`CampaignSpec`] names a complete sweep campaign as data: an [`ExperimentScale`], a seed
//! range, an algorithm set and an optional serialized workload document
//! (`p2pgrid-workload/v1`).  [`CampaignSpec::units`] decomposes it into [`RunUnit`]s — one
//! `(seed, algorithm)` cell each, in canonical seed-major order — and a [`UnitRunner`]
//! executes units one at a time while building **one `Arc`-shared world per configuration
//! point**: the base topology is built once ([`Campaign`]), every distinct seed derives a
//! world copy-on-write via `Scenario::with_seed`, and all algorithms at that seed share it.
//!
//! Artifacts use the `repro --json` wire format: [`unit_artifact`] wraps one run's summary
//! plus its hourly [`FigureData`] series as a JSON document, and [`merge_artifacts`] folds the
//! units (sorted by index) into one campaign document with cross-seed comparison figures.
//! Both sides are *canonicalized* (serialized and re-parsed through the strict JSON shim), so
//! a merged document assembled from artifacts that crossed a wire is byte-identical to one
//! assembled in process — the invariant the campaign server's determinism tests pin.
//!
//! [`run_local`] is the single-process reference path: decompose, execute every unit on the
//! calling thread, merge.  Whatever a master/worker fleet returns for a spec must equal
//! `run_local(&spec)` byte for byte, regardless of worker count, join order or mid-campaign
//! worker kills.

use crate::campaign::Campaign;
use crate::figures::{FigureData, Series};
use crate::scale::ExperimentScale;
use p2pgrid_core::error::ConfigError;
use p2pgrid_core::{Algorithm, AlgorithmConfig, Scenario, SimulationReport};
use p2pgrid_workflow::WorkloadSpec;
use serde::json::{self, Value};
use std::collections::HashMap;
use std::fmt;

/// The serialization format tag of a campaign spec document.
pub const CAMPAIGN_FORMAT: &str = "p2pgrid-campaign/v1";
/// The format tag of one run-unit's result artifact.
pub const UNIT_FORMAT: &str = "p2pgrid-campaign-unit/v1";
/// The format tag of the merged campaign result document.
pub const RESULT_FORMAT: &str = "p2pgrid-campaign-result/v1";

/// Anything that can go wrong turning a spec into executed artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The spec document is malformed or inconsistent.
    Spec(String),
    /// The spec is well-formed but names an invalid grid configuration.
    Config(ConfigError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(msg) => write!(f, "invalid campaign spec: {msg}"),
            CampaignError::Config(e) => write!(f, "invalid grid configuration: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ConfigError> for CampaignError {
    fn from(e: ConfigError) -> Self {
        CampaignError::Config(e)
    }
}

fn spec_err(msg: impl Into<String>) -> CampaignError {
    CampaignError::Spec(msg.into())
}

/// A complete sweep campaign as data: scenario scale × seed range × algorithm set, plus an
/// optional workload document replayed at every point.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Human-readable campaign name (echoed into artifacts).
    pub name: String,
    /// The scenario configuration preset every unit builds from.
    pub scale: ExperimentScale,
    /// The topology/workload seeds to sweep (the first seed anchors the shared base world).
    pub seeds: Vec<u64>,
    /// The algorithm set to run at every seed.
    pub algorithms: Vec<Algorithm>,
    /// Optional serialized workload (`p2pgrid-workload/v1`) replayed instead of the
    /// synthetic generator at every unit.
    pub workload: Option<WorkloadSpec>,
}

/// One cell of a campaign: run `algorithm` on the world derived for `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunUnit {
    /// Position in the canonical decomposition order (seed-major); merge order key.
    pub index: usize,
    /// The world seed for this unit.
    pub seed: u64,
    /// The algorithm to run.
    pub algorithm: Algorithm,
}

impl CampaignSpec {
    /// Lowercase name of a scale, the spelling `ExperimentScale::parse` accepts.
    fn scale_name(scale: ExperimentScale) -> &'static str {
        match scale {
            ExperimentScale::Smoke => "smoke",
            ExperimentScale::Reduced => "reduced",
            ExperimentScale::Full => "full",
        }
    }

    /// Check internal consistency: non-empty unique seeds, non-empty unique algorithms, a
    /// resolvable workload document, and a valid base grid configuration.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.name.is_empty() {
            return Err(spec_err("campaign name must not be empty"));
        }
        if self.seeds.is_empty() {
            return Err(spec_err("seed list must not be empty"));
        }
        let mut seen = self.seeds.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != self.seeds.len() {
            return Err(spec_err("seed list contains duplicates"));
        }
        if self.algorithms.is_empty() {
            return Err(spec_err("algorithm list must not be empty"));
        }
        let mut names: Vec<&str> = self.algorithms.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.algorithms.len() {
            return Err(spec_err("algorithm list contains duplicates"));
        }
        if let Some(w) = &self.workload {
            w.resolve()
                .map_err(|e| spec_err(format!("workload does not resolve: {e}")))?;
        }
        self.base_config().validate()?;
        Ok(())
    }

    /// The grid configuration of the shared base world (first seed; workload applied).
    pub fn base_config(&self) -> p2pgrid_core::GridConfig {
        let cfg = self.scale.base_config(self.seeds[0]);
        match &self.workload {
            Some(w) => cfg.with_workload(w.clone()),
            None => cfg,
        }
    }

    /// Decompose into run-units in canonical order: seed-major, algorithms in spec order —
    /// `units[s * algorithms.len() + a]` is `(seeds[s], algorithms[a])`.
    pub fn units(&self) -> Vec<RunUnit> {
        self.seeds
            .iter()
            .flat_map(|&seed| {
                self.algorithms
                    .iter()
                    .map(move |&algorithm| (seed, algorithm))
            })
            .enumerate()
            .map(|(index, (seed, algorithm))| RunUnit {
                index,
                seed,
                algorithm,
            })
            .collect()
    }

    /// The spec as a JSON document.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("format", Value::from(CAMPAIGN_FORMAT)),
            ("name", Value::from(self.name.as_str())),
            ("scale", Value::from(Self::scale_name(self.scale))),
            ("seeds", Value::array(self.seeds.iter().copied())),
            (
                "algorithms",
                Value::Array(
                    self.algorithms
                        .iter()
                        .map(|a| Value::from(a.name()))
                        .collect(),
                ),
            ),
        ];
        if let Some(w) = &self.workload {
            fields.push(("workload", w.to_json()));
        }
        Value::object(fields)
    }

    /// Decode a spec from its JSON document (the inverse of [`CampaignSpec::to_json`]).
    pub fn from_json(v: &Value) -> Result<Self, CampaignError> {
        let tag = v
            .get("format")
            .and_then(Value::as_str)
            .ok_or_else(|| spec_err("missing `format` tag"))?;
        if tag != CAMPAIGN_FORMAT {
            return Err(spec_err(format!(
                "unsupported format `{tag}` (expected `{CAMPAIGN_FORMAT}`)"
            )));
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| spec_err("missing string field `name`"))?
            .to_string();
        let scale_str = v
            .get("scale")
            .and_then(Value::as_str)
            .ok_or_else(|| spec_err("missing string field `scale`"))?;
        let scale = ExperimentScale::parse(scale_str).ok_or_else(|| {
            spec_err(format!(
                "unknown scale `{scale_str}` (accepted: smoke, reduced, full)"
            ))
        })?;
        let seeds = v
            .get("seeds")
            .and_then(Value::as_array)
            .ok_or_else(|| spec_err("missing array field `seeds`"))?
            .iter()
            .map(|s| {
                s.as_u64()
                    .ok_or_else(|| spec_err("seeds must be non-negative integers"))
            })
            .collect::<Result<Vec<u64>, _>>()?;
        let algorithms = v
            .get("algorithms")
            .and_then(Value::as_array)
            .ok_or_else(|| spec_err("missing array field `algorithms`"))?
            .iter()
            .map(|a| {
                let name = a
                    .as_str()
                    .ok_or_else(|| spec_err("algorithms must be strings"))?;
                Algorithm::parse(name).ok_or_else(|| {
                    let accepted: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
                    spec_err(format!(
                        "unknown algorithm `{name}` (accepted: {})",
                        accepted.join(", ")
                    ))
                })
            })
            .collect::<Result<Vec<Algorithm>, _>>()?;
        let workload = match v.get("workload") {
            None | Some(Value::Null) => None,
            Some(w) => Some(
                WorkloadSpec::from_json(w)
                    .map_err(|e| spec_err(format!("embedded workload: {e}")))?,
            ),
        };
        let spec = CampaignSpec {
            name,
            scale,
            seeds,
            algorithms,
            workload,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Run the whole campaign on the calling thread and return the merged result document —
    /// the byte-exact reference every distributed execution must reproduce.
    pub fn run_local(&self) -> Result<String, CampaignError> {
        run_local(self)
    }
}

/// Canonicalize a value for artifact use: serialize compactly and re-parse.  This maps
/// non-finite numbers to `null` exactly the way the wire does, so in-process and
/// over-the-wire artifact trees are always equal — and therefore merge to identical bytes.
fn canonical(v: Value) -> Value {
    json::parse(&v.to_string()).expect("canonical JSON round trip cannot fail")
}

/// Executes run-units of one campaign, sharing worlds across units.
///
/// The base world (topology + all-pairs metrics + landmarks) is built **once** at
/// construction; each distinct seed derives a scenario copy-on-write from it on first use and
/// caches it, so the `algorithms.len()` units of one configuration point all run over the
/// same `Arc`-shared world.
#[derive(Debug)]
pub struct UnitRunner {
    spec: CampaignSpec,
    campaign: Campaign,
    worlds: HashMap<u64, Scenario>,
}

impl std::str::FromStr for CampaignSpec {
    type Err = CampaignError;

    /// Parse a spec from JSON text.
    fn from_str(text: &str) -> Result<Self, CampaignError> {
        let v = json::parse(text).map_err(|e| spec_err(e.to_string()))?;
        Self::from_json(&v)
    }
}

impl UnitRunner {
    /// Validate the spec and build the shared base world.
    pub fn new(spec: CampaignSpec) -> Result<Self, CampaignError> {
        spec.validate()?;
        let campaign = Campaign::from_config(spec.base_config())?;
        Ok(UnitRunner {
            spec,
            campaign,
            worlds: HashMap::new(),
        })
    }

    /// The spec this runner executes.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The scenario for a seed, derived copy-on-write from the base world on first use.
    fn world(&mut self, seed: u64) -> Result<&Scenario, CampaignError> {
        if !self.worlds.contains_key(&seed) {
            let scenario = if seed == self.spec.seeds[0] {
                self.campaign.base().clone()
            } else {
                self.campaign.base().with_seed(seed)?
            };
            self.worlds.insert(seed, scenario);
        }
        Ok(&self.worlds[&seed])
    }

    /// Execute one unit to its horizon and return its canonical artifact document.
    pub fn run(&mut self, unit: &RunUnit) -> Result<Value, CampaignError> {
        let scenario = self.world(unit.seed)?;
        let report = scenario
            .simulate_config(AlgorithmConfig::paper_default(unit.algorithm))
            .run();
        Ok(unit_artifact(unit, &report))
    }
}

/// Hourly series of one report as a figure in the `repro --json` wire format.
fn unit_figure(
    unit: &RunUnit,
    id_suffix: &str,
    title: &str,
    y_label: &str,
    points: Vec<(f64, f64)>,
) -> FigureData {
    let mut fig = FigureData::new(
        format!("u{}-{}", unit.index, id_suffix),
        title,
        "hour",
        y_label,
    );
    fig.push_series(Series::new(unit.algorithm.name(), points));
    fig
}

/// Wrap one executed unit's report as its canonical artifact document
/// (`p2pgrid-campaign-unit/v1`): run coordinates, a scalar summary (workflow counts, ACT,
/// AE, gossip traffic, the robustness ledger) and the three hourly [`FigureData`] series.
pub fn unit_artifact(unit: &RunUnit, report: &SimulationReport) -> Value {
    let hourly = |series: &p2pgrid_metrics::TimeSeries| -> Vec<(f64, f64)> {
        series
            .points()
            .iter()
            .map(|&(t, v)| (t.as_hours_f64(), v))
            .collect()
    };
    let summary = Value::object([
        ("nodes", Value::from(report.nodes)),
        ("submitted", Value::from(report.submitted)),
        ("completed", Value::from(report.completed)),
        ("failed", Value::from(report.failed)),
        ("act_secs", Value::from(report.act_secs())),
        (
            "average_efficiency",
            Value::from(report.average_efficiency()),
        ),
        ("avg_rss_size", Value::from(report.avg_rss_size)),
        (
            "end_time_hours",
            Value::from(report.end_time.as_hours_f64()),
        ),
        (
            "gossip",
            Value::object([
                ("cycles", Value::from(report.gossip_stats.cycles)),
                (
                    "epidemic_messages",
                    Value::from(report.gossip_stats.epidemic_messages),
                ),
                (
                    "aggregation_exchanges",
                    Value::from(report.gossip_stats.aggregation_exchanges),
                ),
                ("bytes_sent", Value::from(report.gossip_stats.bytes_sent)),
            ]),
        ),
        (
            "robustness",
            Value::object([
                (
                    "node_failures",
                    Value::from(report.robustness.node_failures),
                ),
                ("tasks_lost", Value::from(report.robustness.tasks_lost)),
                ("retries", Value::from(report.robustness.retries)),
                ("useful_mi", Value::from(report.robustness.useful_mi)),
                ("wasted_mi", Value::from(report.robustness.wasted_mi)),
                ("goodput", Value::from(report.robustness.goodput())),
            ]),
        ),
    ]);
    let figures = [
        unit_figure(
            unit,
            "throughput",
            "Cumulative throughput",
            "workflows finished",
            hourly(report.metrics.throughput_series()),
        ),
        unit_figure(
            unit,
            "act",
            "Average completion time",
            "ACT (s)",
            hourly(report.metrics.act_series()),
        ),
        unit_figure(
            unit,
            "ae",
            "Average efficiency",
            "AE",
            hourly(report.metrics.ae_series()),
        ),
    ];
    canonical(Value::object([
        ("format", Value::from(UNIT_FORMAT)),
        ("unit", Value::from(unit.index)),
        ("seed", Value::from(unit.seed)),
        ("algorithm", Value::from(unit.algorithm.name())),
        ("summary", summary),
        (
            "figures",
            Value::Array(figures.iter().map(FigureData::to_json).collect()),
        ),
    ]))
}

/// A summary scalar of one unit artifact, for the campaign-level comparison figures.
fn summary_scalar(unit: &Value, key: &str) -> f64 {
    unit.get("summary")
        .and_then(|s| s.get(key))
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN)
}

/// Fold executed unit artifacts into the merged campaign result document
/// (`p2pgrid-campaign-result/v1`).
///
/// `units` must hold one artifact per run-unit; they are sorted by their embedded unit index,
/// so the caller may pass them in any completion order.  On top of the verbatim unit
/// artifacts, the document carries campaign-level comparison figures (final throughput / ACT
/// / AE versus seed, one series per algorithm) in the same wire format.
pub fn merge_artifacts(spec: &CampaignSpec, units: &[Value]) -> Result<Value, CampaignError> {
    let expected = spec.seeds.len() * spec.algorithms.len();
    if units.len() != expected {
        return Err(spec_err(format!(
            "campaign has {expected} units, got {} artifacts",
            units.len()
        )));
    }
    let mut sorted: Vec<&Value> = units.iter().collect();
    sorted.sort_by_key(|u| u.get("unit").and_then(Value::as_u64).unwrap_or(u64::MAX));
    for (i, u) in sorted.iter().enumerate() {
        let (idx, tag) = (
            u.get("unit").and_then(Value::as_u64),
            u.get("format").and_then(Value::as_str),
        );
        if tag != Some(UNIT_FORMAT) {
            return Err(spec_err(format!("artifact {i} is not a `{UNIT_FORMAT}`")));
        }
        if idx != Some(i as u64) {
            return Err(spec_err(format!(
                "unit indices are not a permutation of 0..{expected} (saw {idx:?} at {i})"
            )));
        }
    }
    // Campaign-level figures: one point per seed, one series per algorithm, sweeping the
    // final value of each headline metric.
    let metric = |key: &str, id: &str, title: &str, y_label: &str| -> FigureData {
        let mut fig = FigureData::new(id, title, "seed", y_label);
        for (a, algorithm) in spec.algorithms.iter().enumerate() {
            let points = spec
                .seeds
                .iter()
                .enumerate()
                .map(|(s, &seed)| {
                    let unit = sorted[s * spec.algorithms.len() + a];
                    (seed as f64, summary_scalar(unit, key))
                })
                .collect();
            fig.push_series(Series::new(algorithm.name(), points));
        }
        fig
    };
    let figures = [
        metric(
            "completed",
            "campaign-throughput",
            "Final throughput per seed",
            "workflows finished",
        ),
        metric("act_secs", "campaign-act", "Final ACT per seed", "ACT (s)"),
        metric(
            "average_efficiency",
            "campaign-ae",
            "Final AE per seed",
            "AE",
        ),
    ];
    Ok(canonical(Value::object([
        ("format", Value::from(RESULT_FORMAT)),
        ("name", Value::from(spec.name.as_str())),
        ("scale", Value::from(CampaignSpec::scale_name(spec.scale))),
        ("seeds", Value::array(spec.seeds.iter().copied())),
        (
            "algorithms",
            Value::Array(
                spec.algorithms
                    .iter()
                    .map(|a| Value::from(a.name()))
                    .collect(),
            ),
        ),
        (
            "figures",
            Value::Array(figures.iter().map(FigureData::to_json).collect()),
        ),
        ("units", Value::Array(sorted.into_iter().cloned().collect())),
    ])))
}

/// Render a merged result document the way artifacts land on disk: pretty-printed with a
/// trailing newline.  Both the campaign server and [`run_local`] emit exactly this form, so
/// equality of the returned strings is the byte-identity acceptance check.
pub fn render_result(result: &Value) -> String {
    let mut doc = result.to_string_pretty();
    doc.push('\n');
    doc
}

/// Execute a whole campaign on the calling thread: decompose, run every unit in canonical
/// order over shared worlds, merge — the single-process reference for the campaign server.
pub fn run_local(spec: &CampaignSpec) -> Result<String, CampaignError> {
    let mut runner = UnitRunner::new(spec.clone())?;
    let artifacts = spec
        .units()
        .iter()
        .map(|u| runner.run(u))
        .collect::<Result<Vec<Value>, _>>()?;
    Ok(render_result(&merge_artifacts(spec, &artifacts)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pgrid_workflow::{shapes, HomePolicy, WorkflowSpec, WorkloadEntry};
    use std::str::FromStr;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            scale: ExperimentScale::Smoke,
            seeds: vec![7, 9],
            algorithms: vec![Algorithm::Dsmf, Algorithm::MinMin],
            workload: None,
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = tiny_spec();
        let text = spec.to_json().to_string_pretty();
        let back = CampaignSpec::from_str(&text).unwrap();
        assert_eq!(back, spec);

        let wf = WorkflowSpec::from_workflow("d", &shapes::diamond(50.0, 200.0, 5.0)).unwrap();
        let with_workload = CampaignSpec {
            workload: Some(WorkloadSpec {
                name: "w".into(),
                workflows: vec![wf],
                entries: vec![WorkloadEntry {
                    workflow: "d".into(),
                    submit_at_ms: 0,
                    home: HomePolicy::Auto,
                }],
            }),
            ..tiny_spec()
        };
        let back = CampaignSpec::from_str(&with_workload.to_json().to_string()).unwrap();
        assert_eq!(back, with_workload);
    }

    #[test]
    fn spec_validation_rejects_inconsistencies() {
        assert!(CampaignSpec {
            seeds: vec![],
            ..tiny_spec()
        }
        .validate()
        .is_err());
        assert!(CampaignSpec {
            seeds: vec![1, 1],
            ..tiny_spec()
        }
        .validate()
        .is_err());
        assert!(CampaignSpec {
            algorithms: vec![],
            ..tiny_spec()
        }
        .validate()
        .is_err());
        assert!(CampaignSpec {
            algorithms: vec![Algorithm::Dsmf, Algorithm::Dsmf],
            ..tiny_spec()
        }
        .validate()
        .is_err());
        let err = CampaignSpec::from_str("{\"format\":\"nope\"}").unwrap_err();
        assert!(err.to_string().contains("unsupported format"), "{err}");
        let bad_algo = tiny_spec().to_json().to_string().replace("DSMF", "BOGUS");
        let err = CampaignSpec::from_str(&bad_algo).unwrap_err();
        assert!(err.to_string().contains("BOGUS"), "{err}");
    }

    #[test]
    fn decomposition_is_seed_major_and_indexed() {
        let units = tiny_spec().units();
        assert_eq!(units.len(), 4);
        assert_eq!(units[0].seed, 7);
        assert_eq!(units[0].algorithm, Algorithm::Dsmf);
        assert_eq!(units[1].seed, 7);
        assert_eq!(units[1].algorithm, Algorithm::MinMin);
        assert_eq!(units[2].seed, 9);
        for (i, u) in units.iter().enumerate() {
            assert_eq!(u.index, i);
        }
    }

    #[test]
    fn runner_shares_one_world_per_seed() {
        let spec = tiny_spec();
        let mut runner = UnitRunner::new(spec.clone()).unwrap();
        for unit in spec.units() {
            runner.run(&unit).unwrap();
        }
        assert_eq!(runner.worlds.len(), 2);
        for world in runner.worlds.values() {
            assert!(world.shares_topology_with(runner.campaign.base()));
        }
    }

    #[test]
    fn merge_is_completion_order_independent_and_checks_units() {
        let spec = tiny_spec();
        let mut runner = UnitRunner::new(spec.clone()).unwrap();
        let mut artifacts: Vec<Value> = spec
            .units()
            .iter()
            .map(|u| runner.run(u).unwrap())
            .collect();
        let in_order = render_result(&merge_artifacts(&spec, &artifacts).unwrap());
        artifacts.reverse();
        let reversed = render_result(&merge_artifacts(&spec, &artifacts).unwrap());
        assert_eq!(in_order, reversed);
        assert!(in_order.contains("campaign-throughput"));

        assert!(merge_artifacts(&spec, &artifacts[..3]).is_err());
        let mut dup = artifacts.clone();
        dup[0] = dup[1].clone();
        assert!(merge_artifacts(&spec, &dup).is_err());
    }

    #[test]
    fn run_local_is_deterministic() {
        let spec = CampaignSpec {
            seeds: vec![7],
            ..tiny_spec()
        };
        let a = run_local(&spec).unwrap();
        let b = run_local(&spec).unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"format\": \"p2pgrid-campaign-result/v1\""));
        assert!(a.ends_with('\n'));
    }
}
