//! Figure data structures shared by all experiment runners.

use p2pgrid_metrics::format_table;
use serde::{Deserialize, Serialize};

/// One curve of a figure: a legend label and `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. algorithm name or `df=0.2`).
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The series as a JSON value (`{"label": ..., "points": [[x, y], ...]}`).
    pub fn to_json(&self) -> serde::json::Value {
        serde::json::Value::object([
            ("label", self.label.as_str().into()),
            ("points", serde::json::Value::array(self.points.clone())),
        ])
    }

    /// The final y value, if any.
    pub fn final_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// The y value at the given x (exact match), if present.
    pub fn value_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// The regenerated data behind one of the paper's figures (or text tables).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Identifier such as `"fig4"`, `"fig11a"`, `"fcfs-ablation"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// All curves.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Create an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a curve.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Find a curve by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// The whole figure as a machine-readable JSON document — the artifact `repro --json`
    /// writes, one file per figure.  Serialized through the serde compat shim's
    /// [`json`](serde::json) backend; with the real `serde`/`serde_json` this maps
    /// one-to-one onto `#[derive(Serialize)]`.
    pub fn to_json(&self) -> serde::json::Value {
        serde::json::Value::object([
            ("id", self.id.as_str().into()),
            ("title", self.title.as_str().into()),
            ("x_label", self.x_label.as_str().into()),
            ("y_label", self.y_label.as_str().into()),
            (
                "series",
                serde::json::Value::Array(self.series.iter().map(Series::to_json).collect()),
            ),
        ])
    }

    /// Render as an aligned plain-text table: one row per x value, one column per series.
    pub fn render(&self) -> String {
        let mut out = format!("# {} — {}\n", self.id, self.title);
        if self.series.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        // Collect the union of x values in order of first appearance.
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, _) in &s.points {
                if !xs.iter().any(|&e| (e - x).abs() < 1e-9) {
                    xs.push(x);
                }
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let header: Vec<&str> = std::iter::once(self.x_label.as_str())
            .chain(self.series.iter().map(|s| s.label.as_str()))
            .collect();
        let rows: Vec<Vec<String>> = xs
            .iter()
            .map(|&x| {
                std::iter::once(format!("{x:.2}"))
                    .chain(self.series.iter().map(|s| {
                        s.value_at(x)
                            .map(|v| format!("{v:.3}"))
                            .unwrap_or_else(|| "-".to_string())
                    }))
                    .collect()
            })
            .collect();
        out.push_str(&format_table(&header, &rows));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_queries() {
        let s = Series::new("DSMF", vec![(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)]);
        assert_eq!(s.final_value(), Some(4.0));
        assert_eq!(s.value_at(1.0), Some(2.0));
        assert_eq!(s.value_at(9.0), None);
        assert_eq!(Series::new("x", vec![]).final_value(), None);
    }

    #[test]
    fn figure_render_includes_every_series_and_x_value() {
        let mut fig = FigureData::new("fig4", "Throughput", "hour", "workflows finished");
        fig.push_series(Series::new("DSMF", vec![(0.0, 0.0), (1.0, 10.0)]));
        fig.push_series(Series::new("HEFT", vec![(1.0, 5.0), (2.0, 9.0)]));
        let text = fig.render();
        assert!(text.contains("fig4"));
        assert!(text.contains("DSMF"));
        assert!(text.contains("HEFT"));
        // x = 0, 1, 2 all appear; missing cells render as '-'.
        assert!(text.contains("0.00"));
        assert!(text.contains("2.00"));
        assert!(text.contains('-'));
        assert!(fig.series_by_label("DSMF").is_some());
        assert!(fig.series_by_label("nope").is_none());
    }

    #[test]
    fn empty_figure_renders_placeholder() {
        let fig = FigureData::new("figX", "Empty", "x", "y");
        assert!(fig.render().contains("(no data)"));
    }

    #[test]
    fn json_export_carries_every_series_and_point() {
        let mut fig = FigureData::new("fig4", "Throughput", "hour", "workflows finished");
        fig.push_series(Series::new("DSMF", vec![(0.0, 0.0), (1.0, 10.0)]));
        fig.push_series(Series::new("HEFT", vec![(2.0, 9.5)]));
        let json = fig.to_json().to_string();
        assert_eq!(
            json,
            "{\"id\":\"fig4\",\"title\":\"Throughput\",\"x_label\":\"hour\",\
             \"y_label\":\"workflows finished\",\"series\":[\
             {\"label\":\"DSMF\",\"points\":[[0,0],[1,10]]},\
             {\"label\":\"HEFT\",\"points\":[[2,9.5]]}]}"
        );
        // The pretty form is what lands on disk; it must stay parseable-looking.
        assert!(fig
            .to_json()
            .to_string_pretty()
            .contains("\"id\": \"fig4\""));
    }
}
