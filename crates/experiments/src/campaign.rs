//! Batched sweep execution over copy-on-write derived worlds.
//!
//! Every experiment in this crate has the same shape: take one *base* world, vary a single
//! knob across a handful of sweep points, and run one or more algorithms at every point.
//! [`Campaign`] packages that shape so the expensive part — building the topology and its
//! all-pairs bandwidth/latency tables — happens **once**:
//!
//! 1. Build (or adopt) the base [`Scenario`].
//! 2. [`Campaign::derive`] one scenario per sweep point with the copy-on-write
//!    `Scenario::with_*` methods, which re-sample only the affected RNG stream and share the
//!    `Arc`'d topology tables with the base.
//! 3. [`cross`] the scenarios with the algorithm configurations into a flat job list and
//!    [`run`] it across the shared work-stealing pool.  Reports come back in job order, so
//!    no index bookkeeping is needed.
//!
//! [`run_sequential`] is the single-threaded reference path: it executes the identical job
//! list on the calling thread and is used by the `campaign_sweep` bench (pooled versus
//! sequential wall-clock) and by determinism tests (the pooled results must be byte-identical
//! to the sequential ones).

use p2pgrid_core::error::ConfigError;
use p2pgrid_core::{Algorithm, AlgorithmConfig, GridConfig, Scenario, SimulationReport};
use rayon::prelude::*;

/// One unit of campaign work: a world (a cheap `Arc` handle) plus the algorithm
/// configuration to run over it.
#[derive(Debug, Clone)]
pub struct Job {
    /// The pre-built world this job simulates.
    pub scenario: Scenario,
    /// The algorithm configuration (first-phase heuristic + second-phase rule) to run.
    pub algorithm: AlgorithmConfig,
}

impl Job {
    /// Pair a world with an algorithm configuration.
    pub fn new(scenario: Scenario, algorithm: AlgorithmConfig) -> Self {
        Job {
            scenario,
            algorithm,
        }
    }

    /// Run this job to its horizon.
    pub fn run(&self) -> SimulationReport {
        self.scenario.simulate_config(self.algorithm).run()
    }
}

/// A sweep campaign anchored on one base world.
#[derive(Debug, Clone)]
pub struct Campaign {
    base: Scenario,
}

impl Campaign {
    /// Anchor a campaign on an already-built world.
    pub fn new(base: Scenario) -> Self {
        Campaign { base }
    }

    /// Build the base world from a configuration (one topology + `PairwiseMetrics` +
    /// landmark computation — the only full build the campaign pays for).
    pub fn from_config(config: GridConfig) -> Result<Self, ConfigError> {
        Ok(Campaign {
            base: Scenario::build(config)?,
        })
    }

    /// The base world sweep points derive from.
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// Derive one scenario per sweep point, copy-on-write from the base world.
    ///
    /// `derive` should call one of the `Scenario::with_*` methods on the base; each derived
    /// world then shares the base's `Arc`'d topology tables instead of rebuilding them.
    /// Derivation runs on the calling thread — it is cheap by construction, and keeping it
    /// sequential keeps the pool free for the simulation jobs.
    pub fn derive<P, D>(&self, points: &[P], derive: D) -> Result<Vec<Scenario>, ConfigError>
    where
        D: Fn(&Scenario, &P) -> Result<Scenario, ConfigError>,
    {
        points.iter().map(|p| derive(&self.base, p)).collect()
    }

    /// Derive a scenario per point, cross with `algorithms`, run pooled, and return
    /// `reports[algorithm][point]` — the layout every figure in this crate consumes.
    pub fn sweep<P, D>(
        &self,
        points: &[P],
        derive: D,
        algorithms: &[AlgorithmConfig],
    ) -> Result<Vec<Vec<SimulationReport>>, ConfigError>
    where
        D: Fn(&Scenario, &P) -> Result<Scenario, ConfigError>,
    {
        let scenarios = self.derive(points, derive)?;
        let mut reports = run(&cross(&scenarios, algorithms)).into_iter();
        Ok(algorithms
            .iter()
            .map(|_| reports.by_ref().take(points.len()).collect())
            .collect())
    }
}

/// Cross scenarios with algorithm configurations into a flat job list, algorithm-major:
/// `jobs[a * scenarios.len() + s]` runs `algorithms[a]` on `scenarios[s]`.
pub fn cross(scenarios: &[Scenario], algorithms: &[AlgorithmConfig]) -> Vec<Job> {
    algorithms
        .iter()
        .flat_map(|&algo| scenarios.iter().map(move |s| Job::new(s.clone(), algo)))
        .collect()
}

/// The eight paper-default algorithm configurations, in [`Algorithm::ALL`] order.
pub fn paper_algorithms() -> Vec<AlgorithmConfig> {
    Algorithm::ALL
        .iter()
        .map(|&a| AlgorithmConfig::paper_default(a))
        .collect()
}

/// Run every job across the shared work-stealing pool.  Reports are returned in job order
/// regardless of which worker finished first.
pub fn run(jobs: &[Job]) -> Vec<SimulationReport> {
    jobs.par_iter().map(Job::run).collect()
}

/// Run every job on the calling thread, in order — the reference path the pooled [`run`]
/// must match byte for byte (each session owns its RNG state, so scheduling across threads
/// cannot change any report).
pub fn run_sequential(jobs: &[Job]) -> Vec<SimulationReport> {
    jobs.iter().map(Job::run).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;

    #[test]
    fn sweep_derives_from_one_topology_and_keeps_figure_layout() {
        let campaign = Campaign::from_config(ExperimentScale::Smoke.base_config(7)).unwrap();
        let points = [1usize, 2, 4];
        let scenarios = campaign
            .derive(&points, |base, &lf| base.with_load_factor(lf))
            .unwrap();
        for s in &scenarios {
            assert!(s.shares_topology_with(campaign.base()));
        }
        let algorithms = [
            AlgorithmConfig::paper_default(Algorithm::Dsmf),
            AlgorithmConfig::paper_default(Algorithm::MinMin),
        ];
        let reports = campaign
            .sweep(&points, |base, &lf| base.with_load_factor(lf), &algorithms)
            .unwrap();
        assert_eq!(reports.len(), algorithms.len());
        for row in &reports {
            assert_eq!(row.len(), points.len());
        }
        assert_eq!(reports[0][0].algorithm, Algorithm::Dsmf.name());
        assert_eq!(reports[1][0].algorithm, Algorithm::MinMin.name());
        // More workflows per node means more submissions at every point of the DSMF row.
        assert!(reports[0][2].submitted > reports[0][0].submitted);
    }

    #[test]
    fn pooled_and_sequential_runs_agree() {
        let campaign = Campaign::from_config(ExperimentScale::Smoke.base_config(13)).unwrap();
        let jobs = cross(
            std::slice::from_ref(campaign.base()),
            &[
                AlgorithmConfig::paper_default(Algorithm::Dsmf),
                AlgorithmConfig::paper_default(Algorithm::Heft),
            ],
        );
        let pooled = run(&jobs);
        let sequential = run_sequential(&jobs);
        assert_eq!(pooled.len(), sequential.len());
        for (p, s) in pooled.iter().zip(&sequential) {
            assert_eq!(p.algorithm, s.algorithm);
            assert_eq!(p.completed, s.completed);
            assert_eq!(p.act_secs().to_bits(), s.act_secs().to_bits());
            assert_eq!(
                p.average_efficiency().to_bits(),
                s.average_efficiency().to_bits()
            );
        }
    }

    #[test]
    fn paper_algorithms_cover_all_eight() {
        assert_eq!(paper_algorithms().len(), Algorithm::ALL.len());
    }
}
