//! The headline static-environment comparison: Fig. 4 (throughput), Fig. 5 (ACT), Fig. 6 (AE)
//! and the abstract's 20–60 % / 37.5–90 % claims.

use crate::campaign;
use crate::figures::{FigureData, Series};
use crate::scale::ExperimentScale;
use p2pgrid_core::{Algorithm, Scenario, SimulationReport};
use p2pgrid_metrics::{format_table, TimeSeries};

/// Results of running all eight algorithms on the same static workload.
#[derive(Debug, Clone)]
pub struct StaticComparison {
    /// One report per algorithm, in [`Algorithm::ALL`] order.
    pub reports: Vec<SimulationReport>,
}

/// Convert an hourly-sampled [`TimeSeries`] into figure points (x in hours).
pub fn series_points(ts: &TimeSeries) -> Vec<(f64, f64)> {
    ts.points()
        .iter()
        .map(|&(t, v)| (t.as_hours_f64(), v))
        .collect()
}

/// Run the eight algorithms (in parallel) on the same static grid.  The world — topology,
/// all-pairs bandwidths, capacities, workflows — is built **once** and shared across all
/// eight sessions; only the scheduler differs per run.
pub fn run(scale: ExperimentScale, seed: u64) -> StaticComparison {
    let scenario = Scenario::build(scale.base_config(seed))
        .unwrap_or_else(|e| panic!("invalid static-comparison configuration: {e}"));
    run_on(&scenario)
}

/// Run the eight algorithms (across the pool) on one pre-built shared [`Scenario`].
pub fn run_on(scenario: &Scenario) -> StaticComparison {
    let jobs = campaign::cross(
        std::slice::from_ref(scenario),
        &campaign::paper_algorithms(),
    );
    StaticComparison {
        reports: campaign::run(&jobs),
    }
}

/// The abstract's headline claims, recomputed from a comparison run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineClaims {
    /// Smallest and largest percentage reduction of DSMF's ACT versus the other decentralized
    /// algorithms (paper: 20–60 %).
    pub act_reduction_pct: (f64, f64),
    /// Smallest and largest percentage improvement of DSMF's AE versus the other decentralized
    /// algorithms (paper: 37.5–90 %).
    pub ae_improvement_pct: (f64, f64),
}

impl StaticComparison {
    /// The report for one algorithm.
    pub fn report(&self, alg: Algorithm) -> &SimulationReport {
        let idx = Algorithm::ALL
            .iter()
            .position(|&a| a == alg)
            .expect("algorithm is in ALL");
        &self.reports[idx]
    }

    fn figure_from(
        &self,
        id: &str,
        title: &str,
        y_label: &str,
        select: impl Fn(&SimulationReport) -> &TimeSeries,
    ) -> FigureData {
        let mut fig = FigureData::new(id, title, "hour", y_label);
        for (alg, report) in Algorithm::ALL.iter().zip(&self.reports) {
            fig.push_series(Series::new(alg.name(), series_points(select(report))));
        }
        fig
    }

    /// Fig. 4: cumulative workflows finished over time.
    pub fn fig4_throughput(&self) -> FigureData {
        self.figure_from(
            "fig4",
            "Throughput of workflows in a static P2P grid",
            "workflows finished",
            |r| r.metrics.throughput_series(),
        )
    }

    /// Fig. 5: average finish time over time.
    pub fn fig5_average_finish_time(&self) -> FigureData {
        self.figure_from(
            "fig5",
            "Average finish-time of workflows in a static P2P grid",
            "average finish time (s)",
            |r| r.metrics.act_series(),
        )
    }

    /// Fig. 6: average efficiency over time.
    pub fn fig6_average_efficiency(&self) -> FigureData {
        self.figure_from(
            "fig6",
            "Average efficiency of workflows in a static P2P grid",
            "average efficiency",
            |r| r.metrics.ae_series(),
        )
    }

    /// The converged (end-of-run) summary table.
    pub fn summary_table(&self) -> String {
        let rows: Vec<Vec<String>> = self.reports.iter().map(|r| r.summary_row()).collect();
        format_table(&SimulationReport::summary_header(), &rows)
    }

    /// Recompute the abstract's headline claims against the other decentralized algorithms.
    pub fn headline(&self) -> HeadlineClaims {
        let dsmf = self.report(Algorithm::Dsmf);
        let mut act_red: Vec<f64> = Vec::new();
        let mut ae_imp: Vec<f64> = Vec::new();
        for alg in Algorithm::DECENTRALIZED {
            if alg == Algorithm::Dsmf {
                continue;
            }
            let other = self.report(alg);
            if other.act_secs() > 0.0 {
                act_red.push((other.act_secs() - dsmf.act_secs()) / other.act_secs() * 100.0);
            }
            if other.average_efficiency() > 0.0 {
                ae_imp.push(
                    (dsmf.average_efficiency() - other.average_efficiency())
                        / other.average_efficiency()
                        * 100.0,
                );
            }
        }
        let range = |v: &[f64]| {
            (
                v.iter().copied().fold(f64::INFINITY, f64::min),
                v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            )
        };
        HeadlineClaims {
            act_reduction_pct: range(&act_red),
            ae_improvement_pct: range(&ae_imp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_comparison_produces_all_figures() {
        let cmp = run(ExperimentScale::Smoke, 11);
        assert_eq!(cmp.reports.len(), 8);
        let fig4 = cmp.fig4_throughput();
        let fig5 = cmp.fig5_average_finish_time();
        let fig6 = cmp.fig6_average_efficiency();
        assert_eq!(fig4.series.len(), 8);
        assert_eq!(fig5.series.len(), 8);
        assert_eq!(fig6.series.len(), 8);
        for s in &fig4.series {
            assert!(!s.points.is_empty(), "{} has no throughput points", s.label);
            // Throughput is non-decreasing.
            let mut last = f64::NEG_INFINITY;
            for &(_, y) in &s.points {
                assert!(y >= last);
                last = y;
            }
        }
        let table = cmp.summary_table();
        assert!(table.contains("DSMF"));
        assert!(table.contains("SMF"));
        let headline = cmp.headline();
        assert!(headline.act_reduction_pct.0 <= headline.act_reduction_pct.1);
        assert!(headline.ae_improvement_pct.0 <= headline.ae_improvement_pct.1);
    }

    #[test]
    fn every_algorithm_finishes_some_workflows_at_smoke_scale() {
        let cmp = run(ExperimentScale::Smoke, 23);
        for (alg, report) in Algorithm::ALL.iter().zip(&cmp.reports) {
            assert!(
                report.completed > 0,
                "{alg} completed no workflows in the smoke comparison"
            );
            assert_eq!(report.algorithm, alg.name());
        }
    }
}
