//! The dynamic-environment experiment of Fig. 12–14: DSMF under node churn.
//!
//! Half of the population is stable (and hosts the workflows); the other half joins/leaves the
//! system every scheduling interval according to the dynamic factor `df`.  The paper observes
//! that throughput degrades with `df` (workflows whose tasks sat on departed nodes are lost)
//! while the finish time and efficiency of the workflows that *do* finish stay roughly stable
//! for `df ≤ 0.2`.

use crate::campaign::{self, Campaign};
use crate::figures::{FigureData, Series};
use crate::scale::ExperimentScale;
use crate::static_comparison::series_points;
use p2pgrid_core::{Algorithm, AlgorithmConfig, ChurnConfig, RecoveryPolicy, SimulationReport};

/// Results of the churn sweep (DSMF only, as in the paper).
#[derive(Debug, Clone)]
pub struct ChurnSweep {
    /// Swept dynamic factors.
    pub dynamic_factors: Vec<f64>,
    /// One report per dynamic factor.
    pub reports: Vec<SimulationReport>,
    /// Whether the future-work rescheduling extension was enabled.
    pub rescheduling: bool,
}

/// Run the sweep with the paper's behaviour (lost tasks fail their workflow).
pub fn run(scale: ExperimentScale, seed: u64) -> ChurnSweep {
    run_with_rescheduling(scale, seed, false)
}

/// Run the sweep, optionally enabling the paper's future-work extension that re-schedules tasks
/// lost to churn (an unlimited-budget [`RecoveryPolicy::Retry`]) instead of failing their
/// workflow.
///
/// The base world is built **once**; each dynamic factor is derived copy-on-write with
/// [`Scenario::with_churn`], sharing the topology tables and gossip state across the sweep.
///
/// [`Scenario::with_churn`]: p2pgrid_core::Scenario::with_churn
pub fn run_with_rescheduling(scale: ExperimentScale, seed: u64, rescheduling: bool) -> ChurnSweep {
    let dynamic_factors = scale.dynamic_factor_sweep();
    let campaign = Campaign::from_config(scale.base_config(seed))
        .unwrap_or_else(|e| panic!("invalid churn base configuration: {e}"));
    let scenarios = campaign
        .derive(&dynamic_factors, |base, &df| {
            let churned = base.with_churn(ChurnConfig::with_dynamic_factor(df))?;
            if rescheduling {
                churned.with_recovery(RecoveryPolicy::unlimited_retry())
            } else {
                Ok(churned)
            }
        })
        .unwrap_or_else(|e| panic!("invalid churn sweep point: {e}"));
    let jobs = campaign::cross(
        &scenarios,
        &[AlgorithmConfig::paper_default(Algorithm::Dsmf)],
    );
    ChurnSweep {
        dynamic_factors,
        reports: campaign::run(&jobs),
        rescheduling,
    }
}

impl ChurnSweep {
    fn label(&self, df: f64) -> String {
        format!("dynamic factor={df:.1}")
    }

    /// Fig. 12: throughput over time for each dynamic factor.
    pub fn fig12_throughput(&self) -> FigureData {
        let mut fig = FigureData::new(
            "fig12",
            "Throughput of DSMF in a dynamic environment",
            "hour",
            "workflows finished",
        );
        for (df, r) in self.dynamic_factors.iter().zip(&self.reports) {
            fig.push_series(Series::new(
                self.label(*df),
                series_points(r.metrics.throughput_series()),
            ));
        }
        fig
    }

    /// Fig. 13: average finish time over time for each dynamic factor.
    pub fn fig13_average_finish_time(&self) -> FigureData {
        let mut fig = FigureData::new(
            "fig13",
            "Average finish-time of DSMF in a dynamic environment",
            "hour",
            "ACT (s)",
        );
        for (df, r) in self.dynamic_factors.iter().zip(&self.reports) {
            fig.push_series(Series::new(
                self.label(*df),
                series_points(r.metrics.act_series()),
            ));
        }
        fig
    }

    /// Fig. 14: average efficiency over time for each dynamic factor.
    pub fn fig14_average_efficiency(&self) -> FigureData {
        let mut fig = FigureData::new(
            "fig14",
            "Average efficiency of DSMF in a dynamic environment",
            "hour",
            "AE",
        );
        for (df, r) in self.dynamic_factors.iter().zip(&self.reports) {
            fig.push_series(Series::new(
                self.label(*df),
                series_points(r.metrics.ae_series()),
            ));
        }
        fig
    }

    /// The report for a given dynamic factor (exact match).
    pub fn report_for(&self, df: f64) -> Option<&SimulationReport> {
        self.dynamic_factors
            .iter()
            .position(|&x| (x - df).abs() < 1e-9)
            .map(|i| &self.reports[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_sweep_shows_throughput_degradation_but_stable_survivor_metrics() {
        let sweep = run(ExperimentScale::Smoke, 21);
        assert_eq!(sweep.reports.len(), sweep.dynamic_factors.len());
        let static_run = sweep.report_for(0.0).unwrap();
        let heavy_churn = sweep.reports.last().unwrap();
        assert!(static_run.failed == 0, "no churn means no failures");
        assert!(
            heavy_churn.completed <= static_run.completed,
            "churn should not increase throughput"
        );
        // Figures carry one curve per dynamic factor.
        assert_eq!(
            sweep.fig12_throughput().series.len(),
            sweep.dynamic_factors.len()
        );
        assert_eq!(
            sweep.fig13_average_finish_time().series.len(),
            sweep.dynamic_factors.len()
        );
        assert_eq!(
            sweep.fig14_average_efficiency().series.len(),
            sweep.dynamic_factors.len()
        );
    }

    #[test]
    fn rescheduling_extension_recovers_throughput() {
        let plain = run(ExperimentScale::Smoke, 22);
        let resched = run_with_rescheduling(ExperimentScale::Smoke, 22, true);
        let df_max_plain = plain.reports.last().unwrap();
        let df_max_resched = resched.reports.last().unwrap();
        assert!(resched.rescheduling);
        assert_eq!(df_max_resched.failed, 0);
        assert!(
            df_max_resched.completed >= df_max_plain.completed,
            "rescheduling should not lose more workflows than the paper behaviour"
        );
    }
}
