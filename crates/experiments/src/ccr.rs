//! The communication-to-computation ratio experiment of Fig. 9 / Fig. 10.
//!
//! The paper uses four combinations of task-load and dependent-data ranges (CCR roughly 1.6,
//! 0.16, 1.6 and 16) and compares the converged ACT and AE of all eight algorithms under each.

use crate::campaign::{self, Campaign};
use crate::figures::{FigureData, Series};
use crate::scale::ExperimentScale;
use p2pgrid_core::{Algorithm, SimulationReport};
use std::ops::RangeInclusive;

/// One load/data combination of Fig. 9/10.
#[derive(Debug, Clone, PartialEq)]
pub struct CcrCase {
    /// Label used on the x axis (matches the paper's tick labels).
    pub label: String,
    /// Task load range in MI.
    pub load_mi: RangeInclusive<f64>,
    /// Dependent data range in Mb.
    pub data_mb: RangeInclusive<f64>,
}

/// The paper's four CCR cases.
pub fn paper_cases() -> Vec<CcrCase> {
    vec![
        CcrCase {
            label: "load 10-1000 / data 10-1000".into(),
            load_mi: 10.0..=1000.0,
            data_mb: 10.0..=1000.0,
        },
        CcrCase {
            label: "load 10-1000 / data 100-10000".into(),
            load_mi: 10.0..=1000.0,
            data_mb: 100.0..=10_000.0,
        },
        CcrCase {
            label: "load 100-10000 / data 10-1000".into(),
            load_mi: 100.0..=10_000.0,
            data_mb: 10.0..=1000.0,
        },
        CcrCase {
            label: "load 100-10000 / data 100-10000".into(),
            load_mi: 100.0..=10_000.0,
            data_mb: 100.0..=10_000.0,
        },
    ]
}

/// Results of the CCR sweep: `reports[algorithm][case]`.
#[derive(Debug, Clone)]
pub struct CcrSweep {
    /// The four cases.
    pub cases: Vec<CcrCase>,
    /// One row per algorithm, in [`Algorithm::ALL`] order.
    pub reports: Vec<Vec<SimulationReport>>,
}

/// Run the sweep (algorithms × cases, across the pool).  The base world is built **once**;
/// each load/data case is derived copy-on-write with [`Scenario::with_workflows`] — only the
/// workflow stream re-samples, the topology and all-pairs metrics are shared by all four
/// cases.
///
/// [`Scenario::with_workflows`]: p2pgrid_core::Scenario::with_workflows
pub fn run(scale: ExperimentScale, seed: u64) -> CcrSweep {
    let cases = paper_cases();
    let campaign = Campaign::from_config(scale.base_config(seed))
        .unwrap_or_else(|e| panic!("invalid CCR base configuration: {e}"));
    let reports = campaign
        .sweep(
            &cases,
            |base, case| {
                let mut workflow = base
                    .config()
                    .workload
                    .generator()
                    .expect("CCR sweeps run on the synthetic workload source")
                    .clone();
                workflow.load_mi = case.load_mi.clone();
                workflow.data_mb = case.data_mb.clone();
                base.with_workflows(workflow)
            },
            &campaign::paper_algorithms(),
        )
        .unwrap_or_else(|e| panic!("invalid CCR case: {e}"));
    CcrSweep { cases, reports }
}

impl CcrSweep {
    fn figure(
        &self,
        id: &str,
        title: &str,
        y_label: &str,
        f: impl Fn(&SimulationReport) -> f64,
    ) -> FigureData {
        let mut fig = FigureData::new(id, title, "case index", y_label);
        for (alg, row) in Algorithm::ALL.iter().zip(&self.reports) {
            let points = row
                .iter()
                .enumerate()
                .map(|(i, r)| (i as f64, f(r)))
                .collect();
            fig.push_series(Series::new(alg.name(), points));
        }
        fig
    }

    /// Fig. 9: converged ACT for each load/data combination.
    pub fn fig9_average_finish_time(&self) -> FigureData {
        self.figure(
            "fig9",
            "Average finish-time of workflows under different CCRs",
            "ACT (s)",
            |r| r.act_secs(),
        )
    }

    /// Fig. 10: converged AE for each load/data combination.
    pub fn fig10_average_efficiency(&self) -> FigureData {
        self.figure(
            "fig10",
            "Average efficiency of workflows under different CCRs",
            "AE",
            |r| r.average_efficiency(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_four_paper_cases_cover_the_ccr_range() {
        let cases = paper_cases();
        assert_eq!(cases.len(), 4);
        assert_eq!(*cases[1].data_mb.end(), 10_000.0);
        assert_eq!(*cases[2].load_mi.end(), 10_000.0);
    }

    #[test]
    fn smoke_sweep_produces_all_points() {
        let sweep = run(ExperimentScale::Smoke, 9);
        assert_eq!(sweep.reports.len(), 8);
        for row in &sweep.reports {
            assert_eq!(row.len(), 4);
        }
        let fig9 = sweep.fig9_average_finish_time();
        let fig10 = sweep.fig10_average_efficiency();
        assert_eq!(fig9.series.len(), 8);
        assert_eq!(fig10.series.len(), 8);
        for s in &fig10.series {
            assert!(s.points.iter().all(|&(_, y)| y >= 0.0));
        }
    }
}
