//! Replaying serialized workload artifacts (`repro --workload FILE`) and validating the
//! checked-in library (`repro --check-workloads DIR`).
//!
//! A workload artifact (`p2pgrid-workload/v1`, see `p2pgrid_workflow::spec`) pins the exact
//! DAGs, arrival times and home policies of a campaign, so a run over it compares schedulers
//! on a *reproducible trace* instead of a seed-dependent synthetic sample: the same file gives
//! the same workload on every machine, every scale and every seed (the seed still drives the
//! topology, capacities and churn).

use crate::campaign::{self, Campaign};
use crate::scale::ExperimentScale;
use p2pgrid_core::SimulationReport;
use p2pgrid_workflow::WorkloadSpec;
use std::path::Path;
use std::str::FromStr;

/// Reports of one workload replay: every paper algorithm over the identical trace.
#[derive(Debug, Clone)]
pub struct WorkloadComparison {
    /// The workload's name (from the artifact).
    pub name: String,
    /// Number of submitted workflow instances in the trace.
    pub entries: usize,
    /// The latest arrival in the trace, in virtual milliseconds.
    pub last_arrival_ms: u64,
    /// One report per algorithm, in [`p2pgrid_core::Algorithm::ALL`] order.
    pub reports: Vec<SimulationReport>,
}

impl WorkloadComparison {
    /// Render the comparison as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = format!(
            "workload `{}`: {} instances, last arrival at {:.0} min\n",
            self.name,
            self.entries,
            self.last_arrival_ms as f64 / 60_000.0
        );
        out.push_str("algorithm   completed  failed  ACT (s)   AE\n");
        for r in &self.reports {
            out.push_str(&format!(
                "{:<10}  {:>9}  {:>6}  {:>8.0}  {:>5.3}\n",
                r.algorithm,
                r.completed,
                r.failed,
                r.act_secs(),
                r.average_efficiency()
            ));
        }
        out
    }
}

/// Replay a workload over this scale's base grid with every paper algorithm.
///
/// The world is built once ([`Campaign`]); all eight sessions share it, so the comparison is
/// on byte-identical traces by construction.
pub fn run_spec(
    spec: WorkloadSpec,
    scale: ExperimentScale,
    seed: u64,
) -> Result<WorkloadComparison, String> {
    let name = spec.name.clone();
    let entries = spec.entry_count();
    let last_arrival_ms = spec.last_arrival_ms();
    let config = scale.base_config(seed).with_workload(spec);
    let campaign = Campaign::from_config(config).map_err(|e| format!("invalid workload: {e}"))?;
    let jobs = campaign::cross(
        std::slice::from_ref(campaign.base()),
        &campaign::paper_algorithms(),
    );
    Ok(WorkloadComparison {
        name,
        entries,
        last_arrival_ms,
        reports: campaign::run(&jobs),
    })
}

/// Load a workload file and replay it ([`run_spec`]).
pub fn run_file(
    path: impl AsRef<Path>,
    scale: ExperimentScale,
    seed: u64,
) -> Result<WorkloadComparison, String> {
    let spec = WorkloadSpec::load(path.as_ref()).map_err(|e| e.to_string())?;
    run_spec(spec, scale, seed)
}

/// Summary of one successfully validated artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactCheck {
    /// The artifact's file name.
    pub file: String,
    /// The workload's name.
    pub name: String,
    /// Workflows in the library.
    pub workflows: usize,
    /// Submitted instances.
    pub entries: usize,
    /// Total task count across resolved entries.
    pub tasks: usize,
}

/// Validate every `*.json` artifact in a directory: parse, resolve (full DAG validation) and
/// verify the serialized form is a round-trip fixpoint.
///
/// Returns one [`ArtifactCheck`] per valid file (sorted by file name), or a newline-joined
/// error report naming every failing file (with the JSON parser's line/column positions for
/// syntax errors).
pub fn check_dir(dir: impl AsRef<Path>) -> Result<Vec<ArtifactCheck>, String> {
    let dir = dir.as_ref();
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{}: no .json artifacts found", dir.display()));
    }
    let mut checks = Vec::new();
    let mut errors = Vec::new();
    for path in &paths {
        match check_file(path) {
            Ok(check) => checks.push(check),
            Err(e) => errors.push(format!("{}: {e}", path.display())),
        }
    }
    if errors.is_empty() {
        Ok(checks)
    } else {
        Err(errors.join("\n"))
    }
}

fn check_file(path: &Path) -> Result<ArtifactCheck, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let spec = WorkloadSpec::from_str(&text).map_err(|e| e.to_string())?;
    let resolved = spec.resolve().map_err(|e| e.to_string())?;
    let reparsed = WorkloadSpec::from_str(&spec.to_string_pretty())
        .map_err(|e| format!("re-parse of serialized form failed: {e}"))?;
    if reparsed != spec {
        return Err("round trip is not a fixpoint (serialized form decodes differently)".into());
    }
    Ok(ArtifactCheck {
        file: path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default(),
        name: spec.name.clone(),
        workflows: spec.workflows.len(),
        entries: spec.entry_count(),
        tasks: resolved.iter().map(|e| e.workflow.task_count()).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pgrid_workflow::{shapes, HomePolicy, WorkflowSpec, WorkloadEntry};

    fn tiny_workload() -> WorkloadSpec {
        let wf = WorkflowSpec::from_workflow("d", &shapes::diamond(50.0, 200.0, 5.0)).unwrap();
        WorkloadSpec {
            name: "tiny".into(),
            workflows: vec![wf],
            entries: vec![
                WorkloadEntry {
                    workflow: "d".into(),
                    submit_at_ms: 0,
                    home: HomePolicy::Auto,
                },
                WorkloadEntry {
                    workflow: "d".into(),
                    submit_at_ms: 120_000,
                    home: HomePolicy::Auto,
                },
            ],
        }
    }

    #[test]
    fn replaying_a_trace_compares_all_algorithms_on_identical_submissions() {
        let cmp = run_spec(tiny_workload(), ExperimentScale::Smoke, 11).unwrap();
        assert_eq!(cmp.reports.len(), 8);
        assert_eq!(cmp.entries, 2);
        for r in &cmp.reports {
            assert_eq!(r.submitted, 2, "{}", r.algorithm);
        }
        assert!(cmp.table().contains("workload `tiny`"));
    }

    #[test]
    fn check_dir_accepts_valid_artifacts_and_names_broken_ones() {
        let dir = std::env::temp_dir().join(format!("p2pgrid-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        tiny_workload().save(dir.join("tiny.json")).unwrap();
        let checks = check_dir(&dir).unwrap();
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].name, "tiny");
        assert_eq!(checks[0].entries, 2);
        assert_eq!(checks[0].tasks, 8);

        std::fs::write(dir.join("broken.json"), "{\"format\": oops}").unwrap();
        let err = check_dir(&dir).unwrap_err();
        assert!(err.contains("broken.json"), "{err}");
        assert!(err.contains("line"), "parse errors carry positions: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
