//! # p2pgrid-bench — shared helpers for the figure-reproduction benchmarks
//!
//! Every paper figure has a Criterion bench target in `benches/`:
//!
//! | bench target | paper artefact |
//! |---|---|
//! | `fig03_worked_example` | Fig. 3 (RPM computation and dispatch ordering) |
//! | `fig04_06_static_comparison` | Fig. 4–6 (throughput / ACT / AE, static grid) |
//! | `fcfs_ablation` | §IV.B second-phase vs FCFS text numbers |
//! | `fig07_08_load_factor` | Fig. 7–8 (load-factor sweep) |
//! | `fig09_10_ccr` | Fig. 9–10 (CCR sweep) |
//! | `fig11_scalability` | Fig. 11 (RSS size / AE / ACT vs scale) |
//! | `fig12_14_churn` | Fig. 12–14 (dynamic factor sweep) |
//! | `scenario_derive` | copy-on-write `Scenario::with_*` derivation vs a full rebuild |
//! | `campaign_sweep` | the pooled campaign path vs sequential + the pool-balance regression |
//! | `micro_heuristics` | scheduling-decision micro-benchmarks (Algorithm 1 / Algorithm 2) |
//! | `micro_substrates` | substrate micro-benchmarks (topology, gossip, DAG analysis, event queue) |
//!
//! Each figure bench first *regenerates the figure data once* at benchmark scale and prints it
//! (so `cargo bench` output doubles as a figure dump), then times a representative kernel with
//! Criterion.  The full-scale regeneration lives in the `repro` binary of
//! `p2pgrid-experiments`; benchmark scale keeps `cargo bench` in the minutes range.

pub mod scale;

pub use scale::{bench_criterion_config, bench_grid_config, print_figure, BENCH_SEED};
