//! Benchmark-scale configuration helpers.

use p2pgrid_core::GridConfig;
use p2pgrid_experiments::FigureData;
use p2pgrid_sim::SimDuration;

/// Seed used by every benchmark so that printed figure data is reproducible run to run.
pub const BENCH_SEED: u64 = 20100913;

/// A grid configuration sized for Criterion iterations: the paper's parameter ranges, a reduced
/// node count / load factor and the full scheduling machinery.
pub fn bench_grid_config(
    nodes: usize,
    workflows_per_node: usize,
    horizon_hours: u64,
) -> GridConfig {
    let mut cfg = GridConfig::paper_default()
        .with_nodes(nodes)
        .with_seed(BENCH_SEED)
        .with_load_factor(workflows_per_node);
    cfg.horizon = SimDuration::from_hours(horizon_hours);
    cfg
}

/// Criterion settings shared by the simulation-heavy benches: few samples, bounded measurement
/// time, so `cargo bench` over the whole harness stays in the minutes range.
pub fn bench_criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5))
        .configure_from_args()
}

/// Print a regenerated figure to the bench log.
pub fn print_figure(fig: &FigureData) {
    println!("\n{}", fig.render());
}
