//! Sharded event-loop scaling: events/second as a function of the shard count, plus the
//! observer fast-path pin.
//!
//! Criterion times full DSMF runs at smoke scale for S ∈ {1, 2, 4, 8}; setting
//! `P2PGRID_BENCH_REDUCED=1` additionally runs a one-shot wall-clock sweep at the experiments'
//! Reduced scale (120 nodes, 36 h) and prints events/second per shard count together with the
//! window structure (windows, events per window, max width, cross-shard share) — the numbers
//! recorded in EXPERIMENTS.md.  The worker-pool width is whatever `P2PGRID_POOL_THREADS` gave
//! this process (printed alongside), so run the sweep once with `=1` and once with `=8` to
//! compare the serial and pooled loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pgrid_bench::bench_criterion_config;
use p2pgrid_core::observer::GridSample;
use p2pgrid_core::{Algorithm, GridConfig, Observer, Scenario, ShardStats, SimulationReport};
use p2pgrid_sim::SimTime;
use p2pgrid_workflow::TaskId;
use std::hint::black_box;

fn smoke_config(shards: usize) -> GridConfig {
    let mut cfg = GridConfig::small(32)
        .with_seed(20100913)
        .with_shards(shards);
    cfg.workflows_per_node = 2;
    cfg
}

/// Drive one session to the horizon, returning the report and the window statistics.
fn run_with_stats(cfg: GridConfig) -> (SimulationReport, ShardStats) {
    let scenario = Scenario::build(cfg).expect("bench config is valid");
    let mut session = scenario.simulate_algorithm(Algorithm::Dsmf);
    while session.step().is_some() {}
    let stats = session.shard_stats();
    (session.finish(), stats)
}

fn describe(stats: &ShardStats, elapsed: std::time::Duration) -> String {
    let events_per_sec = stats.events as f64 / elapsed.as_secs_f64();
    let events_per_window = stats.events as f64 / (stats.windows.max(1)) as f64;
    let cross_pct = 100.0 * stats.cross_shard_events as f64 / (stats.events.max(1)) as f64;
    format!(
        "S={}: {:.0} events/s ({} events over {} windows, {:.2} events/window, \
         max width {}, {:.1}% cross-shard, min cross-shard delay {:?})",
        stats.shards,
        events_per_sec,
        stats.events,
        stats.windows,
        events_per_window,
        stats.max_window_width,
        cross_pct,
        stats.min_cross_shard_delay,
    )
}

/// Criterion sweep at smoke scale: one full run per iteration, per shard count.
fn bench_shard_scaling(c: &mut Criterion) {
    // One-shot Reduced-scale sweep with honest per-window statistics, opt-in because a single
    // run takes seconds.  Results are identical across S by construction (asserted), so this
    // measures pure event-loop overhead/speedup.
    if std::env::var_os("P2PGRID_BENCH_REDUCED").is_some() {
        use p2pgrid_experiments::ExperimentScale;
        const REPS: usize = 3;
        println!(
            "# shard_scaling @ Reduced scale (120 nodes, 36 h, DSMF, min of {REPS}), \
             pool threads = {}:",
            rayon::current_num_threads()
        );
        let mut baseline = None;
        for shards in [1usize, 2, 4, 8] {
            let cfg = ExperimentScale::Reduced
                .base_config(20100913)
                .with_shards(shards);
            let mut best: Option<(std::time::Duration, ShardStats, u64)> = None;
            for _ in 0..REPS {
                let t = std::time::Instant::now();
                let (report, stats) = run_with_stats(cfg.clone());
                let elapsed = t.elapsed();
                if best.as_ref().is_none_or(|(d, _, _)| elapsed < *d) {
                    best = Some((elapsed, stats, report.completed));
                }
            }
            let (elapsed, stats, completed) = best.expect("at least one repetition ran");
            assert_eq!(
                *baseline.get_or_insert(completed),
                completed,
                "shard count must not change the results"
            );
            println!("{} — wall {:?}", describe(&stats, elapsed), elapsed);
        }
    }

    let mut group = c.benchmark_group("shard_scaling");
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("dsmf_smoke_run", shards),
            &shards,
            |bencher, &shards| {
                bencher.iter(|| black_box(run_with_stats(smoke_config(shards)).0.completed))
            },
        );
    }
    group.finish();
}

/// A minimal observer that forces the engine onto the observing slow path (buffer + replay)
/// while doing almost nothing per event.
#[derive(Default)]
struct CountingObserver {
    events: u64,
}

impl Observer for CountingObserver {
    fn on_task_dispatched(&mut self, _: SimTime, _: usize, _: TaskId, _: usize) {
        self.events += 1;
    }
    fn on_task_started(&mut self, _: SimTime, _: usize, _: TaskId, _: usize) {
        self.events += 1;
    }
    fn on_task_finished(&mut self, _: SimTime, _: usize, _: TaskId, _: usize) {
        self.events += 1;
    }
    fn on_sample(&mut self, _: SimTime, _: &GridSample) {
        self.events += 1;
    }
}

/// The observer fast path (PR 7 satellite): with no observers registered, the engine must skip
/// event buffering and payload construction entirely.  Pinned with a wall-clock assert — the
/// unobserved run may not be slower than the observed one beyond noise — plus criterion
/// timings of both variants for the record.
fn bench_observer_fast_path(c: &mut Criterion) {
    let scenario = Scenario::build(smoke_config(4)).expect("bench config is valid");
    let unobserved = || {
        let r = scenario.simulate_algorithm(Algorithm::Dsmf).run();
        black_box(r.completed)
    };
    let observed = || {
        let mut probe = CountingObserver::default();
        let r = scenario
            .simulate_algorithm(Algorithm::Dsmf)
            .observe(&mut probe)
            .run();
        black_box((r.completed, probe.events)).0
    };

    // The pin: min-of-N wall clocks, interleaved.  The fast path does strictly less work
    // (no buffering, no canonical merge-sort, no callback dispatch), so even with generous
    // noise allowance the unobserved run must not come out slower.
    const REPS: usize = 5;
    let mut t_unobserved = std::time::Duration::MAX;
    let mut t_observed = std::time::Duration::MAX;
    for _ in 0..REPS {
        let t = std::time::Instant::now();
        unobserved();
        t_unobserved = t_unobserved.min(t.elapsed());
        let t = std::time::Instant::now();
        observed();
        t_observed = t_observed.min(t.elapsed());
    }
    println!(
        "# observer_fast_path: unobserved {t_unobserved:?} vs counting observer {t_observed:?}"
    );
    assert!(
        t_unobserved.as_secs_f64() <= t_observed.as_secs_f64() * 1.10,
        "observer fast path regressed: unobserved run {t_unobserved:?} \
         is slower than the observed run {t_observed:?} beyond the 10% noise band"
    );

    let mut group = c.benchmark_group("observer_fast_path");
    group.bench_function("dsmf_smoke_unobserved", |bencher| bencher.iter(unobserved));
    group.bench_function("dsmf_smoke_counting_observer", |bencher| {
        bencher.iter(observed)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench_shard_scaling, bench_observer_fast_path
}
criterion_main!(benches);
