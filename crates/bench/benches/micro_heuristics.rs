//! Micro-benchmarks of the scheduling decisions themselves (independent of the simulator):
//! the first-phase planning of Algorithm 1 and its competitors over realistic batch sizes, the
//! second-phase ready-set selection of Algorithm 2, the RPM recursion, and the full-ahead
//! planner — the kernels whose complexity Section III.E analyses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pgrid_bench::bench_criterion_config;
use p2pgrid_core::estimate::{CandidateNode, FinishTimeEstimator, PredecessorData};
use p2pgrid_core::fullahead::{plan_full_ahead, PlanInput};
use p2pgrid_core::policy::first_phase::{plan_dispatch, DispatchCandidateTask};
use p2pgrid_core::policy::second_phase::{select_next, ReadyTaskView};
use p2pgrid_core::{Algorithm, SecondPhase};
use p2pgrid_sim::SimRng;
use p2pgrid_workflow::{
    ExpectedCosts, TaskId, Workflow, WorkflowAnalysis, WorkflowGenerator, WorkflowGeneratorConfig,
};
use std::hint::black_box;

fn synthetic_tasks(count: usize, rng: &mut SimRng) -> Vec<DispatchCandidateTask> {
    (0..count)
        .map(|i| DispatchCandidateTask {
            workflow: i / 5,
            task: TaskId((i % 5) as u32),
            load_mi: rng.gen_range(100.0..=10_000.0),
            image_size_mb: rng.gen_range(10.0..=100.0),
            rpm_secs: rng.gen_range(100.0..=5000.0),
            workflow_ms_secs: rng.gen_range(100.0..=5000.0),
            predecessors: vec![PredecessorData {
                location: rng.gen_range(0..32),
                data_mb: rng.gen_range(100.0..=10_000.0),
            }],
        })
        .collect()
}

fn synthetic_candidates(count: usize, rng: &mut SimRng) -> Vec<CandidateNode> {
    (0..count)
        .map(|i| CandidateNode {
            node: i,
            capacity_mips: *rng.choose(&[1.0, 2.0, 4.0, 8.0, 16.0]).unwrap(),
            slots: 1,
            total_load_mi: rng.gen_range(0.0..=50_000.0),
        })
        .collect()
}

fn bench_first_phase(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(1);
    // 30 schedule points over ~ log2(1000) = 10 candidate nodes: the per-cycle workload of one
    // busy home node at paper scale.
    let tasks = synthetic_tasks(30, &mut rng);
    let candidates = synthetic_candidates(10, &mut rng);
    let bw = |a: usize, b: usize| if a == b { f64::INFINITY } else { 2.0 };
    let estimator = FinishTimeEstimator::new(0, &bw);

    let mut group = c.benchmark_group("first_phase_plan_dispatch");
    for alg in [
        Algorithm::Dsmf,
        Algorithm::Dheft,
        Algorithm::Dsdf,
        Algorithm::MinMin,
        Algorithm::MaxMin,
        Algorithm::Sufferage,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(alg), &alg, |bencher, &alg| {
            bencher.iter(|| {
                let mut cands = candidates.clone();
                black_box(plan_dispatch(
                    alg,
                    black_box(&tasks),
                    &mut cands,
                    &estimator,
                ))
            })
        });
    }
    group.finish();
}

fn bench_second_phase(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(2);
    let ready: Vec<ReadyTaskView> = (0..64)
        .map(|i| ReadyTaskView {
            workflow_ms_secs: rng.gen_range(100.0..=5000.0),
            rpm_secs: rng.gen_range(100.0..=5000.0),
            exec_secs: rng.gen_range(10.0..=1000.0),
            sufferage_secs: rng.gen_range(0.0..=100.0),
            enqueued_seq: i,
        })
        .collect();
    let mut group = c.benchmark_group("second_phase_select_next");
    for rule in [
        SecondPhase::ShortestWorkflowMakespan,
        SecondPhase::LongestRpmFirst,
        SecondPhase::ShortestTaskFirst,
        SecondPhase::Fcfs,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(rule),
            &rule,
            |bencher, &rule| bencher.iter(|| black_box(select_next(rule, black_box(&ready)))),
        );
    }
    group.finish();
}

fn bench_rpm_and_fullahead(c: &mut Criterion) {
    let gen = WorkflowGenerator::new(WorkflowGeneratorConfig::default());
    let mut rng = SimRng::seed_from_u64(3);
    let workflows: Vec<Workflow> = gen.generate_batch(50, &mut rng);
    let costs = ExpectedCosts::new(6.2, 5.0);

    let mut group = c.benchmark_group("workflow_analysis");
    group.bench_function("rpm_recursion_50_workflows", |bencher| {
        bencher.iter(|| {
            let total: f64 = workflows
                .iter()
                .map(|w| WorkflowAnalysis::new(black_box(w), costs).expected_finish_time_secs())
                .sum();
            black_box(total)
        })
    });

    let mut cand_rng = SimRng::seed_from_u64(4);
    let nodes = synthetic_candidates(64, &mut cand_rng);
    let bw = |a: usize, b: usize| if a == b { f64::INFINITY } else { 2.0 };
    for alg in [Algorithm::Heft, Algorithm::Smf] {
        group.bench_function(format!("full_ahead_plan_50_workflows/{alg}"), |bencher| {
            let inputs: Vec<PlanInput<'_>> = workflows
                .iter()
                .map(|w| PlanInput {
                    home: 0,
                    workflow: w,
                })
                .collect();
            bencher.iter(|| black_box(plan_full_ahead(alg, black_box(&inputs), &nodes, costs, &bw)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench_first_phase, bench_second_phase, bench_rpm_and_fullahead
}
criterion_main!(benches);
