//! Fig. 9 / Fig. 10 — converged ACT and AE under the four load/data combinations (CCR 0.16–16).
//!
//! Regenerates the two figures once at benchmark scale, then benchmarks DSMF under the
//! compute-heavy and the data-heavy extremes.

use criterion::{criterion_group, criterion_main, Criterion};
use p2pgrid_bench::{bench_criterion_config, bench_grid_config, print_figure};
use p2pgrid_core::{Algorithm, Scenario};
use p2pgrid_experiments::{ccr, ExperimentScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sweep = ccr::run(ExperimentScale::Smoke, p2pgrid_bench::BENCH_SEED);
    println!("\n# CCR cases");
    for (i, case) in sweep.cases.iter().enumerate() {
        println!("case {i}: {}", case.label);
    }
    print_figure(&sweep.fig9_average_finish_time());
    print_figure(&sweep.fig10_average_efficiency());

    let mut group = c.benchmark_group("fig09_10_ccr");
    for (label, load, data) in [
        ("compute_heavy_ccr0.16", 100.0..=10_000.0, 10.0..=1000.0),
        ("data_heavy_ccr16", 10.0..=1000.0, 100.0..=10_000.0),
    ] {
        // One world per CCR case, built outside the timed loop.
        let cfg = bench_grid_config(24, 2, 36).with_load_and_data(load.clone(), data.clone());
        let scenario = Scenario::build(cfg).expect("bench config is valid");
        group.bench_function(format!("dsmf_36h/{label}"), |bencher| {
            bencher.iter(|| {
                black_box(
                    scenario
                        .simulate_algorithm(Algorithm::Dsmf)
                        .run()
                        .average_efficiency(),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench
}
criterion_main!(benches);
