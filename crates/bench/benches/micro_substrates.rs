//! Micro-benchmarks of the substrate crates: Waxman topology generation, all-pairs bandwidth,
//! the mixed gossip cycle, random workflow generation and the discrete-event queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pgrid_bench::bench_criterion_config;
use p2pgrid_core::engine::node::{ReadyEntry, ReadySet};
use p2pgrid_core::policy::second_phase::{ready_key, select_next, ReadyTaskView};
use p2pgrid_core::{Algorithm, GridConfig, ResourceModel, Scenario, SecondPhase, SlotClass};
use p2pgrid_gossip::{LocalNodeState, MixedGossip, MixedGossipConfig};
use p2pgrid_sim::{EventQueue, SimRng, SimTime};
use p2pgrid_topology::{PairwiseMetrics, WaxmanConfig, WaxmanGenerator};
use p2pgrid_workflow::{TaskId, WorkflowGenerator, WorkflowGeneratorConfig};
use std::hint::black_box;

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    for n in [100usize, 400] {
        group.bench_with_input(BenchmarkId::new("waxman_generate", n), &n, |bencher, &n| {
            bencher.iter(|| {
                let mut rng = SimRng::seed_from_u64(7);
                black_box(WaxmanGenerator::new(WaxmanConfig::with_nodes(n)).generate(&mut rng))
            })
        });
    }
    let mut rng = SimRng::seed_from_u64(7);
    let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(400)).generate(&mut rng);
    group.bench_function("pairwise_metrics_400_nodes", |bencher| {
        bencher.iter(|| black_box(PairwiseMetrics::compute(black_box(&topo))))
    });
    group.finish();
}

fn bench_gossip(c: &mut Criterion) {
    let n = 500;
    let mut rng = SimRng::seed_from_u64(9);
    let local: Vec<LocalNodeState> = (0..n)
        .map(|i| LocalNodeState {
            alive: true,
            capacity_mips: [1.0, 2.0, 4.0, 8.0, 16.0][i % 5],
            slots: 1,
            total_load_mi: (i as f64) * 10.0,
            local_avg_bandwidth_mbps: 5.0,
        })
        .collect();
    let mut gossip = MixedGossip::new(n, MixedGossipConfig::default(), &mut rng);
    // Warm the views so the benchmark measures steady-state cycles.
    for cycle in 0..5 {
        gossip.run_cycle(SimTime::from_secs(cycle * 300), &local, &mut rng);
    }
    let mut group = c.benchmark_group("gossip");
    group.bench_function("mixed_gossip_cycle_500_nodes", |bencher| {
        let mut cycle = 5u64;
        bencher.iter(|| {
            cycle += 1;
            gossip.run_cycle(SimTime::from_secs(cycle * 300), black_box(&local), &mut rng);
            black_box(gossip.stats().cycles)
        })
    });
    group.finish();
}

fn bench_workflow_and_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("workflow_and_events");
    group.bench_function("generate_100_workflows", |bencher| {
        let gen = WorkflowGenerator::new(WorkflowGeneratorConfig::default());
        bencher.iter(|| {
            let mut rng = SimRng::seed_from_u64(11);
            black_box(gen.generate_batch(100, &mut rng))
        })
    });
    group.bench_function("event_queue_100k_schedule_pop", |bencher| {
        bencher.iter(|| {
            let mut q = EventQueue::with_capacity(100_000);
            let mut rng = SimRng::seed_from_u64(13);
            for i in 0..100_000u64 {
                q.schedule(SimTime::from_millis(rng.gen_range(0..1_000_000)), i);
            }
            let mut count = 0u64;
            while let Some(ev) = q.pop() {
                count += ev.event;
            }
            black_box(count)
        })
    });
    group.finish();
}

/// The second-phase hot path: selecting (and removing) the best data-complete ready task,
/// repeated until a node's backlog drains — exactly what a resource node does every time its
/// CPU frees up.  `naive_linear_scan` is the pre-refactor formulation (re-rank the whole `Vec`
/// with `select_next`, then `Vec::remove`), `indexed_heap` is the engine's `ReadySet`.
fn bench_ready_set(c: &mut Criterion) {
    let rule = SecondPhase::ShortestWorkflowMakespan;
    let make_views = |n: usize| -> Vec<ReadyTaskView> {
        let mut rng = SimRng::seed_from_u64(17);
        (0..n)
            .map(|i| ReadyTaskView {
                workflow_ms_secs: rng.gen_range(100.0..=5000.0),
                rpm_secs: rng.gen_range(100.0..=5000.0),
                exec_secs: rng.gen_range(1.0..=1000.0),
                sufferage_secs: 0.0,
                enqueued_seq: i as u64,
            })
            .collect()
    };
    let mut group = c.benchmark_group("ready_set_drain");
    for n in [64usize, 512] {
        let views = make_views(n);
        group.bench_with_input(
            BenchmarkId::new("naive_linear_scan", n),
            &views,
            |bencher, views| {
                bencher.iter(|| {
                    let mut pending = views.clone();
                    let mut picked = 0u64;
                    while let Some(i) = select_next(rule, &pending) {
                        pending.remove(i);
                        picked += 1;
                    }
                    black_box(picked)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("indexed_heap", n),
            &views,
            |bencher, views| {
                bencher.iter(|| {
                    let mut set = ReadySet::new();
                    for (wf, view) in views.iter().enumerate() {
                        set.insert(ReadyEntry {
                            wf,
                            task: TaskId(0),
                            load_mi: 100.0,
                            view: *view,
                            key: ready_key(rule, view),
                            data_ready: true,
                        });
                    }
                    let mut picked = 0u64;
                    while set.pop_next().is_some() {
                        picked += 1;
                    }
                    black_box(picked)
                })
            },
        );
    }
    group.finish();
}

/// End-to-end makespan comparison of the three execution substrates on the same contended
/// grid: the paper's uniform single-slot model, a heterogeneous 80% 1-core / 20% 16-core
/// population, and the same population with the time-sliced preemptive policy.  Each bench
/// prints its substrate's throughput/ACT once, then times the full run.
fn bench_resource_models(c: &mut Criterion) {
    let volunteer_classes = || {
        vec![
            SlotClass {
                slots: 1,
                weight: 0.8,
            },
            SlotClass {
                slots: 16,
                weight: 0.2,
            },
        ]
    };
    let substrates: [(&str, ResourceModel); 3] = [
        ("uniform_1_slot", ResourceModel::single_cpu()),
        (
            "heterogeneous_80_20",
            ResourceModel::heterogeneous(volunteer_classes()),
        ),
        (
            "heterogeneous_preemptive",
            ResourceModel::heterogeneous(volunteer_classes()).preemptive(),
        ),
    ];
    let mut group = c.benchmark_group("substrate_makespans");
    for (label, resource) in substrates {
        let mut cfg = GridConfig::small(24)
            .with_seed(20100913)
            .with_resource(resource.clone());
        cfg.workflows_per_node = 2;
        let scenario = Scenario::build(cfg).expect("bench config is valid");
        let once = scenario.simulate_algorithm(Algorithm::Dsmf).run();
        println!(
            "{label}: {}/{} workflows, ACT {:.0} s",
            once.completed,
            once.submitted,
            once.act_secs()
        );
        group.bench_function(label, |bencher| {
            bencher.iter(|| black_box(scenario.simulate_algorithm(Algorithm::Dsmf).run().completed))
        });
    }
    group.finish();
}

/// The Scenario-reuse comparison: a full 8-algorithm sweep on one shared pre-built world
/// versus the legacy behaviour of rebuilding the world (topology, all-pairs bandwidths,
/// landmarks, capacities, workflows) for every algorithm.  Criterion times the two variants at
/// smoke scale; setting `P2PGRID_BENCH_REDUCED=1` additionally runs a one-shot wall-clock
/// comparison at the experiments' Reduced scale (120 nodes, 36 h — seconds per sweep) and
/// prints it, which is where the amortisation is most visible (numbers in EXPERIMENTS.md).
fn bench_scenario_reuse(c: &mut Criterion) {
    let sweep_shared = |cfg: GridConfig| {
        let scenario = Scenario::build(cfg).expect("bench config is valid");
        Algorithm::ALL
            .iter()
            .map(|&alg| scenario.simulate_algorithm(alg).run().completed)
            .sum::<u64>()
    };
    let sweep_rebuilt = |cfg: &GridConfig| {
        Algorithm::ALL
            .iter()
            .map(|&alg| {
                Scenario::build(cfg.clone())
                    .expect("bench config is valid")
                    .simulate_algorithm(alg)
                    .run()
                    .completed
            })
            .sum::<u64>()
    };

    if std::env::var_os("P2PGRID_BENCH_REDUCED").is_some() {
        use p2pgrid_experiments::ExperimentScale;
        let cfg = ExperimentScale::Reduced.base_config(20100913);
        // Isolate the quantity being amortised: one world build at this scale.
        let t_build = std::time::Instant::now();
        std::hint::black_box(Scenario::build(cfg.clone()).expect("bench config is valid"));
        let build = t_build.elapsed();
        // A multi-second sweep carries more run-to-run noise (warm-up, frequency drift)
        // than the setup saving, so interleave the two variants with alternating order
        // across repetitions and compare the minima (the usual robust wall-clock
        // estimator; a fixed order systematically penalises whichever variant runs first
        // in each pair).
        const REPS: usize = 4;
        let mut shared = std::time::Duration::MAX;
        let mut rebuilt = std::time::Duration::MAX;
        let mut totals = [None; 2];
        for rep in 0..REPS {
            for leg in 0..2 {
                let shared_leg = (rep + leg) % 2 == 0;
                let t = std::time::Instant::now();
                let completed = if shared_leg {
                    sweep_shared(cfg.clone())
                } else {
                    sweep_rebuilt(&cfg)
                };
                let elapsed = t.elapsed();
                let total = &mut totals[shared_leg as usize];
                assert_eq!(
                    *total.get_or_insert(completed),
                    completed,
                    "every sweep must complete the identical workload"
                );
                if shared_leg {
                    shared = shared.min(elapsed);
                } else {
                    rebuilt = rebuilt.min(elapsed);
                }
            }
        }
        assert_eq!(totals[0], totals[1], "variants must agree on the results");
        println!(
            "# scenario_reuse @ Reduced scale (120 nodes, 36 h, 8 algorithms, min of {REPS}, \
             interleaved):\n\
             one Scenario::build: {build:?}; \
             shared scenario {shared:?} vs per-run rebuild {rebuilt:?} \
             ({:.3}x, 7 rebuilt worlds amortised over the sweep)",
            rebuilt.as_secs_f64() / shared.as_secs_f64()
        );
    }

    let smoke = || {
        let mut cfg = GridConfig::small(32).with_seed(20100913);
        cfg.workflows_per_node = 2;
        cfg
    };
    let mut group = c.benchmark_group("scenario_reuse");
    group.bench_function("sweep8_shared_scenario", |bencher| {
        bencher.iter(|| black_box(sweep_shared(smoke())))
    });
    group.bench_function("sweep8_per_run_rebuild", |bencher| {
        bencher.iter(|| black_box(sweep_rebuilt(&smoke())))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench_topology, bench_gossip, bench_workflow_and_events, bench_ready_set,
        bench_resource_models, bench_scenario_reuse
}
criterion_main!(benches);
