//! Fig. 7 / Fig. 8 — converged ACT and AE as the load factor (workflows per node) grows.
//!
//! Regenerates the two figures once at benchmark scale, then benchmarks DSMF at load factor 1
//! versus load factor 8 so the cost of rising contention is visible in the timings.

use criterion::{criterion_group, criterion_main, Criterion};
use p2pgrid_bench::{bench_criterion_config, bench_grid_config, print_figure};
use p2pgrid_core::{Algorithm, Scenario};
use p2pgrid_experiments::{load_factor, ExperimentScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sweep = load_factor::run(ExperimentScale::Smoke, p2pgrid_bench::BENCH_SEED);
    print_figure(&sweep.fig7_average_finish_time());
    print_figure(&sweep.fig8_average_efficiency());

    let mut group = c.benchmark_group("fig07_08_load_factor");
    for lf in [1usize, 4, 8] {
        // One world per load factor, built outside the timed loop.
        let scenario =
            Scenario::build(bench_grid_config(24, lf, 36)).expect("bench config is valid");
        group.bench_function(format!("dsmf_36h/load_factor_{lf}"), |bencher| {
            bencher.iter(|| {
                black_box(
                    scenario
                        .simulate_algorithm(Algorithm::Dsmf)
                        .run()
                        .act_secs(),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench
}
criterion_main!(benches);
