//! The pooled campaign path versus sequential execution, plus the pool-balance regression
//! bench for skewed per-item costs.
//!
//! `campaign::run` fans independent simulation sessions out across the persistent
//! work-stealing pool; `campaign::run_sequential` is the single-threaded reference.  Criterion
//! times both on a small sweep; setting `P2PGRID_BENCH_REDUCED=1` additionally runs a
//! one-shot wall-clock comparison of a Reduced-scale campaign (the EXPERIMENTS.md speedup
//! number).
//!
//! The `pool_balance` group pins the dynamic-chunking fix in the `rayon` shim: one item of
//! the parallel map costs ~64x the others.  The old static one-chunk-per-core split serialised
//! behind the heavy chunk (speedup -> 1 as the skew grows); with dynamic chunks and stealing,
//! the light items spread over the remaining workers while one worker chews the heavy item.

use criterion::{criterion_group, criterion_main, Criterion};
use p2pgrid_bench::{bench_criterion_config, BENCH_SEED};
use p2pgrid_core::{Algorithm, AlgorithmConfig, GridConfig};
use p2pgrid_experiments::{campaign, Campaign, ExperimentScale};
use rayon::prelude::*;
use std::hint::black_box;

fn smoke_jobs() -> Vec<campaign::Job> {
    let mut cfg = GridConfig::small(24).with_seed(BENCH_SEED);
    cfg.workflows_per_node = 2;
    let campaign = Campaign::from_config(cfg).expect("bench config is valid");
    let points = [1usize, 2];
    let scenarios = campaign
        .derive(&points, |base, &lf| base.with_load_factor(lf))
        .expect("derive succeeds");
    campaign::cross(
        &scenarios,
        &[
            AlgorithmConfig::paper_default(Algorithm::Dsmf),
            AlgorithmConfig::paper_default(Algorithm::MinMin),
            AlgorithmConfig::paper_default(Algorithm::Heft),
            AlgorithmConfig::paper_default(Algorithm::MaxMin),
        ],
    )
}

fn bench_campaign(c: &mut Criterion) {
    if std::env::var_os("P2PGRID_BENCH_REDUCED").is_some() {
        let campaign = Campaign::from_config(ExperimentScale::Reduced.base_config(BENCH_SEED))
            .expect("bench config is valid");
        let points = [1usize, 2, 3, 4];
        let scenarios = campaign
            .derive(&points, |base, &lf| base.with_load_factor(lf))
            .expect("derive succeeds");
        let jobs = campaign::cross(
            &scenarios,
            &[
                AlgorithmConfig::paper_default(Algorithm::Dsmf),
                AlgorithmConfig::paper_default(Algorithm::MinMin),
            ],
        );
        let t = std::time::Instant::now();
        let pooled = campaign::run(&jobs);
        let t_pooled = t.elapsed();
        let t = std::time::Instant::now();
        let sequential = campaign::run_sequential(&jobs);
        let t_sequential = t.elapsed();
        assert_eq!(pooled.len(), sequential.len());
        for (p, s) in pooled.iter().zip(&sequential) {
            assert_eq!(p.completed, s.completed, "pooled run must match sequential");
        }
        println!(
            "# campaign_sweep @ Reduced scale ({} jobs = 4 load factors x 2 algorithms, \
             one shared topology): pooled {t_pooled:?} vs sequential {t_sequential:?} \
             ({:.2}x speedup on {} workers)",
            jobs.len(),
            t_sequential.as_secs_f64() / t_pooled.as_secs_f64(),
            rayon::current_num_threads()
        );
    }

    let jobs = smoke_jobs();
    let mut group = c.benchmark_group("campaign_sweep");
    group.bench_function("pooled_8_jobs", |bencher| {
        bencher.iter(|| black_box(campaign::run(&jobs).len()))
    });
    group.bench_function("sequential_8_jobs", |bencher| {
        bencher.iter(|| black_box(campaign::run_sequential(&jobs).len()))
    });
    group.finish();
}

/// Deterministic CPU burn whose cost scales with `rounds`.
fn burn(rounds: u64) -> f64 {
    let mut acc = 1.000_000_1f64;
    for i in 0..rounds {
        acc = acc.mul_add(1.000_000_9, (i % 7) as f64 * 1e-9);
    }
    acc
}

fn bench_pool_balance(c: &mut Criterion) {
    // 63 light items plus one 64x-heavy head: with the static per-core split, the chunk
    // holding item 0 costs as much as all other chunks combined.
    let rounds: Vec<u64> = (0..64u64)
        .map(|i| if i == 0 { 2_560_000 } else { 40_000 })
        .collect();
    let mut group = c.benchmark_group("pool_balance");
    group.bench_function("skewed_64_items_par", |bencher| {
        bencher.iter(|| {
            let out: Vec<f64> = rounds.par_iter().map(|&r| burn(r)).collect();
            black_box(out)
        })
    });
    group.bench_function("skewed_64_items_sequential", |bencher| {
        bencher.iter(|| {
            let out: Vec<f64> = rounds.iter().map(|&r| burn(r)).collect();
            black_box(out)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench_campaign, bench_pool_balance
}
criterion_main!(benches);
