//! Fig. 4 / Fig. 5 / Fig. 6 — throughput, average finish time and average efficiency of the
//! eight algorithms in a static P2P grid.
//!
//! Regenerates the three figures once at benchmark scale (printed to the bench log; see the
//! `repro` binary for reduced/full scale), then benchmarks a complete 36-hour simulation run
//! for a representative subset of the algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use p2pgrid_bench::{bench_criterion_config, bench_grid_config, print_figure};
use p2pgrid_core::{Algorithm, Scenario};
use p2pgrid_experiments::{static_comparison, ExperimentScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Regenerate the figure data once (smoke scale keeps this in the seconds range).
    let comparison = static_comparison::run(ExperimentScale::Smoke, p2pgrid_bench::BENCH_SEED);
    print_figure(&comparison.fig4_throughput());
    print_figure(&comparison.fig5_average_finish_time());
    print_figure(&comparison.fig6_average_efficiency());
    println!("{}", comparison.summary_table());
    let headline = comparison.headline();
    println!(
        "headline: ACT -{:.1}%..-{:.1}%, AE +{:.1}%..+{:.1}% vs other decentralized algorithms\n",
        headline.act_reduction_pct.0,
        headline.act_reduction_pct.1,
        headline.ae_improvement_pct.0,
        headline.ae_improvement_pct.1
    );

    // One world shared by all four timed algorithms: the timings measure the sessions, not
    // the topology/workflow sampling.
    let scenario = Scenario::build(bench_grid_config(32, 2, 36)).expect("bench config is valid");
    let mut group = c.benchmark_group("fig04_06_static_comparison");
    for alg in [
        Algorithm::Dsmf,
        Algorithm::Heft,
        Algorithm::MinMin,
        Algorithm::Smf,
    ] {
        group.bench_function(format!("simulate_36h/{alg}"), |bencher| {
            bencher.iter(|| black_box(scenario.simulate_algorithm(alg).run().completed))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench
}
criterion_main!(benches);
