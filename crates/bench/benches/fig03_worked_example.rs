//! Fig. 3 — the worked example: RPM computation and dispatch-order planning.
//!
//! Prints the reproduced RPM values, then benchmarks the two kernels a home node executes every
//! scheduling cycle on this scenario: the rest-path-makespan recursion (Eq. 7/8) and the
//! first-phase dispatch planning (Algorithm 1).

use criterion::{criterion_group, criterion_main, Criterion};
use p2pgrid_bench::bench_criterion_config;
use p2pgrid_core::estimate::{CandidateNode, FinishTimeEstimator};
use p2pgrid_core::policy::first_phase::{plan_dispatch, DispatchCandidateTask};
use p2pgrid_core::worked_example;
use p2pgrid_core::Algorithm;
use p2pgrid_workflow::{ExpectedCosts, TaskId, Workflow, WorkflowAnalysis};
use std::hint::black_box;

fn fig3_tasks(
    wa: &Workflow,
    wb: &Workflow,
    aa: &WorkflowAnalysis,
    ab: &WorkflowAnalysis,
) -> Vec<DispatchCandidateTask> {
    let (a2, a3, b2, b3) = worked_example::schedule_points();
    let mk = |wf: usize, w: &Workflow, an: &WorkflowAnalysis, t: TaskId, ms: f64| {
        DispatchCandidateTask {
            workflow: wf,
            task: t,
            load_mi: w.task(t).load_mi,
            image_size_mb: w.task(t).image_size_mb,
            rpm_secs: an.rpm_secs(t),
            workflow_ms_secs: ms,
            predecessors: vec![],
        }
    };
    vec![
        mk(0, wa, aa, a2, 115.0),
        mk(0, wa, aa, a3, 115.0),
        mk(1, wb, ab, b2, 65.0),
        mk(1, wb, ab, b3, 65.0),
    ]
}

fn bench(c: &mut Criterion) {
    let wa = worked_example::workflow_a();
    let wb = worked_example::workflow_b();
    let costs = ExpectedCosts::new(1.0, 1.0);
    let aa = WorkflowAnalysis::new(&wa, costs);
    let ab = WorkflowAnalysis::new(&wb, costs);
    let (a2, a3, b2, b3) = worked_example::schedule_points();
    println!(
        "\n# fig3 — RPM(A2)={} RPM(A3)={} RPM(B2)={} RPM(B3)={} (paper: 80 / 115 / 65 / 60)",
        aa.rpm_secs(a2),
        aa.rpm_secs(a3),
        ab.rpm_secs(b2),
        ab.rpm_secs(b3)
    );

    let mut group = c.benchmark_group("fig03_worked_example");
    group.bench_function("rpm_analysis_both_workflows", |bencher| {
        bencher.iter(|| {
            let aa = WorkflowAnalysis::new(black_box(&wa), costs);
            let ab = WorkflowAnalysis::new(black_box(&wb), costs);
            black_box((aa.rpm_secs(a3), ab.rpm_secs(b2)))
        })
    });

    let tasks = fig3_tasks(&wa, &wb, &aa, &ab);
    let bw = |x: usize, y: usize| if x == y { f64::INFINITY } else { 1.0 };
    let estimator = FinishTimeEstimator::new(0, &bw);
    for alg in [Algorithm::Dsmf, Algorithm::Dheft, Algorithm::MinMin] {
        group.bench_function(format!("plan_dispatch/{alg}"), |bencher| {
            bencher.iter(|| {
                let mut candidates: Vec<CandidateNode> = (1..=3)
                    .map(|i| CandidateNode::single_slot(i, 1.0, 0.0))
                    .collect();
                black_box(plan_dispatch(
                    alg,
                    black_box(&tasks),
                    &mut candidates,
                    &estimator,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench
}
criterion_main!(benches);
