//! Fig. 11 — gossip space scalability (RSS size) and DSMF's ACT / AE as the system grows.
//!
//! Regenerates the three sub-figures once at benchmark scale, then benchmarks complete DSMF
//! runs at increasing node counts so the simulator's own scaling is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pgrid_bench::{bench_criterion_config, bench_grid_config, print_figure};
use p2pgrid_core::{Algorithm, Scenario};
use p2pgrid_experiments::{scalability, ExperimentScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sweep = scalability::run(ExperimentScale::Smoke, p2pgrid_bench::BENCH_SEED);
    print_figure(&sweep.fig11a_rss_size());
    print_figure(&sweep.fig11b_average_efficiency());
    print_figure(&sweep.fig11c_average_finish_time());

    let mut group = c.benchmark_group("fig11_scalability");
    for nodes in [16usize, 48, 96] {
        // One world per system scale, built outside the timed loop.
        let scenario =
            Scenario::build(bench_grid_config(nodes, 1, 36)).expect("bench config is valid");
        group.bench_with_input(BenchmarkId::new("dsmf_36h", nodes), &nodes, |bencher, _| {
            bencher.iter(|| {
                black_box(
                    scenario
                        .simulate_algorithm(Algorithm::Dsmf)
                        .run()
                        .avg_rss_size,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench
}
criterion_main!(benches);
