//! Fig. 12 / Fig. 13 / Fig. 14 — DSMF throughput, ACT and AE under node churn.
//!
//! Regenerates the three figures once at benchmark scale (including the future-work
//! rescheduling ablation), then benchmarks complete DSMF runs at increasing dynamic factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pgrid_bench::{bench_criterion_config, bench_grid_config, print_figure};
use p2pgrid_core::{Algorithm, ChurnConfig, Scenario};
use p2pgrid_experiments::{churn, ExperimentScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sweep = churn::run(ExperimentScale::Smoke, p2pgrid_bench::BENCH_SEED);
    print_figure(&sweep.fig12_throughput());
    print_figure(&sweep.fig13_average_finish_time());
    print_figure(&sweep.fig14_average_efficiency());
    let resched =
        churn::run_with_rescheduling(ExperimentScale::Smoke, p2pgrid_bench::BENCH_SEED, true);
    println!("# rescheduling ablation (future-work extension)");
    for (df, r) in resched.dynamic_factors.iter().zip(&resched.reports) {
        println!(
            "df={df:.1}: finished {} failed {} (paper behaviour fails lost workflows)",
            r.completed, r.failed
        );
    }

    let mut group = c.benchmark_group("fig12_14_churn");
    for df in [0.0f64, 0.2, 0.4] {
        // One world per dynamic factor (the stable/churnable split depends on it), built
        // outside the timed loop; every timed run replays the identical churn stream.
        let cfg = bench_grid_config(32, 2, 36).with_churn(ChurnConfig::with_dynamic_factor(df));
        let scenario = Scenario::build(cfg).expect("bench config is valid");
        group.bench_with_input(
            BenchmarkId::new("dsmf_36h", format!("df_{df}")),
            &df,
            |bencher, _| {
                bencher.iter(|| {
                    black_box(scenario.simulate_algorithm(Algorithm::Dsmf).run().completed)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench
}
criterion_main!(benches);
