//! Copy-on-write scenario derivation versus a full rebuild.
//!
//! `Scenario::with_seed` (and the other `with_*` methods) re-sample only the affected RNG
//! streams and share the `Arc`'d topology, `PairwiseMetrics` and landmark tables, so a sweep
//! derived from one base world pays for a single all-pairs computation.  Criterion times
//! derive-vs-rebuild at smoke scale; setting `P2PGRID_BENCH_REDUCED=1` additionally runs a
//! one-shot wall-clock comparison at the experiments' Reduced scale (120 nodes) *and* the
//! paper scale (1 000 nodes) and prints it — that is where the amortisation dominates
//! (numbers recorded in EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use p2pgrid_bench::{bench_criterion_config, BENCH_SEED};
use p2pgrid_core::{GridConfig, Scenario};
use p2pgrid_experiments::ExperimentScale;
use std::hint::black_box;

/// One-shot derive-vs-rebuild wall clock at a given scale, printed for EXPERIMENTS.md.
fn print_one_shot(label: &str, cfg: GridConfig) {
    let t = std::time::Instant::now();
    let base = Scenario::build(cfg).expect("bench config is valid");
    let build = t.elapsed();
    const POINTS: u64 = 32;
    let t = std::time::Instant::now();
    for s in 0..POINTS {
        let derived = base.with_seed(BENCH_SEED ^ s).expect("derive succeeds");
        assert!(derived.shares_topology_with(&base));
        black_box(derived);
    }
    let derive = t.elapsed();
    println!(
        "# scenario_derive @ {label}: one Scenario::build {build:?}; \
         {POINTS}-point with_seed sweep {derive:?} \
         ({:?}/point, {:.1}x cheaper than rebuilding each point)",
        derive / POINTS as u32,
        build.as_secs_f64() / (derive.as_secs_f64() / POINTS as f64)
    );
}

fn bench(c: &mut Criterion) {
    if std::env::var_os("P2PGRID_BENCH_REDUCED").is_some() {
        print_one_shot(
            "Reduced (120 nodes)",
            ExperimentScale::Reduced.base_config(BENCH_SEED),
        );
        print_one_shot(
            "paper scale (1000 nodes)",
            ExperimentScale::Full.base_config(BENCH_SEED),
        );
    }

    let cfg = || {
        let mut cfg = GridConfig::small(64).with_seed(BENCH_SEED);
        cfg.workflows_per_node = 2;
        cfg
    };
    let base = Scenario::build(cfg()).expect("bench config is valid");
    let mut group = c.benchmark_group("scenario_derive");
    group.bench_function("with_seed_derive_64_nodes", |bencher| {
        let mut seed = 0u64;
        bencher.iter(|| {
            seed += 1;
            black_box(base.with_seed(seed).expect("derive succeeds"))
        })
    });
    group.bench_function("full_rebuild_64_nodes", |bencher| {
        let mut seed = 0u64;
        bencher.iter(|| {
            seed += 1;
            black_box(Scenario::build(cfg().with_seed(seed)).expect("bench config is valid"))
        })
    });
    group.bench_function("with_load_factor_derive_64_nodes", |bencher| {
        let mut lf = 0usize;
        bencher.iter(|| {
            lf = lf % 4 + 1;
            black_box(base.with_load_factor(lf).expect("derive succeeds"))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench
}
criterion_main!(benches);
