//! "Fig. 15" — the fault-tolerance study: DSMF under stochastic node lifetimes.
//!
//! Regenerates the three fault-tolerance figures once at benchmark scale, then benchmarks
//! two things: that [`FaultModel::Off`] costs no measurable wall time over the pre-fault
//! engine (the fault substrate must be pay-for-what-you-use), and the overhead of full
//! fault-injected runs under each recovery policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pgrid_bench::{bench_criterion_config, bench_grid_config, print_figure};
use p2pgrid_core::{Algorithm, FaultModel, RecoveryPolicy, Scenario, StochasticFaults};
use p2pgrid_experiments::{fault_tolerance, ExperimentScale};
use p2pgrid_sim::SimDuration;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sweep = fault_tolerance::run(ExperimentScale::Smoke, p2pgrid_bench::BENCH_SEED);
    print_figure(&sweep.fig15a_throughput());
    print_figure(&sweep.fig15b_goodput());
    print_figure(&sweep.fig15c_recovery_latency());
    println!("# fault-tolerance summary");
    println!("{}", sweep.summary_table());

    // FaultModel::Off must be free: the default config and the explicit Off spelling run
    // the exact same event stream, so the two timings below should be indistinguishable.
    // (They are separate Criterion ids so a regression shows up as the pair diverging.)
    let mut group = c.benchmark_group("fault_recovery");
    let plain = Scenario::build(bench_grid_config(32, 2, 36)).expect("bench config is valid");
    group.bench_function("dsmf_36h/faults_absent", |b| {
        b.iter(|| black_box(plain.simulate_algorithm(Algorithm::Dsmf).run().completed))
    });
    let off = Scenario::build(bench_grid_config(32, 2, 36).with_faults(FaultModel::Off))
        .expect("bench config is valid");
    group.bench_function("dsmf_36h/faults_off", |b| {
        b.iter(|| black_box(off.simulate_algorithm(Algorithm::Dsmf).run().completed))
    });

    // Full fault-injected runs, one world per recovery policy (the fault schedule is
    // identical across policies — recovery is pure run-time behaviour).
    let faults = StochasticFaults::new(SimDuration::from_hours(4), SimDuration::from_secs(1200));
    let policies = [
        ("fail", RecoveryPolicy::FailWorkflow),
        (
            "retry",
            RecoveryPolicy::Retry {
                budget: 3,
                backoff: SimDuration::from_secs(300),
            },
        ),
        (
            "checkpoint",
            RecoveryPolicy::Checkpoint {
                interval: SimDuration::from_secs(900),
            },
        ),
        ("replicate", RecoveryPolicy::Replicate { copies: 2 }),
    ];
    for (label, policy) in policies {
        let cfg = bench_grid_config(32, 2, 36)
            .with_faults(FaultModel::Stochastic(faults))
            .with_recovery(policy);
        let scenario = Scenario::build(cfg).expect("bench config is valid");
        group.bench_with_input(
            BenchmarkId::new("dsmf_36h_mtbf4h", label),
            &label,
            |bencher, _| {
                bencher.iter(|| {
                    black_box(scenario.simulate_algorithm(Algorithm::Dsmf).run().completed)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench
}
criterion_main!(benches);
