//! §IV.B ablation — the paper's second-phase (ready-set) rules versus plain FCFS.
//!
//! Regenerates the ablation table once at benchmark scale, then benchmarks the min-min variant
//! with both ready-set rules so the cost of the second phase itself is visible.

use criterion::{criterion_group, criterion_main, Criterion};
use p2pgrid_bench::{bench_criterion_config, bench_grid_config};
use p2pgrid_core::{Algorithm, AlgorithmConfig, Scenario};
use p2pgrid_experiments::{fcfs_ablation, ExperimentScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ablation = fcfs_ablation::run(ExperimentScale::Smoke, p2pgrid_bench::BENCH_SEED);
    println!("\n# fcfs-ablation (benchmark scale)\n{}", ablation.table());
    println!(
        "paper second phase beats or matches FCFS for {}/{} algorithms\n",
        ablation.second_phase_wins(),
        ablation.pairs.len()
    );

    // One world, two second-phase rules: the scenario is built once, the timings measure the
    // 36-hour session itself.
    let scenario = Scenario::build(bench_grid_config(32, 2, 36)).expect("bench config is valid");
    let mut group = c.benchmark_group("fcfs_ablation");
    for (label, cfg) in [
        (
            "min-min+phase2",
            AlgorithmConfig::paper_default(Algorithm::MinMin),
        ),
        (
            "min-min+FCFS",
            AlgorithmConfig::with_fcfs_second_phase(Algorithm::MinMin),
        ),
    ] {
        group.bench_function(format!("simulate_36h/{label}"), |bencher| {
            bencher.iter(|| black_box(scenario.simulate_config(cfg).run().act_secs()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_criterion_config();
    targets = bench
}
criterion_main!(benches);
