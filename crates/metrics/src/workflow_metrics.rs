//! The paper's workflow-level metrics: throughput, ACT (Eq. 2) and AE (Eq. 3).

use crate::stats::OnlineStats;
use crate::timeseries::TimeSeries;
use p2pgrid_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Final outcome of one workflow instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkflowOutcome {
    /// The exit task finished.
    Completed,
    /// A task was lost to node churn and the workflow can no longer finish
    /// (the paper defers rescheduling to future work).
    Failed,
}

/// Per-workflow record used by the accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkflowRecord {
    /// Time the workflow was submitted to its home node.
    pub submitted_at: SimTime,
    /// Time its exit task completed (only for completed workflows).
    pub completed_at: SimTime,
    /// Expected finish time `eft(f)` in seconds, computed from the critical path under
    /// system-wide averages (Eq. 1).
    pub expected_finish_secs: f64,
    /// Outcome.
    pub outcome: WorkflowOutcome,
}

impl WorkflowRecord {
    /// Real completion (response) time `ct(f)` in seconds.
    pub fn completion_time_secs(&self) -> f64 {
        self.completed_at
            .saturating_duration_since(self.submitted_at)
            .as_secs_f64()
    }

    /// Execution efficiency `e(f) = eft(f) / ct(f)` (Eq. 1); zero for failed workflows.
    pub fn efficiency(&self) -> f64 {
        if self.outcome == WorkflowOutcome::Failed {
            return 0.0;
        }
        let ct = self.completion_time_secs();
        if ct <= 0.0 {
            // A workflow that finishes instantaneously (e.g. all-virtual tasks) is perfectly
            // efficient by convention.
            1.0
        } else {
            self.expected_finish_secs / ct
        }
    }
}

/// Accumulator of the per-algorithm evaluation quantities, sampled over virtual time.
#[derive(Debug, Clone)]
pub struct WorkflowMetrics {
    records: Vec<WorkflowRecord>,
    completion_stats: OnlineStats,
    efficiency_stats: OnlineStats,
    submitted: u64,
    failed: u64,
    throughput_series: TimeSeries,
    act_series: TimeSeries,
    ae_series: TimeSeries,
}

impl WorkflowMetrics {
    /// Create an empty accumulator; the label names the scheduling algorithm under test.
    pub fn new(label: impl Into<String>) -> Self {
        let label = label.into();
        WorkflowMetrics {
            records: Vec::new(),
            completion_stats: OnlineStats::new(),
            efficiency_stats: OnlineStats::new(),
            submitted: 0,
            failed: 0,
            throughput_series: TimeSeries::new(format!("{label}/throughput")),
            act_series: TimeSeries::new(format!("{label}/act")),
            ae_series: TimeSeries::new(format!("{label}/ae")),
        }
    }

    /// Note that a workflow was submitted (used for completion-rate reporting).
    pub fn record_submission(&mut self) {
        self.submitted += 1;
    }

    /// Record the completion of a workflow.
    pub fn record_completion(&mut self, record: WorkflowRecord) {
        debug_assert_eq!(record.outcome, WorkflowOutcome::Completed);
        self.completion_stats.push(record.completion_time_secs());
        self.efficiency_stats.push(record.efficiency());
        self.records.push(record);
    }

    /// Record that a workflow failed (lost to churn).
    pub fn record_failure(&mut self, record: WorkflowRecord) {
        debug_assert_eq!(record.outcome, WorkflowOutcome::Failed);
        self.failed += 1;
        self.records.push(record);
    }

    /// Take a periodic sample of the three figures-of-merit at virtual time `now`.
    pub fn sample(&mut self, now: SimTime) {
        self.throughput_series.push(now, self.throughput() as f64);
        self.act_series
            .push(now, self.average_completion_time_secs());
        self.ae_series.push(now, self.average_efficiency());
    }

    /// Cumulative number of completed workflows.
    pub fn throughput(&self) -> u64 {
        self.completion_stats.count()
    }

    /// Number of workflows submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Number of workflows lost to churn.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// ACT (Eq. 2): mean completion time over finished workflows, in seconds.
    pub fn average_completion_time_secs(&self) -> f64 {
        self.completion_stats.mean()
    }

    /// AE (Eq. 3): mean efficiency over finished workflows.
    pub fn average_efficiency(&self) -> f64 {
        self.efficiency_stats.mean()
    }

    /// Fraction of submitted workflows that completed (1.0 when nothing was submitted yet).
    pub fn completion_rate(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.throughput() as f64 / self.submitted as f64
        }
    }

    /// All per-workflow records.
    pub fn records(&self) -> &[WorkflowRecord] {
        &self.records
    }

    /// The sampled throughput series (Fig. 4 / Fig. 12).
    pub fn throughput_series(&self) -> &TimeSeries {
        &self.throughput_series
    }

    /// The sampled ACT series (Fig. 5 / Fig. 13).
    pub fn act_series(&self) -> &TimeSeries {
        &self.act_series
    }

    /// The sampled AE series (Fig. 6 / Fig. 14).
    pub fn ae_series(&self) -> &TimeSeries {
        &self.ae_series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(sub: u64, done: u64, eft: f64) -> WorkflowRecord {
        WorkflowRecord {
            submitted_at: SimTime::from_secs(sub),
            completed_at: SimTime::from_secs(done),
            expected_finish_secs: eft,
            outcome: WorkflowOutcome::Completed,
        }
    }

    #[test]
    fn completion_time_and_efficiency() {
        let r = completed(100, 300, 100.0);
        assert_eq!(r.completion_time_secs(), 200.0);
        assert_eq!(r.efficiency(), 0.5);
        let instant = completed(50, 50, 0.0);
        assert_eq!(instant.efficiency(), 1.0);
        let failed = WorkflowRecord {
            outcome: WorkflowOutcome::Failed,
            ..completed(0, 0, 10.0)
        };
        assert_eq!(failed.efficiency(), 0.0);
    }

    #[test]
    fn act_and_ae_match_hand_computation() {
        let mut m = WorkflowMetrics::new("dsmf");
        m.record_submission();
        m.record_submission();
        m.record_submission();
        m.record_completion(completed(0, 100, 50.0)); // ct=100, e=0.5
        m.record_completion(completed(0, 400, 100.0)); // ct=400, e=0.25
        assert_eq!(m.throughput(), 2);
        assert_eq!(m.submitted(), 3);
        assert!((m.average_completion_time_secs() - 250.0).abs() < 1e-12);
        assert!((m.average_efficiency() - 0.375).abs() < 1e-12);
        assert!((m.completion_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn failures_count_separately_and_do_not_skew_act() {
        let mut m = WorkflowMetrics::new("dsmf");
        m.record_submission();
        m.record_submission();
        m.record_completion(completed(0, 100, 80.0));
        m.record_failure(WorkflowRecord {
            outcome: WorkflowOutcome::Failed,
            ..completed(0, 0, 80.0)
        });
        assert_eq!(m.throughput(), 1);
        assert_eq!(m.failed(), 1);
        assert_eq!(m.average_completion_time_secs(), 100.0);
        assert_eq!(m.records().len(), 2);
    }

    #[test]
    fn sampling_builds_monotone_throughput_series() {
        let mut m = WorkflowMetrics::new("x");
        m.sample(SimTime::from_secs(0));
        m.record_completion(completed(0, 10, 5.0));
        m.sample(SimTime::from_secs(3600));
        m.record_completion(completed(0, 20, 5.0));
        m.record_completion(completed(0, 30, 5.0));
        m.sample(SimTime::from_secs(7200));
        let tp: Vec<f64> = m
            .throughput_series()
            .points()
            .iter()
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(tp, vec![0.0, 1.0, 3.0]);
        assert_eq!(m.act_series().len(), 3);
        assert_eq!(m.ae_series().len(), 3);
        assert_eq!(m.throughput_series().name(), "x/throughput");
    }

    #[test]
    fn empty_metrics_report_neutral_values() {
        let m = WorkflowMetrics::new("empty");
        assert_eq!(m.throughput(), 0);
        assert_eq!(m.average_completion_time_secs(), 0.0);
        assert_eq!(m.average_efficiency(), 0.0);
        assert_eq!(m.completion_rate(), 1.0);
    }
}
