//! Periodically sampled time series.

use p2pgrid_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A named series of `(time, value)` samples, as plotted on the paper's figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Create an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name (legend label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample.  Samples must be appended in non-decreasing time order.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "samples must be appended in time order");
        }
        self.points.push((time, value));
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The final sampled value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Value at or before `time` (step interpolation), if any sample exists by then.
    pub fn value_at(&self, time: SimTime) -> Option<f64> {
        self.points
            .iter()
            .take_while(|&&(t, _)| t <= time)
            .last()
            .map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut ts = TimeSeries::new("throughput");
        assert!(ts.is_empty());
        ts.push(SimTime::from_secs(0), 0.0);
        ts.push(SimTime::from_secs(10), 5.0);
        ts.push(SimTime::from_secs(20), 9.0);
        assert_eq!(ts.name(), "throughput");
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.last_value(), Some(9.0));
        assert_eq!(ts.value_at(SimTime::from_secs(15)), Some(5.0));
        assert_eq!(ts.value_at(SimTime::from_secs(0)), Some(0.0));
        assert_eq!(ts.value_at(SimTime::from_secs(100)), Some(9.0));
    }

    #[test]
    fn value_before_first_sample_is_none() {
        let mut ts = TimeSeries::new("x");
        ts.push(SimTime::from_secs(10), 1.0);
        assert_eq!(ts.value_at(SimTime::from_secs(5)), None);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new("x");
        ts.push(SimTime::from_secs(10), 1.0);
        ts.push(SimTime::from_secs(5), 2.0);
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let mut ts = TimeSeries::new("x");
        ts.push(SimTime::from_secs(10), 1.0);
        ts.push(SimTime::from_secs(10), 2.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.value_at(SimTime::from_secs(10)), Some(2.0));
    }
}
