//! Robustness accounting for the fault-injection substrate.
//!
//! The paper's figures only count finished / failed workflows; under a fault model that is
//! not enough to compare recovery policies — a policy that finishes the same number of
//! workflows while re-executing half the grid's work is not "as good".  [`RobustnessStats`]
//! tracks the fault events themselves (node failures / repairs, tasks lost, retries) and the
//! work ledger in machine instructions: useful MI (work that ended up in a finished
//! workflow), wasted MI (work executed and then thrown away — lost mid-run, un-checkpointed
//! residue, redundant replica completions, or work belonging to a workflow that later
//! failed), and the latency between losing a task and getting its replacement dispatched.
//!
//! All accumulation happens at the engine's window barriers in canonical event order, so
//! every figure derived from these counters is byte-identical across shard counts and pool
//! widths.

/// Fault and recovery counters of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RobustnessStats {
    /// Node failures (stochastic faults) plus churn departures.
    pub node_failures: u64,
    /// Node repairs (stochastic faults) plus churn joins.
    pub node_repairs: u64,
    /// Tasks that were resident (queued or running) on a node when it went down.
    pub tasks_lost: u64,
    /// Lost running tasks re-queued by `RecoveryPolicy::Retry`.
    pub retries: u64,
    /// Executed machine instructions that ended up in a *finished* workflow.
    pub useful_mi: f64,
    /// Executed machine instructions thrown away: progress lost with a node, redundant
    /// replica runs, and every completed task of a workflow that later failed.
    pub wasted_mi: f64,
    /// Sum over recoveries of (re-dispatch time − loss time), in seconds.
    pub recovery_latency_secs_sum: f64,
    /// Number of lost-task recoveries that reached a re-dispatch.
    pub recoveries: u64,
}

impl RobustnessStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        RobustnessStats::default()
    }

    /// Fraction of executed work that was useful: `useful / (useful + wasted)`.
    /// `1.0` when nothing ran at all (nothing was wasted either).
    pub fn goodput(&self) -> f64 {
        let total = self.useful_mi + self.wasted_mi;
        if total > 0.0 {
            self.useful_mi / total
        } else {
            1.0
        }
    }

    /// Mean seconds between losing a task and dispatching its replacement, over all
    /// recoveries that reached a re-dispatch.  Zero when nothing was ever recovered.
    pub fn mean_recovery_latency_secs(&self) -> f64 {
        if self.recoveries > 0 {
            self.recovery_latency_secs_sum / self.recoveries as f64
        } else {
            0.0
        }
    }

    /// Mean retries per workflow, given the run's submitted-workflow count.
    pub fn retries_per_workflow(&self, submitted: usize) -> f64 {
        if submitted > 0 {
            self.retries as f64 / submitted as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_handles_empty_and_mixed_ledgers() {
        assert_eq!(RobustnessStats::new().goodput(), 1.0);
        let stats = RobustnessStats {
            useful_mi: 75.0,
            wasted_mi: 25.0,
            ..RobustnessStats::default()
        };
        assert!((stats.goodput() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn latency_and_retry_rates_divide_safely() {
        let mut stats = RobustnessStats::new();
        assert_eq!(stats.mean_recovery_latency_secs(), 0.0);
        assert_eq!(stats.retries_per_workflow(0), 0.0);
        stats.recovery_latency_secs_sum = 30.0;
        stats.recoveries = 3;
        stats.retries = 8;
        assert!((stats.mean_recovery_latency_secs() - 10.0).abs() < 1e-12);
        assert!((stats.retries_per_workflow(4) - 2.0).abs() < 1e-12);
    }
}
