//! # p2pgrid-metrics — measurement and reporting
//!
//! The paper evaluates schedulers with three system-level quantities:
//!
//! * **throughput** — the cumulative number of finished workflows over time (Fig. 4, 12);
//! * **average completion time (ACT)** — Eq. (2), the mean response time of finished workflows
//!   (Fig. 5, 7, 9, 11c, 13);
//! * **average efficiency (AE)** — Eq. (3), the mean of `eft(f) / ct(f)` over finished
//!   workflows (Fig. 6, 8, 10, 11b, 14).
//!
//! This crate provides the accumulators for those quantities ([`WorkflowMetrics`]), generic
//! online statistics ([`OnlineStats`]), periodically sampled time series ([`TimeSeries`]) and
//! plain-text table/series printers used by the experiment runners.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod robustness;
pub mod stats;
pub mod table;
pub mod timeseries;
pub mod workflow_metrics;

pub use robustness::RobustnessStats;
pub use stats::OnlineStats;
pub use table::{format_series, format_table};
pub use timeseries::TimeSeries;
pub use workflow_metrics::{WorkflowMetrics, WorkflowOutcome, WorkflowRecord};
