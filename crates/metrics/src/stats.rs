//! Online statistics (Welford's algorithm) and simple percentile helpers.

use serde::{Deserialize, Serialize};

/// Single-pass accumulator of count / mean / variance / min / max.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel/Chan update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation on the sorted data.
/// Returns `None` for an empty sample.
///
/// The sample must be NaN-free (debug-asserted): sorting is by `f64::total_cmp`, a total
/// order, so a stray NaN can no longer silently scramble the sort the way the old
/// `partial_cmp(..).unwrap_or(Equal)` comparator did — it sorts after every number and is
/// caught by the assertion in debug builds.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    debug_assert!(
        samples.iter().all(|x| !x.is_nan()),
        "quantile() requires a NaN-free sample"
    );
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_sample_statistics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_sequential_push() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        // Merging an empty accumulator is a no-op.
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    fn quantiles_use_a_total_order() {
        // total_cmp sorts infinities to the extremes and is permutation-independent — the
        // property the old partial_cmp-with-Equal-fallback comparator lost on odd inputs.
        let xs = [f64::INFINITY, 1.0, f64::NEG_INFINITY, 2.0];
        assert_eq!(quantile(&xs, 0.0), Some(f64::NEG_INFINITY));
        assert_eq!(quantile(&xs, 1.0), Some(f64::INFINITY));
        let mut reversed = xs;
        reversed.reverse();
        assert_eq!(quantile(&reversed, 0.5), quantile(&xs, 0.5));
    }

    #[test]
    #[should_panic(expected = "NaN-free")]
    #[cfg(debug_assertions)]
    fn quantile_rejects_nan_samples_in_debug_builds() {
        quantile(&[1.0, f64::NAN], 0.5);
    }

    proptest! {
        #[test]
        fn prop_mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = OnlineStats::new();
            for &x in &xs { s.push(x); }
            let mean = s.mean();
            prop_assert!(mean >= s.min().unwrap() - 1e-9);
            prop_assert!(mean <= s.max().unwrap() + 1e-9);
            prop_assert!(s.variance() >= 0.0);
        }
    }
}
