//! Plain-text table and series formatting for the experiment runners.

use crate::timeseries::TimeSeries;

/// Format a table with a header row and data rows as aligned plain text.
///
/// Every row must have the same number of cells as the header.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    for row in rows {
        assert_eq!(
            row.len(),
            cols,
            "row has {} cells, expected {cols}",
            row.len()
        );
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a set of time series as a column-per-series table keyed by time in hours — the same
/// layout as the gnuplot data behind the paper's figures.
pub fn format_series(series: &[&TimeSeries]) -> String {
    if series.is_empty() {
        return String::new();
    }
    let header: Vec<&str> = std::iter::once("hour")
        .chain(series.iter().map(|s| s.name()))
        .collect();
    // Use the sample times of the longest series as the time base.
    let base = series
        .iter()
        .max_by_key(|s| s.len())
        .expect("non-empty slice");
    let rows: Vec<Vec<String>> = base
        .points()
        .iter()
        .map(|&(t, _)| {
            std::iter::once(format!("{:.1}", t.as_hours_f64()))
                .chain(series.iter().map(|s| {
                    s.value_at(t)
                        .map(|v| format!("{v:.3}"))
                        .unwrap_or_else(|| "-".to_string())
                }))
                .collect()
        })
        .collect();
    format_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pgrid_sim::SimTime;

    #[test]
    fn table_is_aligned_and_complete() {
        let out = format_table(
            &["algorithm", "ACT", "AE"],
            &[
                vec!["DSMF".into(), "12000".into(), "0.30".into()],
                vec!["min-min".into(), "31977".into(), "0.11".into()],
            ],
        );
        assert!(out.contains("algorithm"));
        assert!(out.contains("min-min"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // The header and data rows align on the second column.
        let header_pos = lines[0].find("ACT").unwrap();
        let row_pos = lines[2].find("12000").unwrap();
        assert_eq!(header_pos, row_pos);
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn mismatched_row_width_panics() {
        format_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn series_table_uses_hours_and_fills_missing_with_dash() {
        let mut a = TimeSeries::new("DSMF");
        a.push(SimTime::from_hours_helper(1), 10.0);
        a.push(SimTime::from_hours_helper(2), 20.0);
        let mut b = TimeSeries::new("HEFT");
        b.push(SimTime::from_hours_helper(2), 5.0);
        let out = format_series(&[&a, &b]);
        assert!(out.contains("hour"));
        assert!(out.contains("DSMF"));
        assert!(out.contains("1.0"));
        assert!(
            out.contains('-'),
            "missing early HEFT sample should print as a dash"
        );
        assert_eq!(format_series(&[]), "");
    }

    trait FromHours {
        fn from_hours_helper(h: u64) -> SimTime;
    }
    impl FromHours for SimTime {
        fn from_hours_helper(h: u64) -> SimTime {
            SimTime::from_secs(h * 3600)
        }
    }
}
