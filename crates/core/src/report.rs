//! The result of one grid-simulation run.

use p2pgrid_gossip::GossipStats;
use p2pgrid_metrics::{RobustnessStats, WorkflowMetrics};
use p2pgrid_sim::SimTime;

/// Everything an experiment needs to know about one finished run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Label of the algorithm configuration (e.g. `"DSMF"`, `"min-min+FCFS"`).
    pub algorithm: String,
    /// The workflow metrics accumulator, including the hourly throughput / ACT / AE series.
    pub metrics: WorkflowMetrics,
    /// Gossip traffic statistics.
    pub gossip_stats: GossipStats,
    /// Average `RSS` size over alive nodes at the end of the run (Fig. 11a).
    pub avg_rss_size: f64,
    /// Virtual time at which the run ended.
    pub end_time: SimTime,
    /// Number of nodes in the run.
    pub nodes: usize,
    /// Total workflows submitted.
    pub submitted: u64,
    /// Workflows completed within the horizon.
    pub completed: u64,
    /// Workflows lost to churn or node failures.
    pub failed: u64,
    /// Fault / recovery accounting: node failures, lost tasks, retries, useful vs. wasted
    /// work, recovery latency.  All-zero (goodput 1.0) when the fault model is off.
    pub robustness: RobustnessStats,
}

impl SimulationReport {
    /// Average completion time (Eq. 2) in seconds.
    pub fn act_secs(&self) -> f64 {
        self.metrics.average_completion_time_secs()
    }

    /// Average efficiency (Eq. 3).
    pub fn average_efficiency(&self) -> f64 {
        self.metrics.average_efficiency()
    }

    /// Cumulative throughput (finished workflows).
    pub fn throughput(&self) -> u64 {
        self.metrics.throughput()
    }

    /// One row for the experiment summary tables.
    pub fn summary_row(&self) -> Vec<String> {
        vec![
            self.algorithm.clone(),
            format!("{}", self.throughput()),
            format!("{:.0}", self.act_secs()),
            format!("{:.3}", self.average_efficiency()),
            format!("{:.2}", self.metrics.completion_rate()),
        ]
    }

    /// Header matching [`SimulationReport::summary_row`].
    pub fn summary_header() -> [&'static str; 5] {
        ["algorithm", "finished", "ACT(s)", "AE", "completion-rate"]
    }
}
