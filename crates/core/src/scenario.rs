//! The immutable, reusable world of one experiment configuration.
//!
//! A [`Scenario`] is everything about a grid-simulation run that does **not** depend on the
//! scheduler under test: the Waxman topology and its all-pairs bottleneck bandwidths, the
//! landmark Dijkstra estimates, every node's sampled capacity / slot count / churn role, the
//! generated workflow DAGs with their home-node assignment, and the seeded RNG streams that
//! drive gossip and churn during the run.  All of it is pre-sampled deterministically from
//! `GridConfig::seed` when [`Scenario::build`] runs — exactly the sampling order the legacy
//! one-shot facade used, so a run started from a `Scenario` is byte-identical to the old path.
//!
//! The value of the split is reuse: the expensive setup (the all-pairs bandwidth computation
//! is `O(n²·log n)`, workflow analysis walks every DAG) happens **once**, and every
//! [`Scenario::simulate`] session clones only the cheap mutable runtime state.  `Scenario`
//! itself is an [`Arc`] handle — `Clone` is pointer-sized and the type is `Send + Sync`, so an
//! eight-algorithm sweep can fan out across threads over one shared world:
//!
//! ```
//! use p2pgrid_core::scenario::Scenario;
//! use p2pgrid_core::{Algorithm, GridConfig};
//!
//! let scenario = Scenario::build(GridConfig::small(16).with_seed(3)).unwrap();
//! let a = scenario.simulate_algorithm(Algorithm::Dsmf).run();
//! let b = scenario.simulate_algorithm(Algorithm::Dsmf).run();
//! assert_eq!(a.completed, b.completed); // sessions never perturb the scenario
//! ```
//!
//! Malformed configurations fail the build with a typed [`ConfigError`] instead of panicking
//! mid-experiment.

use crate::algorithm::{Algorithm, AlgorithmConfig};
use crate::config::{
    exponential, ArrivalProcess, ChurnConfig, FaultModel, GridConfig, RecoveryPolicy,
    ResourceModel, StreamKind, WorkloadSource,
};
use crate::engine::node::{NodeRuntime, ReadySet};
use crate::engine::transfer::TransferModel;
use crate::engine::workflow::WorkflowRuntime;
use crate::error::ConfigError;
use crate::scheduler::Scheduler;
use crate::simulation::Simulation;
use crate::NodeId;
use p2pgrid_gossip::MixedGossip;
use p2pgrid_sim::{SimDuration, SimRng, SimTime};
use p2pgrid_topology::{LandmarkEstimator, PairwiseMetrics, WaxmanGenerator};
use p2pgrid_workflow::{
    ExpectedCosts, HomePolicy, Workflow, WorkflowAnalysis, WorkflowGenerator,
    WorkflowGeneratorConfig, WorkloadSpec,
};
use std::fmt;
use std::sync::Arc;

/// The pre-sampled world shared by every session of one configuration.  Scheduler-independent
/// and immutable after [`Scenario::build`]; sessions clone the mutable parts and share the
/// read-only parts through the inner [`Arc`]s.
pub(crate) struct ScenarioWorld {
    pub(crate) config: GridConfig,
    /// Ground-truth transfer timing over the generated topology (read-only during runs).
    pub(crate) transfer: Arc<TransferModel>,
    /// Landmark-based bandwidth estimates (read-only during runs).
    pub(crate) landmarks: Arc<LandmarkEstimator>,
    /// Per-node mean bandwidth to the landmark set — a pure function of the topology tables,
    /// shared (and skipped) by derived worlds that share them.
    pub(crate) local_bw: Arc<Vec<f64>>,
    /// Pristine per-node runtime state: capacity, slots, churn role, empty queues.
    pub(crate) nodes: Vec<NodeRuntime>,
    /// Pristine per-workflow runtime state (no full-ahead plans; those are per-scheduler).
    pub(crate) workflows: Arc<Vec<WorkflowRuntime>>,
    /// Workflow indices submitted at each home node.
    pub(crate) home_of: Arc<Vec<Vec<usize>>>,
    /// True system-wide averages, the efficiency baseline `eft(f)` and full-ahead input.
    pub(crate) true_costs: ExpectedCosts,
    /// The gossip protocol state right after initialisation.
    pub(crate) gossip: MixedGossip,
    /// The gossip RNG stream, positioned right after [`MixedGossip::new`] drew from it.
    pub(crate) gossip_rng: SimRng,
    /// The churn RNG stream (sessions clone it, so every run replays the same churn).
    pub(crate) churn_rng: SimRng,
    /// The pre-drawn stochastic failure schedule: `(node, time, down)` transitions, node-major
    /// and time-ascending per node, clipped to the horizon.  Empty unless the fault model is
    /// [`FaultModel::Stochastic`].  Pre-drawing the whole schedule at build time (one RNG
    /// sub-stream per node / outage group) is what keeps failures byte-identical across shard
    /// counts: the events are scheduled into their owners' shard queues at session start, and
    /// no shard ever draws failure randomness live.
    pub(crate) faults: Vec<(NodeId, SimTime, bool)>,
    /// Conservative-PDES lookahead: a lower bound on how far ahead of "now" any cross-node
    /// interaction can land, derived once at build time (see [`Scenario::lookahead`]).
    pub(crate) lookahead: SimDuration,
}

/// The conservative time-window width of the sharded event loop under `config`, given the
/// topology's minimum positive pairwise latency.
///
/// Any effect one node has on another travels either over the network (a data transfer,
/// lower-bounded by the minimum pairwise path latency) or through a gossip exchange (which
/// only happens at multiples of the gossip interval).  The smaller of the two therefore
/// bounds the earliest cross-shard interaction, and shards may safely run `lookahead` ahead
/// of each other.  Clamped below at 1 ms (the virtual-time resolution) so degenerate
/// topologies still make progress one tick at a time.
fn compute_lookahead(config: &GridConfig, min_latency_ms: f64) -> SimDuration {
    let latency_bound = if min_latency_ms.is_finite() && min_latency_ms >= 1.0 {
        SimDuration::from_millis(min_latency_ms.floor() as u64)
    } else {
        // Single-node / disconnected topologies (+inf) or sub-millisecond latencies: fall
        // back to the other bound resp. the 1 ms floor.
        SimDuration::MAX
    };
    let bound = latency_bound.min(config.gossip_interval);
    bound.max(SimDuration::from_millis(1))
}

/// Number of stable (never-failing, home-eligible) nodes under `config`.
fn stable_count(config: &GridConfig) -> usize {
    let n = config.nodes;
    if config.faults.splits_population() {
        ((n as f64) * config.faults.stable_fraction())
            .round()
            .max(1.0) as usize
    } else {
        n
    }
}

/// Pre-draw the whole stochastic failure schedule (see [`ScenarioWorld::faults`]).
///
/// Every churnable node draws alternating exponential uptime/downtime intervals from its own
/// sub-stream of the [`StreamKind::Faults`] stream; correlated outages overlay fixed-length
/// down-windows per node group from per-group sub-streams.  Overlapping down-intervals are
/// union-merged per node, so a node never emits two consecutive failures without a repair in
/// between.
fn sample_fault_schedule(config: &GridConfig, stable: usize) -> Vec<(NodeId, SimTime, bool)> {
    let Some(faults) = config.faults.stochastic() else {
        return Vec::new();
    };
    let n = config.nodes;
    let horizon = config.horizon.as_secs_f64();
    let fail_rate = 1.0 / faults.mtbf.as_secs_f64();
    let repair_rate = 1.0 / faults.mttr.as_secs_f64();
    let root = stream_rng(config, StreamKind::Faults);

    // Correlated outages: chunk the churnable population into groups of `group_size`
    // consecutive nodes and pre-draw each group's outage windows.
    let group_windows: Vec<Vec<(f64, f64)>> = match &faults.correlated_outage {
        None => Vec::new(),
        Some(outage) => {
            let churnable = n.saturating_sub(stable);
            let groups = churnable.div_ceil(outage.group_size);
            let rate = 1.0 / outage.mtbf.as_secs_f64();
            let duration = outage.duration.as_secs_f64();
            (0..groups)
                .map(|g| {
                    let mut rng = root.derive_indexed("outage", g as u64);
                    let mut windows = Vec::new();
                    let mut t = 0.0f64;
                    loop {
                        t += exponential(&mut rng, rate);
                        if t >= horizon {
                            break;
                        }
                        windows.push((t, t + duration));
                        t += duration;
                    }
                    windows
                })
                .collect()
        }
    };

    let mut schedule = Vec::new();
    for node in stable..n {
        let mut rng = root.derive_indexed("node", node as u64);
        let mut intervals: Vec<(f64, f64)> = Vec::new();
        let mut t = 0.0f64;
        loop {
            t += exponential(&mut rng, fail_rate);
            if t >= horizon {
                break;
            }
            let down = exponential(&mut rng, repair_rate);
            intervals.push((t, t + down));
            t += down;
        }
        if let Some(outage) = &faults.correlated_outage {
            intervals.extend_from_slice(&group_windows[(node - stable) / outage.group_size]);
        }
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (start, end) in intervals {
            match merged.last_mut() {
                Some(last) if start <= last.1 => last.1 = last.1.max(end),
                _ => merged.push((start, end)),
            }
        }
        for (start, end) in merged {
            schedule.push((node, SimTime::from_secs_f64(start), true));
            if end < horizon {
                schedule.push((node, SimTime::from_secs_f64(end), false));
            }
        }
    }
    schedule
}

/// True when `a` and `b` would generate bit-identical topology tables (topology, pairwise
/// metrics, landmarks): same node count, same Waxman parameters and the same effective seeds
/// for the topology and landmark streams.
fn topology_inputs_match(a: &GridConfig, b: &GridConfig) -> bool {
    a.nodes == b.nodes
        && a.waxman == b.waxman
        && a.stream_seed(StreamKind::Topology) == b.stream_seed(StreamKind::Topology)
        && a.stream_seed(StreamKind::Landmarks) == b.stream_seed(StreamKind::Landmarks)
}

/// True when `a` and `b` would generate bit-identical workflow runtimes *given that their
/// topology tables already match*: same workload source (generator parameters or trace) and
/// arrival process, same load factor and workflow stream, the same home-node set (stable
/// count), and the same capacity draw (the analysis baseline `eft(f)` folds the capacity
/// average in).
fn workflow_inputs_match(a: &GridConfig, b: &GridConfig) -> bool {
    a.workload == b.workload
        && a.arrivals == b.arrivals
        && a.workflows_per_node == b.workflows_per_node
        && a.stream_seed(StreamKind::Workflows) == b.stream_seed(StreamKind::Workflows)
        && stable_count(a) == stable_count(b)
        && a.capacity == b.capacity
        && a.stream_seed(StreamKind::Capacity) == b.stream_seed(StreamKind::Capacity)
}

/// True when `a` and `b` would initialise bit-identical gossip state: same population, same
/// protocol parameters, same gossip stream.
fn gossip_inputs_match(a: &GridConfig, b: &GridConfig) -> bool {
    a.nodes == b.nodes
        && a.gossip == b.gossip
        && a.stream_seed(StreamKind::Gossip) == b.stream_seed(StreamKind::Gossip)
}

/// The RNG stream `kind` under `config`: effective seed → root → labelled stream, exactly
/// as `Scenario::build` has always derived it when no override is set.
fn stream_rng(config: &GridConfig, kind: StreamKind) -> SimRng {
    SimRng::seed_from_u64(config.stream_seed(kind)).derive(kind.label())
}

/// Per-node mean bandwidth to the landmark set (the node's "local average bandwidth" the
/// gossip substrate seeds resource advertisements with).  Pure function of the topology
/// tables, so derived worlds sharing those tables share this one too.
fn compute_local_bw(transfer: &TransferModel, landmarks: &LandmarkEstimator, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if n > 1 {
                let others: Vec<f64> = landmarks
                    .landmarks()
                    .iter()
                    .filter(|&&l| l != i)
                    .map(|&l| transfer.bandwidth_mbps(i, l))
                    .filter(|b| b.is_finite() && *b > 0.0)
                    .collect();
                if others.is_empty() {
                    transfer.average_bandwidth_mbps().max(1e-6)
                } else {
                    others.iter().sum::<f64>() / others.len() as f64
                }
            } else {
                1.0
            }
        })
        .collect()
}

/// A reusable, immutable, cheaply-cloneable world: build it once, run many schedulers on it.
///
/// See the [module docs](self) for the full story; [`Scenario::simulate`] (or the
/// [`Scenario::simulate_algorithm`] / [`Scenario::simulate_config`] conveniences) starts an
/// independent [`Simulation`] session on the shared world.
#[derive(Clone)]
pub struct Scenario {
    world: Arc<ScenarioWorld>,
}

impl Scenario {
    /// Validate `config` and pre-sample the whole world from its seed.
    ///
    /// This is the expensive step — topology generation, the all-pairs bottleneck-bandwidth
    /// computation, landmark selection, capacity/slot sampling and workflow generation — and
    /// the reason the type exists: do it once, then share the result across a sweep.
    pub fn build(config: GridConfig) -> Result<Scenario, ConfigError> {
        Scenario::build_with_reuse(config, None)
    }

    /// The shared implementation of [`Scenario::build`] and the `with_*` derivation methods.
    ///
    /// When `reuse` is given, any world table whose generating inputs (stream seed + the
    /// config slice it samples from) are unchanged is shared by `Arc` instead of recomputed;
    /// everything else is re-sampled through exactly the code path a fresh build takes, so a
    /// derived scenario is byte-identical to `Scenario::build` of the same config.
    fn build_with_reuse(
        config: GridConfig,
        reuse: Option<&ScenarioWorld>,
    ) -> Result<Scenario, ConfigError> {
        config.validate()?;
        let n = config.nodes;

        // Topology and ground-truth network metrics — the dominant cost (the all-pairs
        // sweep), shared whenever the generating inputs are unchanged.
        let topology_shared = reuse.is_some_and(|old| topology_inputs_match(&old.config, &config));
        let (transfer, landmarks, local_bw) = match reuse.filter(|_| topology_shared) {
            Some(old) => (
                Arc::clone(&old.transfer),
                Arc::clone(&old.landmarks),
                Arc::clone(&old.local_bw),
            ),
            None => {
                let mut topo_rng = stream_rng(&config, StreamKind::Topology);
                let topology = WaxmanGenerator::new(config.waxman).generate(&mut topo_rng);
                let transfer = Arc::new(TransferModel::new(PairwiseMetrics::compute(&topology)));
                let mut landmark_rng = stream_rng(&config, StreamKind::Landmarks);
                let landmarks = Arc::new(LandmarkEstimator::build_default(
                    transfer.metrics(),
                    &mut landmark_rng,
                ));
                let local_bw = Arc::new(compute_local_bw(&transfer, &landmarks, n));
                (transfer, landmarks, local_bw)
            }
        };

        // Node capacities, slots and roles.  Slot counts draw from their own derived stream,
        // so enabling heterogeneous distributions never perturbs capacities, workflows or
        // gossip (and the uniform model draws nothing at all).  Always re-sampled — the loop
        // is O(n) and cheap next to everything above.
        let mut cap_rng = stream_rng(&config, StreamKind::Capacity);
        let mut slot_rng = stream_rng(&config, StreamKind::Slots);
        let stable = stable_count(&config);
        let nodes: Vec<NodeRuntime> = (0..n)
            .map(|i| {
                let slots = config.resource.slots.sample(&mut slot_rng);
                NodeRuntime {
                    alive: true,
                    churnable: i >= stable,
                    capacity_mips: config.capacity.sample(&mut cap_rng),
                    slots,
                    epoch: 0,
                    ready: ReadySet::new(),
                    running: Vec::with_capacity(slots),
                    local_avg_bandwidth_mbps: local_bw[i],
                }
            })
            .collect();

        // True system-wide averages, used for the efficiency baseline eft(f).  Like the
        // aggregation gossip, the capacity average is over *per-slot* rates: eft models the
        // time one task takes on an average node, and one task only ever runs on one slot.
        let true_avg_capacity = nodes.iter().map(|nd| nd.capacity_mips).sum::<f64>() / n as f64;
        let true_avg_bandwidth = if n > 1 {
            transfer.average_bandwidth_mbps().max(1e-6)
        } else {
            1.0
        };
        let true_costs = ExpectedCosts::new(true_avg_capacity.max(1e-6), true_avg_bandwidth);

        // Workflows.  The synthetic source submits `workflows_per_node` per home node; under
        // churn only stable nodes are home nodes (the paper excludes home nodes from
        // churning).  A trace source replays its entries instead: each names its DAG, its
        // arrival time and its home policy (`Auto` round-robins over the home candidates).
        // Reused when the home set, the workload inputs and the analysis baseline are
        // unchanged.
        let workflows_shared =
            topology_shared && reuse.is_some_and(|old| workflow_inputs_match(&old.config, &config));
        let (workflows, home_of) = match reuse.filter(|_| workflows_shared) {
            Some(old) => (Arc::clone(&old.workflows), Arc::clone(&old.home_of)),
            None => {
                let mut wf_rng = stream_rng(&config, StreamKind::Workflows);
                let home_candidates: Vec<NodeId> =
                    (0..n).filter(|&i| !nodes[i].churnable).collect();

                // Collect (home, DAG, workload-defined arrival time) drafts first; analysis
                // and runtime construction are identical for both sources.
                let mut drafts: Vec<(NodeId, Workflow, SimTime)> = Vec::new();
                match &config.workload {
                    WorkloadSource::Synthetic(generator_config) => {
                        let generator = WorkflowGenerator::new(generator_config.clone());
                        for &home in &home_candidates {
                            for _ in 0..config.workflows_per_node {
                                let workflow = generator.generate(&mut wf_rng);
                                drafts.push((home, workflow, SimTime::ZERO));
                            }
                        }
                    }
                    WorkloadSource::Trace(spec) => {
                        let entries = spec
                            .resolve()
                            .map_err(|e| ConfigError::InvalidWorkload(e.to_string()))?;
                        let mut next_auto = 0usize;
                        for entry in entries {
                            let home = match entry.home {
                                HomePolicy::Auto => {
                                    let home = home_candidates[next_auto % home_candidates.len()];
                                    next_auto += 1;
                                    home
                                }
                                HomePolicy::Node(node) => {
                                    if node >= n {
                                        return Err(ConfigError::TraceHomeOutOfRange {
                                            node,
                                            nodes: n,
                                        });
                                    }
                                    if nodes[node].churnable {
                                        return Err(ConfigError::TraceHomeNotStable {
                                            node,
                                            stable,
                                        });
                                    }
                                    node
                                }
                            };
                            let when = SimTime::ZERO + SimDuration::from_millis(entry.submit_at_ms);
                            drafts.push((home, entry.workflow, when));
                        }
                    }
                }

                // Arrival times.  `Batch` keeps the workload-defined times (all zero for
                // synthetic workloads — the paper's model) and draws nothing, so the default
                // path samples byte-identically to the pre-arrival engine.  Every other
                // process samples from the *tail* of the workflow stream (after the DAGs)
                // and overrides the workload times — this is what lets a checked-in trace be
                // replayed under, say, a flash crowd.
                if !config.arrivals.is_batch() {
                    let times = config.arrivals.sample_times(drafts.len(), &mut wf_rng);
                    for (draft, when) in drafts.iter_mut().zip(times) {
                        draft.2 = when;
                    }
                }

                let mut workflows = Vec::with_capacity(drafts.len());
                let mut home_of = vec![Vec::new(); n];
                for (home, workflow, submitted_at) in drafts {
                    let analysis = WorkflowAnalysis::new(&workflow, true_costs);
                    let static_rpm: Vec<f64> =
                        workflow.task_ids().map(|t| analysis.rpm_secs(t)).collect();
                    let wf = WorkflowRuntime {
                        home,
                        progress: p2pgrid_workflow::ProgressTracker::new(&workflow),
                        eft_secs: analysis.expected_finish_time_secs(),
                        task_location: vec![None; workflow.task_count()],
                        failed: false,
                        completed: false,
                        submitted_at,
                        arrived: submitted_at == SimTime::ZERO,
                        plan: None,
                        static_ms_secs: analysis.expected_finish_time_secs(),
                        static_rpm,
                        workflow,
                    };
                    home_of[home].push(workflows.len());
                    workflows.push(wf);
                }
                (Arc::new(workflows), Arc::new(home_of))
            }
        };

        // Gossip state and the run-time RNG streams.
        let (gossip, gossip_rng) =
            match reuse.filter(|old| gossip_inputs_match(&old.config, &config)) {
                Some(old) => (old.gossip.clone(), old.gossip_rng.clone()),
                None => {
                    let mut gossip_rng = stream_rng(&config, StreamKind::Gossip);
                    let gossip = MixedGossip::new(n, config.gossip, &mut gossip_rng);
                    (gossip, gossip_rng)
                }
            };
        let churn_rng = stream_rng(&config, StreamKind::Churn);
        let faults = sample_fault_schedule(&config, stable);
        let lookahead = compute_lookahead(&config, transfer.metrics().min_positive_latency_ms());

        Ok(Scenario {
            world: Arc::new(ScenarioWorld {
                config,
                transfer,
                landmarks,
                local_bw,
                nodes,
                workflows,
                home_of,
                true_costs,
                gossip,
                gossip_rng,
                churn_rng,
                faults,
                lookahead,
            }),
        })
    }

    /// Derive a world with a new master seed, sharing this world's topology tables.
    ///
    /// The topology and landmark streams are pinned (via [`crate::StreamSeeds`]) to their
    /// current effective seeds, so the derived config still describes the *same* network —
    /// the `Arc`'d topology, `PairwiseMetrics` and landmark tables are shared, not rebuilt —
    /// while the capacity, slot, workflow, gossip and churn streams all re-sample from
    /// `seed`.  A 1000-point seed sweep therefore pays for one all-pairs Dijkstra sweep
    /// total.  The result is byte-identical to `Scenario::build` of the equivalent config.
    pub fn with_seed(&self, seed: u64) -> Result<Scenario, ConfigError> {
        let mut config = self.world.config.clone();
        config.streams.topology = Some(config.stream_seed(StreamKind::Topology));
        config.streams.landmarks = Some(config.stream_seed(StreamKind::Landmarks));
        config.seed = seed;
        Scenario::build_with_reuse(config, Some(&self.world))
    }

    /// Derive a world with a different resource model (slot counts, preemption).
    ///
    /// Only the slot stream's *consumption* changes; the topology tables, workflow set and
    /// gossip state are all shared.  Node runtimes are re-sampled (the slot model draws
    /// differently), which is O(nodes) and cheap.
    pub fn with_resource(&self, resource: ResourceModel) -> Result<Scenario, ConfigError> {
        let mut config = self.world.config.clone();
        config.resource = resource;
        Scenario::build_with_reuse(config, Some(&self.world))
    }

    /// Derive a world with different workflow generator parameters (loads, data sizes, DAG
    /// shapes — the CCR sweeps).
    ///
    /// Re-samples only the workflow stream; the topology tables, node population and gossip
    /// state are shared/identical.
    pub fn with_workflows(
        &self,
        workflow: WorkflowGeneratorConfig,
    ) -> Result<Scenario, ConfigError> {
        let mut config = self.world.config.clone();
        config.workload = WorkloadSource::Synthetic(workflow);
        Scenario::build_with_reuse(config, Some(&self.world))
    }

    /// Derive a world that replays a serialized trace workload (see
    /// [`WorkloadSource::Trace`]) instead of the synthetic generator.
    ///
    /// Like [`Scenario::with_workflows`], only the workflow set changes; the topology
    /// tables, node population and gossip state are shared/identical.  Each trace entry
    /// names its DAG, arrival time and home policy; `workflows_per_node` is ignored.
    pub fn with_workload(&self, workload: WorkloadSpec) -> Result<Scenario, ConfigError> {
        let mut config = self.world.config.clone();
        config.workload = WorkloadSource::Trace(workload);
        Scenario::build_with_reuse(config, Some(&self.world))
    }

    /// Derive a world with a different arrival process (see [`ArrivalProcess`]).
    ///
    /// Arrival times are drawn from the tail of the workflow stream, after the DAGs — the
    /// DAGs themselves are re-generated byte-identically, and the topology tables, node
    /// population and gossip state are shared.
    pub fn with_arrivals(&self, arrivals: ArrivalProcess) -> Result<Scenario, ConfigError> {
        let mut config = self.world.config.clone();
        config.arrivals = arrivals;
        Scenario::build_with_reuse(config, Some(&self.world))
    }

    /// Derive a world with a different load factor (workflows per home node, Fig. 7/8).
    ///
    /// Like [`Scenario::with_workflows`]: only the workflow draw changes; every expensive
    /// table is shared.
    pub fn with_load_factor(&self, workflows_per_node: usize) -> Result<Scenario, ConfigError> {
        let mut config = self.world.config.clone();
        config.workflows_per_node = workflows_per_node;
        Scenario::build_with_reuse(config, Some(&self.world))
    }

    /// Derive a world with a different churn model (Fig. 12–14 sweeps).
    ///
    /// Shares the topology tables and gossip state.  The node population is re-sampled with
    /// the same capacity/slot streams (so capacities stay identical) but a new stable/
    /// churnable split; when the split changes the home-node set, the workflow draw is
    /// regenerated exactly as a fresh build would.
    pub fn with_churn(&self, churn: ChurnConfig) -> Result<Scenario, ConfigError> {
        self.with_faults(FaultModel::Churn(churn))
    }

    /// Derive a world with a different fault model (churn or stochastic node lifetimes).
    ///
    /// Shares the topology tables and gossip state.  The node population is re-sampled with
    /// the same capacity/slot streams (so capacities stay identical) but a new stable/
    /// churnable split, and the stochastic failure schedule is re-drawn from the faults
    /// stream; when the split changes the home-node set, the workflow draw is regenerated
    /// exactly as a fresh build would.
    pub fn with_faults(&self, faults: FaultModel) -> Result<Scenario, ConfigError> {
        let mut config = self.world.config.clone();
        config.faults = faults;
        Scenario::build_with_reuse(config, Some(&self.world))
    }

    /// Derive a world with a different recovery policy.
    ///
    /// Recovery is pure run-time behaviour — it consumes no build-time randomness — so the
    /// derived world shares *every* table of this one (topology, nodes, workflows, gossip)
    /// and only the config differs.
    pub fn with_recovery(&self, recovery: RecoveryPolicy) -> Result<Scenario, ConfigError> {
        let mut config = self.world.config.clone();
        config.recovery = recovery;
        Scenario::build_with_reuse(config, Some(&self.world))
    }

    /// Derive a world that replays the *same* static substrate (topology, nodes, workflows)
    /// under re-seeded run-time randomness: the gossip and churn streams are pinned to
    /// `seed` while everything else keeps its current effective seed.
    ///
    /// This isolates algorithmic comparisons from gossip/churn luck: sweep `seed` to get
    /// independent stochastic replicates of one fixed workload.
    pub fn with_algorithm_streams(&self, seed: u64) -> Result<Scenario, ConfigError> {
        let mut config = self.world.config.clone();
        config.streams.gossip = Some(seed);
        config.streams.churn = Some(seed);
        Scenario::build_with_reuse(config, Some(&self.world))
    }

    /// True when both scenarios share the same topology tables (`Arc` identity, not value
    /// equality) — the derivation fast path actually fired.
    pub fn shares_topology_with(&self, other: &Scenario) -> bool {
        Arc::ptr_eq(&self.world.transfer, &other.world.transfer)
            && Arc::ptr_eq(&self.world.landmarks, &other.world.landmarks)
            && Arc::ptr_eq(&self.world.local_bw, &other.world.local_bw)
    }

    /// True when both scenarios share the same workflow set (`Arc` identity).
    pub fn shares_workflows_with(&self, other: &Scenario) -> bool {
        Arc::ptr_eq(&self.world.workflows, &other.world.workflows)
            && Arc::ptr_eq(&self.world.home_of, &other.world.home_of)
    }

    pub(crate) fn world(&self) -> &ScenarioWorld {
        &self.world
    }

    /// The configuration this world was sampled from.
    pub fn config(&self) -> &GridConfig {
        &self.world.config
    }

    /// Number of peer nodes in the world.
    pub fn node_count(&self) -> usize {
        self.world.nodes.len()
    }

    /// Number of workflow instances in the workload (whether they arrive at time zero, as in
    /// the paper's batch model, or later under an arrival process / trace times).
    pub fn workflow_count(&self) -> usize {
        self.world.workflows.len()
    }

    /// The true system-wide expected costs (the `eft(f)` baseline of Eq. 1).
    pub fn expected_costs(&self) -> ExpectedCosts {
        self.world.true_costs
    }

    /// The conservative-PDES lookahead of this world: the width of the lockstep time windows
    /// the sharded event loop advances in.
    ///
    /// Derived at build time as the smaller of the topology's minimum positive pairwise path
    /// latency (any data transfer between distinct nodes takes at least this long) and the
    /// gossip interval (the only other cross-node interaction channel), floored at the 1 ms
    /// virtual-time resolution.  Within one window shards cannot affect each other, which is
    /// what makes shard-parallel execution exact rather than approximate.
    pub fn lookahead(&self) -> SimDuration {
        self.world.lookahead
    }

    /// Start an independent [`Simulation`] session driven by any [`Scheduler`] — the seam for
    /// policies beyond the paper's built-in eight.  The session clones the mutable runtime
    /// state; the scenario itself is never perturbed, so sessions can run concurrently.
    pub fn simulate<'obs>(&self, scheduler: Box<dyn Scheduler>) -> Simulation<'obs> {
        Simulation::start(self, scheduler)
    }

    /// [`Scenario::simulate`] with an algorithm's paper-default phase pairing.
    pub fn simulate_algorithm<'obs>(&self, algorithm: Algorithm) -> Simulation<'obs> {
        self.simulate_config(AlgorithmConfig::paper_default(algorithm))
    }

    /// [`Scenario::simulate`] with an explicit algorithm × second-phase pairing.
    pub fn simulate_config<'obs>(&self, algo: AlgorithmConfig) -> Simulation<'obs> {
        self.simulate(Box::new(algo))
    }
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("nodes", &self.node_count())
            .field("workflows", &self.workflow_count())
            .field("seed", &self.world.config.seed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CapacityModel, ChurnConfig};
    use p2pgrid_sim::SimDuration;

    #[test]
    fn scenarios_are_send_sync_and_cheap_to_clone() {
        fn assert_shareable<T: Send + Sync + Clone>() {}
        assert_shareable::<Scenario>();
        let scenario = Scenario::build(GridConfig::small(8).with_seed(1)).unwrap();
        let other = scenario.clone();
        assert!(Arc::ptr_eq(&scenario.world, &other.world));
        assert_eq!(scenario.node_count(), 8);
        assert_eq!(scenario.workflow_count(), 16);
    }

    #[test]
    fn build_rejects_malformed_configs_with_typed_errors() {
        let mut cfg = GridConfig::small(8);
        cfg.capacity = CapacityModel::Choices(Vec::new());
        assert_eq!(
            Scenario::build(cfg).unwrap_err(),
            ConfigError::EmptyCapacitySet
        );
        let bad_churn = GridConfig::small(8).with_churn(ChurnConfig::with_dynamic_factor(2.0));
        assert_eq!(
            Scenario::build(bad_churn).unwrap_err(),
            ConfigError::InvalidDynamicFactor(2.0)
        );
        let mut zero_interval = GridConfig::small(8);
        zero_interval.gossip_interval = SimDuration::from_secs(0);
        assert_eq!(
            Scenario::build(zero_interval).unwrap_err(),
            ConfigError::ZeroInterval("gossip")
        );
    }

    #[test]
    fn lookahead_is_positive_and_bounded_by_the_gossip_interval() {
        let scenario = Scenario::build(GridConfig::small(16).with_seed(2)).unwrap();
        let la = scenario.lookahead();
        assert!(!la.is_zero());
        assert!(la <= scenario.config().gossip_interval);
        // Waxman hop latency is >= 1 ms, so generated topologies give a >= 1 ms window.
        assert!(la >= SimDuration::from_millis(1));
        // A single-node world has no pairwise latency: the gossip interval is the bound.
        let lonely = Scenario::build(GridConfig::small(1)).unwrap();
        assert_eq!(lonely.lookahead(), lonely.config().gossip_interval);
        // Derived worlds recompute/share the same lookahead (same topology tables).
        let derived = scenario.with_seed(99).unwrap();
        assert_eq!(derived.lookahead(), la);
    }

    #[test]
    fn churn_splits_the_population_like_the_legacy_setup() {
        let churned = Scenario::build(
            GridConfig::small(20)
                .with_seed(5)
                .with_churn(ChurnConfig::with_dynamic_factor(0.2)),
        )
        .unwrap();
        // 50% stable nodes host 2 workflows each.
        assert_eq!(churned.workflow_count(), 20);
        let static_world = Scenario::build(GridConfig::small(20).with_seed(5)).unwrap();
        assert_eq!(static_world.workflow_count(), 40);
    }

    #[test]
    fn stochastic_fault_schedule_is_deterministic_and_well_formed() {
        use crate::config::{CorrelatedOutage, FaultModel, StochasticFaults};
        let faults = FaultModel::Stochastic(
            StochasticFaults::new(SimDuration::from_hours(2), SimDuration::from_mins(20))
                .with_outage(CorrelatedOutage {
                    group_size: 3,
                    mtbf: SimDuration::from_hours(6),
                    duration: SimDuration::from_mins(15),
                }),
        );
        let cfg = GridConfig::small(20).with_seed(7).with_faults(faults);
        let a = Scenario::build(cfg.clone()).unwrap();
        let b = Scenario::build(cfg.clone()).unwrap();
        assert_eq!(
            a.world().faults,
            b.world().faults,
            "same seed, same schedule"
        );
        assert!(
            !a.world().faults.is_empty(),
            "2h MTBF over 12h must fail someone"
        );
        // Homes are restricted to the stable half, like the churn model.
        assert_eq!(a.workflow_count(), 20);
        let horizon = SimTime::ZERO + cfg.horizon;
        let mut down = std::collections::HashSet::new();
        for &(node, time, failing) in &a.world().faults {
            assert!(node >= 10, "stable nodes never appear in the schedule");
            assert!(time <= horizon);
            // Transitions strictly alternate down/up per node.
            assert_eq!(
                down.contains(&node),
                !failing,
                "node {node} double-transition"
            );
            if failing {
                down.insert(node);
            } else {
                down.remove(&node);
            }
        }
        // Off and churn models draw no schedule at all.
        assert!(Scenario::build(GridConfig::small(8))
            .unwrap()
            .world()
            .faults
            .is_empty());
        let churned =
            Scenario::build(GridConfig::small(8).with_churn(ChurnConfig::with_dynamic_factor(0.2)))
                .unwrap();
        assert!(churned.world().faults.is_empty());
    }

    #[test]
    fn recovery_derivation_shares_every_table() {
        use crate::config::RecoveryPolicy;
        let base = Scenario::build(GridConfig::small(12).with_seed(9)).unwrap();
        let derived = base
            .with_recovery(RecoveryPolicy::Retry {
                budget: 3,
                backoff: SimDuration::from_mins(1),
            })
            .unwrap();
        assert!(base.shares_topology_with(&derived));
        assert!(base.shares_workflows_with(&derived));
        assert_eq!(
            derived.config().recovery,
            RecoveryPolicy::Retry {
                budget: 3,
                backoff: SimDuration::from_mins(1)
            }
        );
    }
}
