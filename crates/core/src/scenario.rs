//! The immutable, reusable world of one experiment configuration.
//!
//! A [`Scenario`] is everything about a grid-simulation run that does **not** depend on the
//! scheduler under test: the Waxman topology and its all-pairs bottleneck bandwidths, the
//! landmark Dijkstra estimates, every node's sampled capacity / slot count / churn role, the
//! generated workflow DAGs with their home-node assignment, and the seeded RNG streams that
//! drive gossip and churn during the run.  All of it is pre-sampled deterministically from
//! `GridConfig::seed` when [`Scenario::build`] runs — exactly the sampling order the legacy
//! one-shot facade used, so a run started from a `Scenario` is byte-identical to the old path.
//!
//! The value of the split is reuse: the expensive setup (the all-pairs bandwidth computation
//! is `O(n²·log n)`, workflow analysis walks every DAG) happens **once**, and every
//! [`Scenario::simulate`] session clones only the cheap mutable runtime state.  `Scenario`
//! itself is an [`Arc`] handle — `Clone` is pointer-sized and the type is `Send + Sync`, so an
//! eight-algorithm sweep can fan out across threads over one shared world:
//!
//! ```
//! use p2pgrid_core::scenario::Scenario;
//! use p2pgrid_core::{Algorithm, GridConfig};
//!
//! let scenario = Scenario::build(GridConfig::small(16).with_seed(3)).unwrap();
//! let a = scenario.simulate_algorithm(Algorithm::Dsmf).run();
//! let b = scenario.simulate_algorithm(Algorithm::Dsmf).run();
//! assert_eq!(a.completed, b.completed); // sessions never perturb the scenario
//! ```
//!
//! Malformed configurations fail the build with a typed [`ConfigError`] instead of panicking
//! mid-experiment.

use crate::algorithm::{Algorithm, AlgorithmConfig};
use crate::config::GridConfig;
use crate::engine::node::{NodeRuntime, ReadySet};
use crate::engine::transfer::TransferModel;
use crate::engine::workflow::WorkflowRuntime;
use crate::error::ConfigError;
use crate::scheduler::Scheduler;
use crate::simulation::Simulation;
use crate::NodeId;
use p2pgrid_gossip::MixedGossip;
use p2pgrid_sim::{SimRng, SimTime};
use p2pgrid_topology::{LandmarkEstimator, PairwiseMetrics, WaxmanGenerator};
use p2pgrid_workflow::{ExpectedCosts, WorkflowAnalysis, WorkflowGenerator};
use std::fmt;
use std::sync::Arc;

/// The pre-sampled world shared by every session of one configuration.  Scheduler-independent
/// and immutable after [`Scenario::build`]; sessions clone the mutable parts and share the
/// read-only parts through the inner [`Arc`]s.
pub(crate) struct ScenarioWorld {
    pub(crate) config: GridConfig,
    /// Ground-truth transfer timing over the generated topology (read-only during runs).
    pub(crate) transfer: Arc<TransferModel>,
    /// Landmark-based bandwidth estimates (read-only during runs).
    pub(crate) landmarks: Arc<LandmarkEstimator>,
    /// Pristine per-node runtime state: capacity, slots, churn role, empty queues.
    pub(crate) nodes: Vec<NodeRuntime>,
    /// Pristine per-workflow runtime state (no full-ahead plans; those are per-scheduler).
    pub(crate) workflows: Vec<WorkflowRuntime>,
    /// Workflow indices submitted at each home node.
    pub(crate) home_of: Arc<Vec<Vec<usize>>>,
    /// True system-wide averages, the efficiency baseline `eft(f)` and full-ahead input.
    pub(crate) true_costs: ExpectedCosts,
    /// The gossip protocol state right after initialisation.
    pub(crate) gossip: MixedGossip,
    /// The gossip RNG stream, positioned right after [`MixedGossip::new`] drew from it.
    pub(crate) gossip_rng: SimRng,
    /// The churn RNG stream (sessions clone it, so every run replays the same churn).
    pub(crate) churn_rng: SimRng,
}

/// A reusable, immutable, cheaply-cloneable world: build it once, run many schedulers on it.
///
/// See the [module docs](self) for the full story; [`Scenario::simulate`] (or the
/// [`Scenario::simulate_algorithm`] / [`Scenario::simulate_config`] conveniences) starts an
/// independent [`Simulation`] session on the shared world.
#[derive(Clone)]
pub struct Scenario {
    world: Arc<ScenarioWorld>,
}

impl Scenario {
    /// Validate `config` and pre-sample the whole world from its seed.
    ///
    /// This is the expensive step — topology generation, the all-pairs bottleneck-bandwidth
    /// computation, landmark selection, capacity/slot sampling and workflow generation — and
    /// the reason the type exists: do it once, then share the result across a sweep.
    pub fn build(config: GridConfig) -> Result<Scenario, ConfigError> {
        config.validate()?;
        let root = SimRng::seed_from_u64(config.seed);

        // Topology and ground-truth network metrics.
        let mut topo_rng = root.derive("topology");
        let topology = WaxmanGenerator::new(config.waxman).generate(&mut topo_rng);
        let transfer = TransferModel::new(PairwiseMetrics::compute(&topology));
        let mut landmark_rng = root.derive("landmarks");
        let landmarks = LandmarkEstimator::build_default(transfer.metrics(), &mut landmark_rng);

        // Node capacities, slots and roles.  Slot counts draw from their own derived stream,
        // so enabling heterogeneous distributions never perturbs capacities, workflows or
        // gossip (and the uniform model draws nothing at all).
        let mut cap_rng = root.derive("capacity");
        let mut slot_rng = root.derive("slots");
        let n = config.nodes;
        let stable_count = if config.churn.splits_population() {
            ((n as f64) * config.churn.stable_fraction).round().max(1.0) as usize
        } else {
            n
        };
        let nodes: Vec<NodeRuntime> = (0..n)
            .map(|i| {
                let local_bw = if n > 1 {
                    let others: Vec<f64> = landmarks
                        .landmarks()
                        .iter()
                        .filter(|&&l| l != i)
                        .map(|&l| transfer.bandwidth_mbps(i, l))
                        .filter(|b| b.is_finite() && *b > 0.0)
                        .collect();
                    if others.is_empty() {
                        transfer.average_bandwidth_mbps().max(1e-6)
                    } else {
                        others.iter().sum::<f64>() / others.len() as f64
                    }
                } else {
                    1.0
                };
                let slots = config.resource.slots.sample(&mut slot_rng);
                NodeRuntime {
                    alive: true,
                    churnable: i >= stable_count,
                    capacity_mips: config.capacity.sample(&mut cap_rng),
                    slots,
                    epoch: 0,
                    ready: ReadySet::new(),
                    running: Vec::with_capacity(slots),
                    local_avg_bandwidth_mbps: local_bw,
                }
            })
            .collect();

        // True system-wide averages, used for the efficiency baseline eft(f).  Like the
        // aggregation gossip, the capacity average is over *per-slot* rates: eft models the
        // time one task takes on an average node, and one task only ever runs on one slot.
        let true_avg_capacity = nodes.iter().map(|nd| nd.capacity_mips).sum::<f64>() / n as f64;
        let true_avg_bandwidth = if n > 1 {
            transfer.average_bandwidth_mbps().max(1e-6)
        } else {
            1.0
        };
        let true_costs = ExpectedCosts::new(true_avg_capacity.max(1e-6), true_avg_bandwidth);

        // Workflows: `workflows_per_node` per home node; under churn only stable nodes are
        // home nodes (the paper excludes home nodes from churning).
        let mut wf_rng = root.derive("workflows");
        let generator = WorkflowGenerator::new(config.workflow.clone());
        let home_candidates: Vec<NodeId> = (0..n).filter(|&i| !nodes[i].churnable).collect();
        let mut workflows = Vec::new();
        let mut home_of = vec![Vec::new(); n];
        for &home in &home_candidates {
            for _ in 0..config.workflows_per_node {
                let workflow = generator.generate(&mut wf_rng);
                let analysis = WorkflowAnalysis::new(&workflow, true_costs);
                let static_rpm: Vec<f64> =
                    workflow.task_ids().map(|t| analysis.rpm_secs(t)).collect();
                let wf = WorkflowRuntime {
                    home,
                    progress: p2pgrid_workflow::ProgressTracker::new(&workflow),
                    eft_secs: analysis.expected_finish_time_secs(),
                    task_location: vec![None; workflow.task_count()],
                    failed: false,
                    completed: false,
                    submitted_at: SimTime::ZERO,
                    plan: None,
                    static_ms_secs: analysis.expected_finish_time_secs(),
                    static_rpm,
                    workflow,
                };
                home_of[home].push(workflows.len());
                workflows.push(wf);
            }
        }

        let mut gossip_rng = root.derive("gossip");
        let gossip = MixedGossip::new(n, config.gossip, &mut gossip_rng);
        let churn_rng = root.derive("churn");

        Ok(Scenario {
            world: Arc::new(ScenarioWorld {
                config,
                transfer: Arc::new(transfer),
                landmarks: Arc::new(landmarks),
                nodes,
                workflows,
                home_of: Arc::new(home_of),
                true_costs,
                gossip,
                gossip_rng,
                churn_rng,
            }),
        })
    }

    pub(crate) fn world(&self) -> &ScenarioWorld {
        &self.world
    }

    /// The configuration this world was sampled from.
    pub fn config(&self) -> &GridConfig {
        &self.world.config
    }

    /// Number of peer nodes in the world.
    pub fn node_count(&self) -> usize {
        self.world.nodes.len()
    }

    /// Number of workflows submitted at time zero.
    pub fn workflow_count(&self) -> usize {
        self.world.workflows.len()
    }

    /// The true system-wide expected costs (the `eft(f)` baseline of Eq. 1).
    pub fn expected_costs(&self) -> ExpectedCosts {
        self.world.true_costs
    }

    /// Start an independent [`Simulation`] session driven by any [`Scheduler`] — the seam for
    /// policies beyond the paper's built-in eight.  The session clones the mutable runtime
    /// state; the scenario itself is never perturbed, so sessions can run concurrently.
    pub fn simulate<'obs>(&self, scheduler: Box<dyn Scheduler>) -> Simulation<'obs> {
        Simulation::start(self, scheduler)
    }

    /// [`Scenario::simulate`] with an algorithm's paper-default phase pairing.
    pub fn simulate_algorithm<'obs>(&self, algorithm: Algorithm) -> Simulation<'obs> {
        self.simulate_config(AlgorithmConfig::paper_default(algorithm))
    }

    /// [`Scenario::simulate`] with an explicit algorithm × second-phase pairing.
    pub fn simulate_config<'obs>(&self, algo: AlgorithmConfig) -> Simulation<'obs> {
        self.simulate(Box::new(algo))
    }
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("nodes", &self.node_count())
            .field("workflows", &self.workflow_count())
            .field("seed", &self.world.config.seed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CapacityModel, ChurnConfig};
    use p2pgrid_sim::SimDuration;

    #[test]
    fn scenarios_are_send_sync_and_cheap_to_clone() {
        fn assert_shareable<T: Send + Sync + Clone>() {}
        assert_shareable::<Scenario>();
        let scenario = Scenario::build(GridConfig::small(8).with_seed(1)).unwrap();
        let other = scenario.clone();
        assert!(Arc::ptr_eq(&scenario.world, &other.world));
        assert_eq!(scenario.node_count(), 8);
        assert_eq!(scenario.workflow_count(), 16);
    }

    #[test]
    fn build_rejects_malformed_configs_with_typed_errors() {
        let mut cfg = GridConfig::small(8);
        cfg.capacity = CapacityModel::Choices(Vec::new());
        assert_eq!(
            Scenario::build(cfg).unwrap_err(),
            ConfigError::EmptyCapacitySet
        );
        let bad_churn = GridConfig::small(8).with_churn(ChurnConfig::with_dynamic_factor(2.0));
        assert_eq!(
            Scenario::build(bad_churn).unwrap_err(),
            ConfigError::InvalidDynamicFactor(2.0)
        );
        let mut zero_interval = GridConfig::small(8);
        zero_interval.gossip_interval = SimDuration::from_secs(0);
        assert_eq!(
            Scenario::build(zero_interval).unwrap_err(),
            ConfigError::ZeroInterval("gossip")
        );
    }

    #[test]
    fn churn_splits_the_population_like_the_legacy_setup() {
        let churned = Scenario::build(
            GridConfig::small(20)
                .with_seed(5)
                .with_churn(ChurnConfig::with_dynamic_factor(0.2)),
        )
        .unwrap();
        // 50% stable nodes host 2 workflows each.
        assert_eq!(churned.workflow_count(), 20);
        let static_world = Scenario::build(GridConfig::small(20).with_seed(5)).unwrap();
        assert_eq!(static_world.workflow_count(), 40);
    }
}
