//! The end-to-end P2P-grid simulation.
//!
//! One [`GridSimulation`] run reproduces the paper's experimental procedure:
//!
//! 1. A Waxman WAN topology is generated and its pairwise bottleneck bandwidths computed
//!    (the ground truth on which transfers are timed).
//! 2. Every node receives a capacity from Table I's {1, 2, 4, 8, 16} MIPS set and the home
//!    nodes receive their workflows at time zero.
//! 3. The **mixed gossip protocol** runs every five minutes, giving every node a bounded `RSS`
//!    of peer states and estimates of the average capacity / bandwidth.
//! 4. The **first scheduling phase** runs every fifteen minutes on every home node: schedule
//!    points are prioritised and dispatched per the configured algorithm (Algorithm 1 for
//!    DSMF), program images and dependent data start flowing to the chosen resource nodes.
//! 5. The **second scheduling phase** runs on every resource node whenever its single,
//!    non-preemptive CPU frees up: the next data-complete ready task is chosen per the
//!    configured ready-set rule (Algorithm 2 for DSMF) and executed for `load / capacity`
//!    seconds.
//! 6. Under churn, a `df` fraction of the churnable population leaves and (re-)joins every
//!    scheduling interval; tasks resident on departed nodes are lost and their workflows fail
//!    (or are re-scheduled if the future-work flag is enabled).
//! 7. Throughput, ACT and AE are sampled hourly, exactly like the paper's figures.

use crate::algorithm::{Algorithm, AlgorithmConfig};
use crate::config::GridConfig;
use crate::estimate::{CandidateNode, FinishTimeEstimator, PredecessorData};
use crate::fullahead::{plan_full_ahead, PlanInput};
use crate::policy::first_phase::{plan_dispatch, DispatchCandidateTask};
use crate::policy::second_phase::{select_next, ReadyTaskView};
use crate::report::SimulationReport;
use crate::NodeId;
use p2pgrid_gossip::{LocalNodeState, MixedGossip};
use p2pgrid_metrics::{WorkflowMetrics, WorkflowOutcome, WorkflowRecord};
use p2pgrid_sim::{SimControl, SimDuration, SimRng, SimTime, Simulator};
use p2pgrid_topology::{LandmarkEstimator, PairwiseMetrics, WaxmanGenerator};
use p2pgrid_workflow::{
    ExpectedCosts, ProgressTracker, TaskId, Workflow, WorkflowAnalysis, WorkflowGenerator,
};

/// Events of the grid simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GridEvent {
    /// Run one mixed-gossip cycle on every alive node.
    GossipCycle,
    /// Run the churn step and the first scheduling phase on every home node.
    SchedulingCycle,
    /// Sample throughput / ACT / AE.
    MetricsSample,
    /// All input data of a dispatched task has arrived at its resource node.
    DataReady {
        node: NodeId,
        epoch: u64,
        wf: usize,
        task: TaskId,
    },
    /// A running task finished on its resource node.
    TaskCompleted {
        node: NodeId,
        epoch: u64,
        wf: usize,
        task: TaskId,
    },
}

/// A task waiting (or transferring data) in a resource node's ready set.
#[derive(Debug, Clone)]
struct ReadyRt {
    wf: usize,
    task: TaskId,
    load_mi: f64,
    rpm_secs: f64,
    ms_secs: f64,
    exec_secs: f64,
    sufferage_secs: f64,
    seq: u64,
    data_ready: bool,
}

/// The task currently occupying a resource node's CPU.
#[derive(Debug, Clone, Copy)]
struct RunningRt {
    wf: usize,
    task: TaskId,
    finish_at: SimTime,
}

/// Runtime state of one peer node.
#[derive(Debug, Clone)]
struct NodeRt {
    alive: bool,
    churnable: bool,
    capacity_mips: f64,
    /// Incremented every time the node departs; pending events carrying an older epoch are
    /// ignored, which models the loss of everything in flight.
    epoch: u64,
    ready: Vec<ReadyRt>,
    running: Option<RunningRt>,
    local_avg_bandwidth_mbps: f64,
}

/// Runtime state of one submitted workflow instance.
#[derive(Debug, Clone)]
struct WorkflowRt {
    home: NodeId,
    workflow: Workflow,
    progress: ProgressTracker,
    /// Expected finish time under the true system-wide averages (Eq. 1).
    eft_secs: f64,
    task_location: Vec<Option<NodeId>>,
    failed: bool,
    completed: bool,
    submitted_at: SimTime,
    /// Full-ahead plan (task index → node id), present only for HEFT / SMF.
    plan: Option<Vec<NodeId>>,
    /// RPM under the true averages, used by the full-ahead baselines' ready-set metadata.
    static_rpm: Vec<f64>,
    static_ms_secs: f64,
}

struct GridState {
    config: GridConfig,
    algo: AlgorithmConfig,
    metrics_net: PairwiseMetrics,
    landmarks: LandmarkEstimator,
    gossip: MixedGossip,
    gossip_rng: SimRng,
    churn_rng: SimRng,
    nodes: Vec<NodeRt>,
    workflows: Vec<WorkflowRt>,
    home_of: Vec<Vec<usize>>,
    metrics: WorkflowMetrics,
    next_seq: u64,
    dispatched_tasks: u64,
    executed_tasks: u64,
}

impl GridState {
    fn new(config: GridConfig, algo: AlgorithmConfig) -> Self {
        config.validate();
        let root = SimRng::seed_from_u64(config.seed);

        // Topology and ground-truth network metrics.
        let mut topo_rng = root.derive("topology");
        let topology = WaxmanGenerator::new(config.waxman.clone()).generate(&mut topo_rng);
        let metrics_net = PairwiseMetrics::compute(&topology);
        let mut landmark_rng = root.derive("landmarks");
        let landmarks = LandmarkEstimator::build_default(&metrics_net, &mut landmark_rng);

        // Node capacities and roles.
        let mut cap_rng = root.derive("capacity");
        let n = config.nodes;
        let stable_count = if config.churn.splits_population() {
            ((n as f64) * config.churn.stable_fraction).round().max(1.0) as usize
        } else {
            n
        };
        let nodes: Vec<NodeRt> = (0..n)
            .map(|i| {
                let local_bw = if n > 1 {
                    let others: Vec<f64> = landmarks
                        .landmarks()
                        .iter()
                        .filter(|&&l| l != i)
                        .map(|&l| metrics_net.bandwidth_mbps(i, l))
                        .filter(|b| b.is_finite() && *b > 0.0)
                        .collect();
                    if others.is_empty() {
                        metrics_net.average_bandwidth_mbps().max(1e-6)
                    } else {
                        others.iter().sum::<f64>() / others.len() as f64
                    }
                } else {
                    1.0
                };
                NodeRt {
                    alive: true,
                    churnable: i >= stable_count,
                    capacity_mips: config.capacity.sample(&mut cap_rng),
                    epoch: 0,
                    ready: Vec::new(),
                    running: None,
                    local_avg_bandwidth_mbps: local_bw,
                }
            })
            .collect();

        // True system-wide averages, used for the efficiency baseline eft(f).
        let true_avg_capacity =
            nodes.iter().map(|nd| nd.capacity_mips).sum::<f64>() / n as f64;
        let true_avg_bandwidth = if n > 1 {
            metrics_net.average_bandwidth_mbps().max(1e-6)
        } else {
            1.0
        };
        let true_costs = ExpectedCosts::new(true_avg_capacity.max(1e-6), true_avg_bandwidth);

        // Workflows: `workflows_per_node` per home node; under churn only stable nodes are
        // home nodes (the paper excludes home nodes from churning).
        let mut wf_rng = root.derive("workflows");
        let generator = WorkflowGenerator::new(config.workflow.clone());
        let home_candidates: Vec<NodeId> = (0..n).filter(|&i| !nodes[i].churnable).collect();
        let mut workflows = Vec::new();
        let mut home_of = vec![Vec::new(); n];
        let mut metrics = WorkflowMetrics::new(algo.label());
        for &home in &home_candidates {
            for _ in 0..config.workflows_per_node {
                let workflow = generator.generate(&mut wf_rng);
                let analysis = WorkflowAnalysis::new(&workflow, true_costs);
                let static_rpm: Vec<f64> =
                    workflow.task_ids().map(|t| analysis.rpm_secs(t)).collect();
                let wf = WorkflowRt {
                    home,
                    progress: ProgressTracker::new(&workflow),
                    eft_secs: analysis.expected_finish_time_secs(),
                    task_location: vec![None; workflow.task_count()],
                    failed: false,
                    completed: false,
                    submitted_at: SimTime::ZERO,
                    plan: None,
                    static_ms_secs: analysis.expected_finish_time_secs(),
                    static_rpm,
                    workflow,
                };
                metrics.record_submission();
                home_of[home].push(workflows.len());
                workflows.push(wf);
            }
        }

        // Full-ahead plans (HEFT / SMF) are computed centrally before execution starts.
        if algo.algorithm.is_full_ahead() {
            let inputs: Vec<PlanInput<'_>> = workflows
                .iter()
                .map(|w| PlanInput {
                    home: w.home,
                    workflow: &w.workflow,
                })
                .collect();
            let candidates: Vec<CandidateNode> = nodes
                .iter()
                .enumerate()
                .map(|(i, nd)| CandidateNode {
                    node: i,
                    capacity_mips: nd.capacity_mips,
                    total_load_mi: 0.0,
                })
                .collect();
            let bw = |a: NodeId, b: NodeId| metrics_net.bandwidth_mbps(a, b);
            let plans = plan_full_ahead(algo.algorithm, &inputs, &candidates, true_costs, &bw);
            for (w, plan) in workflows.iter_mut().zip(plans) {
                w.plan = Some(plan);
            }
        }

        let mut gossip_rng = root.derive("gossip");
        let gossip = MixedGossip::new(n, config.gossip, &mut gossip_rng);
        let churn_rng = root.derive("churn");

        GridState {
            config,
            algo,
            metrics_net,
            landmarks,
            gossip,
            gossip_rng,
            churn_rng,
            nodes,
            workflows,
            home_of,
            metrics,
            next_seq: 0,
            dispatched_tasks: 0,
            executed_tasks: 0,
        }
    }

    // ----- helpers -------------------------------------------------------------------------

    fn total_load_mi(&self, node: NodeId, now: SimTime) -> f64 {
        let nd = &self.nodes[node];
        let mut load: f64 = nd.ready.iter().map(|r| r.load_mi).sum();
        if let Some(run) = &nd.running {
            let remaining_secs = run.finish_at.saturating_duration_since(now).as_secs_f64();
            load += remaining_secs * nd.capacity_mips;
        }
        load
    }

    fn local_gossip_states(&self, now: SimTime) -> Vec<LocalNodeState> {
        (0..self.nodes.len())
            .map(|i| LocalNodeState {
                alive: self.nodes[i].alive,
                capacity_mips: self.nodes[i].capacity_mips,
                total_load_mi: self.total_load_mi(i, now),
                local_avg_bandwidth_mbps: self.nodes[i].local_avg_bandwidth_mbps,
            })
            .collect()
    }

    fn fail_workflow(&mut self, wf: usize, now: SimTime) {
        let w = &mut self.workflows[wf];
        if w.failed || w.completed {
            return;
        }
        w.failed = true;
        self.metrics.record_failure(WorkflowRecord {
            submitted_at: w.submitted_at,
            completed_at: now,
            expected_finish_secs: w.eft_secs,
            outcome: WorkflowOutcome::Failed,
        });
    }

    /// A node departs.  Tasks that were merely *waiting* in its ready set (or still receiving
    /// their input data) have not executed anything yet, so their home nodes simply observe the
    /// failed migration and turn them back into schedule points — no checkpointing is needed
    /// for that.  The task that was *running* loses its computation; without the
    /// checkpointing/rescheduling extension (the paper's future work) its workflow can no
    /// longer finish and is recorded as failed.
    fn handle_departure(&mut self, node: NodeId, now: SimTime) {
        let (waiting, running): (Vec<(usize, TaskId)>, Option<(usize, TaskId)>) = {
            let nd = &mut self.nodes[node];
            if !nd.alive {
                return;
            }
            nd.alive = false;
            nd.epoch += 1;
            let waiting: Vec<(usize, TaskId)> =
                nd.ready.iter().map(|r| (r.wf, r.task)).collect();
            let running = nd.running.take().map(|run| (run.wf, run.task));
            nd.ready.clear();
            (waiting, running)
        };
        for (wf, task) in waiting {
            if self.workflows[wf].completed || self.workflows[wf].failed {
                continue;
            }
            self.workflows[wf].progress.unmark_dispatched(task);
        }
        if let Some((wf, task)) = running {
            if !self.workflows[wf].completed && !self.workflows[wf].failed {
                if self.config.churn.reschedule_lost_tasks {
                    self.workflows[wf].progress.unmark_dispatched(task);
                } else {
                    self.fail_workflow(wf, now);
                }
            }
        }
        self.gossip.forget_node(node);
    }

    fn handle_join(&mut self, node: NodeId) {
        let nd = &mut self.nodes[node];
        if nd.alive {
            return;
        }
        nd.alive = true;
        nd.ready.clear();
        nd.running = None;
    }

    fn churn_step(&mut self, now: SimTime) {
        let df = self.config.churn.dynamic_factor;
        if df <= 0.0 {
            return;
        }
        let churn_count = ((self.nodes.len() as f64) * df).round() as usize;
        if churn_count == 0 {
            return;
        }
        let alive_churnable: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].churnable && self.nodes[i].alive)
            .collect();
        let dead_churnable: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].churnable && !self.nodes[i].alive)
            .collect();
        let leaving: Vec<NodeId> = self
            .churn_rng
            .choose_multiple(&alive_churnable, churn_count)
            .into_iter()
            .copied()
            .collect();
        let joining: Vec<NodeId> = self
            .churn_rng
            .choose_multiple(&dead_churnable, churn_count)
            .into_iter()
            .copied()
            .collect();
        for node in leaving {
            self.handle_departure(node, now);
        }
        for node in joining {
            self.handle_join(node);
        }
    }

    // ----- first phase ---------------------------------------------------------------------

    fn scheduling_phase_one(&mut self, ctl: &mut SimControl<GridEvent>) {
        let now = ctl.now();
        let home_nodes: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].alive && !self.home_of[i].is_empty())
            .collect();
        for home in home_nodes {
            if self.algo.algorithm.is_full_ahead() {
                self.dispatch_full_ahead(home, ctl);
            } else {
                self.dispatch_just_in_time(home, ctl);
            }
            let _ = now;
        }
    }

    /// Dispatch every current schedule point of the full-ahead baselines to its pre-planned
    /// node (falling back to the home node if the planned node has churned away).
    fn dispatch_full_ahead(&mut self, home: NodeId, ctl: &mut SimControl<GridEvent>) {
        let wf_indices = self.home_of[home].clone();
        for wf in wf_indices {
            if self.workflows[wf].completed || self.workflows[wf].failed {
                continue;
            }
            let sps = {
                let w = &self.workflows[wf];
                w.progress.schedule_points(&w.workflow)
            };
            for task in sps {
                let planned = self.workflows[wf].plan.as_ref().expect("full-ahead plan")
                    [task.index()];
                let target = if self.nodes[planned].alive { planned } else { home };
                let (rpm, ms, sufferage) = {
                    let w = &self.workflows[wf];
                    (w.static_rpm[task.index()], w.static_ms_secs, 0.0)
                };
                self.dispatch_task(home, wf, task, target, rpm, ms, sufferage, ctl);
            }
        }
    }

    /// Algorithm 1 (and its competitor orderings) at one home node.
    fn dispatch_just_in_time(&mut self, home: NodeId, ctl: &mut SimControl<GridEvent>) {
        // The home node's estimates of the system-wide averages come from the aggregation
        // gossip; its candidate set comes from the epidemic gossip's RSS.
        let (avg_cap, avg_bw) = self.gossip.expected_costs(home);
        let costs = ExpectedCosts::new(avg_cap, avg_bw);

        let mut candidate_tasks: Vec<DispatchCandidateTask> = Vec::new();
        let wf_indices = self.home_of[home].clone();
        for &wf in &wf_indices {
            let w = &self.workflows[wf];
            if w.completed || w.failed {
                continue;
            }
            let sps = w.progress.schedule_points(&w.workflow);
            if sps.is_empty() {
                continue;
            }
            let analysis = WorkflowAnalysis::new(&w.workflow, costs);
            let ms = sps
                .iter()
                .map(|&t| analysis.rpm_secs(t))
                .fold(0.0f64, f64::max);
            for t in sps {
                let predecessors: Vec<PredecessorData> = w
                    .workflow
                    .precedents(t)
                    .iter()
                    .map(|e| PredecessorData {
                        location: w.task_location[e.task.index()].unwrap_or(w.home),
                        data_mb: e.data_mb,
                    })
                    .collect();
                candidate_tasks.push(DispatchCandidateTask {
                    workflow: wf,
                    task: t,
                    load_mi: w.workflow.task(t).load_mi,
                    image_size_mb: w.workflow.task(t).image_size_mb,
                    rpm_secs: analysis.rpm_secs(t),
                    workflow_ms_secs: ms,
                    predecessors,
                });
            }
        }
        if candidate_tasks.is_empty() {
            return;
        }

        // Candidate resource nodes: the home node's RSS (always contains itself once gossip has
        // run; fall back to the home node before that), restricted to currently alive nodes.
        let mut candidates: Vec<CandidateNode> = self
            .gossip
            .rss(home)
            .records_sorted()
            .into_iter()
            .filter(|r| self.nodes[r.node].alive)
            .map(|r| CandidateNode {
                node: r.node,
                capacity_mips: r.capacity_mips,
                total_load_mi: r.total_load_mi,
            })
            .collect();
        if candidates.is_empty() {
            candidates.push(CandidateNode {
                node: home,
                capacity_mips: self.nodes[home].capacity_mips,
                total_load_mi: self.total_load_mi(home, ctl.now()),
            });
        }

        let landmarks = &self.landmarks;
        let bw_estimate =
            move |a: NodeId, b: NodeId| -> f64 { landmarks.estimate_bandwidth_mbps(a, b) };
        let estimator = FinishTimeEstimator::new(home, &bw_estimate);
        let decisions = plan_dispatch(
            self.algo.algorithm,
            &candidate_tasks,
            &mut candidates,
            &estimator,
        );
        let lookup: std::collections::HashMap<(usize, TaskId), (f64, f64)> = candidate_tasks
            .iter()
            .map(|t| ((t.workflow, t.task), (t.rpm_secs, t.workflow_ms_secs)))
            .collect();
        for d in decisions {
            let (rpm, ms) = lookup[&(d.workflow, d.task)];
            self.dispatch_task(
                home,
                d.workflow,
                d.task,
                d.target,
                rpm,
                ms,
                d.sufferage_secs,
                ctl,
            );
        }
    }

    /// Migrate a task to its chosen resource node: mark it dispatched, enqueue it in the ready
    /// set and schedule the completion of its (true) data transfers.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_task(
        &mut self,
        home: NodeId,
        wf: usize,
        task: TaskId,
        target: NodeId,
        rpm_secs: f64,
        ms_secs: f64,
        sufferage_secs: f64,
        ctl: &mut SimControl<GridEvent>,
    ) {
        if !self.nodes[target].alive {
            // A stale RSS record pointed at a node that just churned away; the migration fails
            // before any computation happens, so the task simply stays a schedule point and is
            // retried at the next scheduling cycle.
            return;
        }
        let (load_mi, image_mb, transfers): (f64, f64, Vec<(NodeId, f64)>) = {
            let w = &self.workflows[wf];
            let t = w.workflow.task(task);
            let transfers = w
                .workflow
                .precedents(task)
                .iter()
                .map(|e| {
                    (
                        w.task_location[e.task.index()].unwrap_or(w.home),
                        e.data_mb,
                    )
                })
                .collect();
            (t.load_mi, t.image_size_mb, transfers)
        };
        self.workflows[wf].progress.mark_dispatched(task);
        self.dispatched_tasks += 1;

        // True transfer times on the ground-truth network: program image from the home node
        // plus dependent data from every precedent's execution site, all in parallel.
        let mut transfer_secs = self.metrics_net.transfer_secs(home, target, image_mb);
        for (from, data_mb) in transfers {
            transfer_secs = transfer_secs.max(self.metrics_net.transfer_secs(from, target, data_mb));
        }
        let exec_secs = load_mi / self.nodes[target].capacity_mips;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.nodes[target].ready.push(ReadyRt {
            wf,
            task,
            load_mi,
            rpm_secs,
            ms_secs,
            exec_secs,
            sufferage_secs,
            seq,
            data_ready: false,
        });
        ctl.schedule_in(
            SimDuration::from_secs_f64(transfer_secs),
            GridEvent::DataReady {
                node: target,
                epoch: self.nodes[target].epoch,
                wf,
                task,
            },
        );
    }

    // ----- second phase --------------------------------------------------------------------

    /// Algorithm 2: if the CPU is idle, pick the next data-complete ready task and run it.
    fn try_start_task(&mut self, node: NodeId, ctl: &mut SimControl<GridEvent>) {
        let nd = &self.nodes[node];
        if !nd.alive || nd.running.is_some() {
            return;
        }
        let eligible: Vec<usize> = nd
            .ready
            .iter()
            .enumerate()
            .filter(|(_, r)| r.data_ready)
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return;
        }
        let views: Vec<ReadyTaskView> = eligible
            .iter()
            .map(|&i| {
                let r = &nd.ready[i];
                ReadyTaskView {
                    workflow_ms_secs: r.ms_secs,
                    rpm_secs: r.rpm_secs,
                    exec_secs: r.exec_secs,
                    sufferage_secs: r.sufferage_secs,
                    enqueued_seq: r.seq,
                }
            })
            .collect();
        let Some(pick) = select_next(self.algo.second_phase, &views) else {
            return;
        };
        let chosen_idx = eligible[pick];
        let chosen = self.nodes[node].ready.remove(chosen_idx);
        let finish_at = ctl.now() + SimDuration::from_secs_f64(chosen.exec_secs);
        self.nodes[node].running = Some(RunningRt {
            wf: chosen.wf,
            task: chosen.task,
            finish_at,
        });
        self.executed_tasks += 1;
        ctl.schedule_at(
            finish_at,
            GridEvent::TaskCompleted {
                node,
                epoch: self.nodes[node].epoch,
                wf: chosen.wf,
                task: chosen.task,
            },
        );
    }

    fn on_data_ready(&mut self, node: NodeId, epoch: u64, wf: usize, task: TaskId, ctl: &mut SimControl<GridEvent>) {
        if !self.nodes[node].alive || self.nodes[node].epoch != epoch {
            return;
        }
        if let Some(entry) = self.nodes[node]
            .ready
            .iter_mut()
            .find(|r| r.wf == wf && r.task == task)
        {
            entry.data_ready = true;
        }
        self.try_start_task(node, ctl);
    }

    fn on_task_completed(
        &mut self,
        node: NodeId,
        epoch: u64,
        wf: usize,
        task: TaskId,
        ctl: &mut SimControl<GridEvent>,
    ) {
        if self.nodes[node].epoch != epoch || !self.nodes[node].alive {
            return;
        }
        match self.nodes[node].running {
            Some(run) if run.wf == wf && run.task == task => {
                self.nodes[node].running = None;
            }
            _ => return,
        }
        let now = ctl.now();
        {
            let w = &mut self.workflows[wf];
            if !w.failed && !w.completed {
                w.task_location[task.index()] = Some(node);
                w.progress.mark_finished(&w.workflow, task);
                if task == w.workflow.exit() {
                    w.completed = true;
                    self.metrics.record_completion(WorkflowRecord {
                        submitted_at: w.submitted_at,
                        completed_at: now,
                        expected_finish_secs: w.eft_secs,
                        outcome: WorkflowOutcome::Completed,
                    });
                }
            }
        }
        self.try_start_task(node, ctl);
    }

    fn finish(mut self, end_time: SimTime) -> SimulationReport {
        self.metrics.sample(end_time);
        let local = self.local_gossip_states(end_time);
        let avg_rss_size = self.gossip.average_rss_size(&local);
        SimulationReport {
            algorithm: self.algo.label(),
            gossip_stats: self.gossip.stats(),
            avg_rss_size,
            end_time,
            nodes: self.config.nodes,
            submitted: self.metrics.submitted(),
            completed: self.metrics.throughput(),
            failed: self.metrics.failed(),
            metrics: self.metrics,
        }
    }
}

impl p2pgrid_sim::EventHandler<GridEvent> for GridState {
    fn handle(&mut self, ctl: &mut SimControl<GridEvent>, event: GridEvent) {
        match event {
            GridEvent::GossipCycle => {
                let local = self.local_gossip_states(ctl.now());
                let mut rng = self.gossip_rng.clone();
                self.gossip.run_cycle(ctl.now(), &local, &mut rng);
                self.gossip_rng = rng;
                ctl.schedule_in(self.config.gossip_interval, GridEvent::GossipCycle);
            }
            GridEvent::SchedulingCycle => {
                self.churn_step(ctl.now());
                self.scheduling_phase_one(ctl);
                // Newly dispatched zero-transfer tasks may already be startable.
                ctl.schedule_in(self.config.scheduling_interval, GridEvent::SchedulingCycle);
            }
            GridEvent::MetricsSample => {
                self.metrics.sample(ctl.now());
                ctl.schedule_in(self.config.metrics_interval, GridEvent::MetricsSample);
            }
            GridEvent::DataReady { node, epoch, wf, task } => {
                self.on_data_ready(node, epoch, wf, task, ctl);
            }
            GridEvent::TaskCompleted { node, epoch, wf, task } => {
                self.on_task_completed(node, epoch, wf, task, ctl);
            }
        }
    }
}

/// One configured simulation run.
pub struct GridSimulation {
    config: GridConfig,
    algo: AlgorithmConfig,
}

impl GridSimulation {
    /// Create a run for the given grid configuration and scheduler.
    pub fn new(config: GridConfig, algo: AlgorithmConfig) -> Self {
        GridSimulation { config, algo }
    }

    /// Convenience constructor using the algorithm's paper-default phase pairing.
    pub fn with_algorithm(config: GridConfig, algorithm: Algorithm) -> Self {
        GridSimulation::new(config, AlgorithmConfig::paper_default(algorithm))
    }

    /// Run the simulation to its horizon and return the report.
    pub fn run(self) -> SimulationReport {
        let horizon = SimTime::ZERO + self.config.horizon;
        let mut state = GridState::new(self.config, self.algo);
        let mut sim: Simulator<GridEvent> = Simulator::new().with_horizon(horizon);
        sim.schedule_at(SimTime::ZERO, GridEvent::GossipCycle);
        sim.schedule_at(SimTime::ZERO, GridEvent::MetricsSample);
        sim.schedule_at(SimTime::ZERO, GridEvent::SchedulingCycle);
        sim.run(&mut state);
        state.finish(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::SecondPhase;
    use crate::config::{CapacityModel, ChurnConfig};

    fn tiny_config(seed: u64) -> GridConfig {
        let mut cfg = GridConfig::small(12).with_seed(seed);
        cfg.workflows_per_node = 1;
        cfg.workflow.tasks = 2..=6;
        cfg.horizon = SimDuration::from_hours(20);
        cfg
    }

    #[test]
    fn dsmf_run_completes_workflows_and_reports_metrics() {
        let report = GridSimulation::with_algorithm(tiny_config(1), Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 12);
        assert!(report.completed > 0, "no workflow completed within the horizon");
        assert!(report.act_secs() > 0.0);
        assert!(report.average_efficiency() > 0.0);
        assert!(report.avg_rss_size >= 1.0);
        assert!(report.gossip_stats.cycles > 0);
        assert_eq!(report.algorithm, "DSMF");
        // The throughput series is sampled hourly plus the final sample.
        assert!(report.metrics.throughput_series().len() >= 20);
    }

    #[test]
    fn every_algorithm_runs_on_the_same_tiny_grid() {
        for alg in Algorithm::ALL {
            let report = GridSimulation::with_algorithm(tiny_config(2), alg).run();
            assert!(
                report.completed > 0,
                "{alg}: no workflow completed within the horizon"
            );
            assert!(report.completed <= report.submitted);
            assert!(report.average_efficiency() > 0.0, "{alg}: zero efficiency");
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = GridSimulation::with_algorithm(tiny_config(3), Algorithm::Dsmf).run();
        let b = GridSimulation::with_algorithm(tiny_config(3), Algorithm::Dsmf).run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.act_secs(), b.act_secs());
        assert_eq!(a.average_efficiency(), b.average_efficiency());
        let c = GridSimulation::with_algorithm(tiny_config(4), Algorithm::Dsmf).run();
        // A different seed gives a different workload, so at least one headline number differs.
        assert!(
            a.completed != c.completed || a.act_secs() != c.act_secs(),
            "different seeds should produce different runs"
        );
    }

    #[test]
    fn fcfs_ablation_changes_only_the_second_phase() {
        let paper = GridSimulation::new(
            tiny_config(5),
            AlgorithmConfig::paper_default(Algorithm::MinMin),
        )
        .run();
        let fcfs = GridSimulation::new(
            tiny_config(5),
            AlgorithmConfig::with_fcfs_second_phase(Algorithm::MinMin),
        )
        .run();
        assert_eq!(paper.submitted, fcfs.submitted);
        assert_eq!(fcfs.algorithm, "min-min+FCFS");
        assert!(fcfs.completed > 0);
    }

    #[test]
    fn churn_loses_workflows_but_keeps_the_rest_running() {
        let mut cfg = tiny_config(6).with_churn(ChurnConfig::with_dynamic_factor(0.2));
        cfg.nodes = 20;
        cfg.waxman.nodes = 20;
        let report = GridSimulation::with_algorithm(cfg, Algorithm::Dsmf).run();
        // Only stable nodes are home nodes: 50% of 20 = 10 homes, 1 workflow each.
        assert_eq!(report.submitted, 10);
        assert!(report.completed + report.failed <= report.submitted);
        assert!(report.completed > 0, "churn must not wipe out every workflow");
    }

    #[test]
    fn rescheduling_extension_recovers_lost_tasks() {
        let mut churned = ChurnConfig::with_dynamic_factor(0.3);
        churned.reschedule_lost_tasks = true;
        let mut cfg = tiny_config(7).with_churn(churned);
        cfg.nodes = 20;
        cfg.waxman.nodes = 20;
        let report = GridSimulation::with_algorithm(cfg, Algorithm::Dsmf).run();
        assert_eq!(
            report.failed, 0,
            "with rescheduling enabled no workflow should be recorded as failed"
        );
    }

    #[test]
    fn uniform_capacity_single_node_grid_still_finishes() {
        let mut cfg = GridConfig::small(1).with_seed(8);
        cfg.workflows_per_node = 2;
        cfg.capacity = CapacityModel::Uniform(4.0);
        cfg.workflow.tasks = 2..=4;
        cfg.horizon = SimDuration::from_hours(30);
        let report = GridSimulation::with_algorithm(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 2);
        assert!(report.completed > 0);
    }

    #[test]
    fn all_tasks_execute_at_most_once() {
        let mut cfg = tiny_config(9);
        cfg.workflows_per_node = 2;
        let config_clone = cfg.clone();
        let algo = AlgorithmConfig::paper_default(Algorithm::Dsmf);
        let horizon = SimTime::ZERO + config_clone.horizon;
        let mut state = GridState::new(config_clone, algo);
        let mut sim: Simulator<GridEvent> = Simulator::new().with_horizon(horizon);
        sim.schedule_at(SimTime::ZERO, GridEvent::GossipCycle);
        sim.schedule_at(SimTime::ZERO, GridEvent::SchedulingCycle);
        sim.run(&mut state);
        let total_tasks: usize = state.workflows.iter().map(|w| w.workflow.task_count()).sum();
        assert!(state.executed_tasks <= state.dispatched_tasks);
        assert!(state.dispatched_tasks as usize <= total_tasks);
        // Completed workflows really finished every one of their tasks.
        for w in &state.workflows {
            if w.completed {
                assert!(w.progress.is_complete());
                assert!(w.task_location.iter().all(|l| l.is_some()));
            }
        }
        let _ = cfg;
    }

    #[test]
    fn departures_only_fail_workflows_whose_task_was_running() {
        // Under churn, the failure count can never exceed the number of running-task losses:
        // each departure takes down at most one workflow (the one whose task occupied the CPU),
        // while queued tasks are silently re-dispatched.  With one workflow per home node and a
        // modest dynamic factor, some workflows must still survive and complete.
        let mut cfg = tiny_config(11).with_churn(ChurnConfig::with_dynamic_factor(0.2));
        cfg.nodes = 30;
        cfg.waxman.nodes = 30;
        let report = GridSimulation::with_algorithm(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 15);
        assert!(report.completed > 0);
        assert!(report.completed + report.failed <= report.submitted);
    }

    #[test]
    fn churn_sweep_baseline_matches_restricted_home_population() {
        // The df = 0 baseline of the churn experiments uses the same stable home population as
        // the churned points, so throughput numbers are directly comparable.
        // tiny_config builds a 12-node grid with one workflow per home node; restricting the
        // home set to the stable half leaves 6 submissions.
        let cfg = tiny_config(16).with_churn(ChurnConfig::with_dynamic_factor(0.0));
        let report = GridSimulation::with_algorithm(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 6);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn second_phase_rule_is_respected_in_reports_label() {
        let cfg = tiny_config(10);
        let report = GridSimulation::new(
            cfg,
            AlgorithmConfig {
                algorithm: Algorithm::Dsmf,
                second_phase: SecondPhase::Fcfs,
            },
        )
        .run();
        assert_eq!(report.algorithm, "DSMF+FCFS");
    }
}
