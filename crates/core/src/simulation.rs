//! The public facade over the grid engine.
//!
//! [`GridSimulation`] configures and runs one end-to-end P2P-grid simulation.  The actual
//! runtime — per-node state, per-workflow state, the transfer model and the event loop — lives
//! in the [`engine`](crate::engine) module family behind two seams:
//!
//! * the [`Scheduler`] trait, so scheduling policies beyond the paper's built-in eight can be
//!   plugged in through [`GridSimulation::with_scheduler`] without touching the engine, and
//! * the [`ResourceModel`](crate::config::ResourceModel) in [`GridConfig`], which generalises
//!   the paper's single non-preemptive CPU per node to N execution slots.
//!
//! The constructors taking an [`Algorithm`] / [`AlgorithmConfig`] — the paper's eight
//! algorithms with their phase pairings — are unchanged from the pre-split API.

use crate::algorithm::{Algorithm, AlgorithmConfig};
use crate::config::GridConfig;
use crate::engine::EngineState;
use crate::report::SimulationReport;
use crate::scheduler::Scheduler;

/// One configured simulation run.
pub struct GridSimulation {
    config: GridConfig,
    scheduler: Box<dyn Scheduler>,
}

impl GridSimulation {
    /// Create a run for the given grid configuration and algorithm pairing.
    pub fn new(config: GridConfig, algo: AlgorithmConfig) -> Self {
        GridSimulation::with_scheduler(config, Box::new(algo))
    }

    /// Convenience constructor using the algorithm's paper-default phase pairing.
    pub fn with_algorithm(config: GridConfig, algorithm: Algorithm) -> Self {
        GridSimulation::new(config, AlgorithmConfig::paper_default(algorithm))
    }

    /// Create a run driven by any [`Scheduler`] implementation — the seam for scheduling
    /// policies beyond the paper's built-in eight.
    pub fn with_scheduler(config: GridConfig, scheduler: Box<dyn Scheduler>) -> Self {
        GridSimulation { config, scheduler }
    }

    /// Run the simulation to its horizon and return the report.
    pub fn run(self) -> SimulationReport {
        EngineState::run_to_horizon(self.config, self.scheduler)
    }
}
