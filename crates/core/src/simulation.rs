//! Simulation sessions: stepable runs over a shared [`Scenario`].
//!
//! A [`Simulation`] is one in-flight run of a scheduler on a pre-built world.  Unlike the
//! legacy consume-on-run [`GridSimulation`] facade it can be driven incrementally —
//! [`Simulation::step`] executes one conservative time window of the sharded engine,
//! [`Simulation::run_until`] advances to a virtual instant, [`Simulation::run`] drives to the
//! horizon — and it carries the observer seam: any number of [`Observer`]s registered via
//! [`Simulation::observe`] receive every externally meaningful engine event as it happens.
//!
//! ```
//! use p2pgrid_core::scenario::Scenario;
//! use p2pgrid_core::{Algorithm, GridConfig};
//! use p2pgrid_sim::{SimDuration, SimTime};
//!
//! let scenario = Scenario::build(GridConfig::small(12).with_seed(1)).unwrap();
//! let mut session = scenario.simulate_algorithm(Algorithm::Dsmf);
//! session.run_until(SimTime::ZERO + SimDuration::from_hours(2)); // peek mid-run...
//! println!("backlog after 2 h: {} tasks", session.sample().ready_tasks);
//! let report = session.run();                                    // ...then drive to the end
//! assert_eq!(report.submitted, 24);
//! ```
//!
//! Observers never perturb the engine: a fully-stepped session — with or without observers —
//! produces a report byte-identical to the legacy one-shot run at the same seed.

use crate::algorithm::{Algorithm, AlgorithmConfig};
use crate::config::GridConfig;
use crate::engine::{EngineSession, ShardStats};
use crate::observer::{GridSample, Observer};
use crate::report::SimulationReport;
use crate::scenario::Scenario;
use crate::scheduler::Scheduler;
use p2pgrid_sim::SimTime;

/// One in-flight simulation run: step it, observe it, or drive it to the horizon.
///
/// Created by [`Scenario::simulate`] (or its algorithm conveniences); see the
/// [module docs](self) for the lifecycle.  `'obs` is the lifetime of the registered
/// observers — a session without observers is `Simulation<'static>`.
pub struct Simulation<'obs> {
    session: EngineSession,
    observers: Vec<&'obs mut dyn Observer>,
    started: bool,
}

impl<'obs> Simulation<'obs> {
    pub(crate) fn start(scenario: &Scenario, scheduler: Box<dyn Scheduler>) -> Self {
        Simulation {
            session: EngineSession::new(scenario, scheduler),
            observers: Vec::new(),
            started: false,
        }
    }

    /// Register an observer.  Must happen before the first step — observers registered later
    /// would silently miss events, so that is rejected with a panic.
    ///
    /// The observer is borrowed (`&mut`), not owned: its recorded data stays with the caller
    /// and remains available after [`Simulation::run`] consumes the session.
    #[must_use = "observe returns the session; chain it or rebind it"]
    pub fn observe(mut self, observer: &'obs mut dyn Observer) -> Self {
        assert!(
            !self.started,
            "observers must be registered before the first step"
        );
        self.observers.push(observer);
        self
    }

    /// Announce the time-zero submissions exactly once, before the first delivered event.
    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            self.session.announce_submissions(&mut self.observers);
        }
    }

    /// Execute exactly one conservative time window (all events within one engine
    /// [`lookahead`](Scenario::lookahead), across every shard) and return the window's end,
    /// or `None` when the run is over (event queues drained, or every remaining event lies
    /// beyond the horizon).
    pub fn step(&mut self) -> Option<SimTime> {
        self.ensure_started();
        self.session.step(&mut self.observers)
    }

    /// Execute every window *starting* at or before `until` and return how many windows ran.
    /// Because steps are window-granular, the session may stop up to one lookahead past
    /// `until`; events exactly at `until` are always included, matching the horizon's
    /// inclusive semantics.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        self.ensure_started();
        let mut delivered = 0;
        while self.session.peek_time().is_some_and(|t| t <= until) {
            if self.session.step(&mut self.observers).is_none() {
                break;
            }
            delivered += 1;
        }
        delivered
    }

    /// Drive the run to its horizon and return the report (the one-shot path, byte-identical
    /// to the legacy facade at the same seed).
    pub fn run(mut self) -> SimulationReport {
        self.ensure_started();
        while self.session.step(&mut self.observers).is_some() {}
        self.finish()
    }

    /// Close the session where it stands and return the report.  A session that already ran
    /// out of events reports at the horizon (exactly like [`Simulation::run`]); a session cut
    /// short reports at its current virtual time.
    pub fn finish(mut self) -> SimulationReport {
        self.ensure_started();
        self.session.finish(&mut self.observers)
    }

    /// Current virtual time: the end of the last executed window.
    pub fn now(&self) -> SimTime {
        self.session.now()
    }

    /// Start instant of the window the next [`Simulation::step`] would execute, or `None`
    /// when the run is over.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.session.peek_time()
    }

    /// The run's horizon (virtual end time).
    pub fn horizon(&self) -> SimTime {
        self.session.horizon()
    }

    /// A live aggregate snapshot of the grid — the same [`GridSample`] the metrics-cadence
    /// observer hook receives, computable at any point of a stepped run.
    pub fn sample(&self) -> GridSample {
        self.session.grid_sample()
    }

    /// Label of the scheduler driving this session (e.g. `"DSMF"`).
    pub fn algorithm(&self) -> String {
        self.session.label()
    }

    /// Number of shards this session's event loop runs on (the resolved
    /// [`ShardSpec`](crate::config::ShardSpec)).
    pub fn shard_count(&self) -> usize {
        self.session.shard_stats().shards
    }

    /// Live counters of the sharded event loop: windows executed so far, window widths,
    /// per-shard event totals and cross-shard traffic.  Purely diagnostic — reports are
    /// byte-identical for every shard count.
    pub fn shard_stats(&self) -> ShardStats {
        self.session.shard_stats()
    }
}

/// The legacy one-shot facade: configure and run one simulation, consuming the builder.
///
/// Every run rebuilds the full world from scratch — topology, all-pairs bandwidths, sampled
/// capacities and workflows — even when a sweep runs many schedulers on the same
/// configuration.  Build a [`Scenario`] once and create sessions with
/// [`Scenario::simulate`] / [`Scenario::simulate_algorithm`] instead; this shim remains only
/// so existing call sites keep compiling, and panics (like the old facade) on configurations
/// that [`Scenario::build`] rejects with a typed error.
#[deprecated(
    since = "0.2.0",
    note = "build a `Scenario` once and start sessions with `Scenario::simulate*`"
)]
pub struct GridSimulation {
    config: GridConfig,
    scheduler: Box<dyn Scheduler>,
}

#[allow(deprecated)]
impl GridSimulation {
    /// Create a run for the given grid configuration and algorithm pairing.
    pub fn new(config: GridConfig, algo: AlgorithmConfig) -> Self {
        GridSimulation::with_scheduler(config, Box::new(algo))
    }

    /// Convenience constructor using the algorithm's paper-default phase pairing.
    pub fn with_algorithm(config: GridConfig, algorithm: Algorithm) -> Self {
        GridSimulation::new(config, AlgorithmConfig::paper_default(algorithm))
    }

    /// Create a run driven by any [`Scheduler`] implementation.
    pub fn with_scheduler(config: GridConfig, scheduler: Box<dyn Scheduler>) -> Self {
        GridSimulation { config, scheduler }
    }

    /// Run the simulation to its horizon and return the report.
    pub fn run(self) -> SimulationReport {
        let scenario = Scenario::build(self.config)
            .unwrap_or_else(|e| panic!("invalid grid configuration: {e}"));
        scenario.simulate(self.scheduler).run()
    }
}
