//! # p2pgrid-core — dual-phase just-in-time workflow scheduling
//!
//! This crate is the reproduction of the paper's contribution: the **DSMF** (dynamic shortest
//! makespan first) dual-phase just-in-time scheduler for P2P grid systems, its seven comparison
//! algorithms, and the end-to-end grid simulation that evaluates them on top of the substrate
//! crates (`p2pgrid-sim`, `p2pgrid-topology`, `p2pgrid-workflow`, `p2pgrid-gossip`,
//! `p2pgrid-metrics`).
//!
//! ## The three-layer API
//!
//! The top-level API separates *what the world is* from *one run over it* from *watching that
//! run*:
//!
//! 1. **[`Scenario`]** — the immutable, reusable world: topology + all-pairs bandwidths,
//!    landmark estimates, sampled node capacities / slots / churn roles, and the generated
//!    workflows, all pre-sampled deterministically from the seed by [`Scenario::build`]
//!    (which returns a typed [`ConfigError`] for malformed configurations instead of
//!    panicking).  `Scenario` is an `Arc` handle: `Clone` is pointer-sized and the type is
//!    `Send + Sync`, so one world fans out across a whole algorithm sweep.
//! 2. **[`Simulation`]** — one session over that world, created by [`Scenario::simulate`]
//!    (or [`Scenario::simulate_algorithm`]): step it event by event ([`Simulation::step`]),
//!    advance it to an instant ([`Simulation::run_until`]), or drive it to the horizon
//!    ([`Simulation::run`]).
//! 3. **[`Observer`]** — the seam for tapping the run: task dispatch / start / finish /
//!    displacement, workflow submit / complete / fail, node join / leave, gossip cycles and
//!    the periodic [`GridSample`].  [`TimeSeriesProbe`] and [`TraceRecorder`] are built in.
//!
//! ```
//! use p2pgrid_core::observer::TimeSeriesProbe;
//! use p2pgrid_core::scenario::Scenario;
//! use p2pgrid_core::{Algorithm, GridConfig};
//!
//! // Build the world once...
//! let scenario = Scenario::build(GridConfig::small(16).with_seed(42)).unwrap();
//! // ...run two schedulers on it, observing one of the runs.
//! let mut probe = TimeSeriesProbe::new();
//! let dsmf = scenario
//!     .simulate_algorithm(Algorithm::Dsmf)
//!     .observe(&mut probe)
//!     .run();
//! let heft = scenario.simulate_algorithm(Algorithm::Heft).run();
//! assert_eq!(dsmf.submitted, heft.submitted);
//! assert!(!probe.samples().is_empty());
//! ```
//!
//! The pre-split [`GridSimulation`] facade remains as a deprecated shim; it rebuilds the world
//! on every run.
//!
//! ## The dual-phase model
//!
//! Every task crosses two scheduling phases before it runs:
//!
//! 1. **First phase — at the home (scheduler) node.**  Every scheduling cycle, the home node
//!    recomputes the *rest path makespan* (RPM, Eq. 7) of every schedule-point task of every
//!    locally submitted workflow, derives each workflow's remaining makespan (Eq. 8), orders
//!    workflows/tasks according to the configured heuristic and dispatches each task to the
//!    resource node with the earliest estimated finish time (Formula 9) among the `O(log n)`
//!    candidates in its gossip-aggregated resource state set.
//! 2. **Second phase — at the resource node.**  Whenever an execution slot frees up, the
//!    resource node picks the next data-complete task from its ready set according to the
//!    configured ready-set rule (Formula 10 for DSMF).
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`algorithm`] | the eight algorithms, their paper-default phase pairings, and the FCFS ablation |
//! | [`estimate`]  | the finish-time model of Eq. 4–7 evaluated against (possibly stale) gossip state |
//! | [`policy`]    | first-phase dispatch planning and second-phase ready-set selection |
//! | [`fullahead`] | the centralized full-ahead planner used by the HEFT and SMF baselines |
//! | [`scheduler`] | the pluggable [`Scheduler`] seam unifying both phases (implemented by [`AlgorithmConfig`]) |
//! | [`config`]    | experiment configuration (Table I defaults, [`config::ResourceModel`] slots, [`config::FaultModel`] faults, [`config::RecoveryPolicy`] recovery, load factor, CCR) |
//! | [`error`]     | the typed [`ConfigError`] returned by validation and [`Scenario::build`] |
//! | [`scenario`]  | the reusable pre-sampled world ([`Scenario`]) |
//! | [`engine`]    | the sharded grid engine: per-node / per-workflow runtime, transfer model, conservative time-window event loop |
//! | [`simulation`]| [`Simulation`] sessions and the deprecated [`GridSimulation`] shim |
//! | [`observer`]  | the [`Observer`] seam, [`TimeSeriesProbe`] and [`TraceRecorder`] |
//! | [`worked_example`] | the two-workflow scenario of Fig. 3 used by tests and `repro --fig 3` |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm;
pub mod config;
pub mod engine;
pub mod error;
pub mod estimate;
pub mod fullahead;
pub mod observer;
pub mod policy;
pub mod report;
pub mod scenario;
pub mod scheduler;
pub mod simulation;
pub mod worked_example;

pub use algorithm::{Algorithm, AlgorithmConfig, SecondPhase};
pub use config::{
    ArrivalProcess, CapacityModel, ChurnConfig, CorrelatedOutage, FaultModel, GridConfig,
    PreemptionPolicy, RecoveryPolicy, ResourceModel, ShardSpec, SlotClass, SlotModel,
    StochasticFaults, StreamKind, StreamSeeds, WorkloadSource,
};
pub use engine::ShardStats;
pub use error::ConfigError;
pub use estimate::{CandidateNode, FinishTimeEstimator, PredecessorData};
pub use observer::{GridSample, Observer, TimeSeriesProbe, TraceEvent, TraceRecorder};
pub use report::SimulationReport;
pub use scenario::Scenario;
pub use scheduler::Scheduler;
#[allow(deprecated)]
pub use simulation::GridSimulation;
pub use simulation::Simulation;

/// Identifier of a peer node (shared dense index with `p2pgrid-topology` and `p2pgrid-gossip`).
pub type NodeId = usize;
