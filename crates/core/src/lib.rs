//! # p2pgrid-core — dual-phase just-in-time workflow scheduling
//!
//! This crate is the reproduction of the paper's contribution: the **DSMF** (dynamic shortest
//! makespan first) dual-phase just-in-time scheduler for P2P grid systems, its seven comparison
//! algorithms, and the end-to-end grid simulation that evaluates them on top of the substrate
//! crates (`p2pgrid-sim`, `p2pgrid-topology`, `p2pgrid-workflow`, `p2pgrid-gossip`,
//! `p2pgrid-metrics`).
//!
//! ## The dual-phase model
//!
//! Every task crosses two scheduling phases before it runs:
//!
//! 1. **First phase — at the home (scheduler) node.**  Every scheduling cycle, the home node
//!    recomputes the *rest path makespan* (RPM, Eq. 7) of every schedule-point task of every
//!    locally submitted workflow, derives each workflow's remaining makespan (Eq. 8), orders
//!    workflows/tasks according to the configured heuristic and dispatches each task to the
//!    resource node with the earliest estimated finish time (Formula 9) among the `O(log n)`
//!    candidates in its gossip-aggregated resource state set.
//! 2. **Second phase — at the resource node.**  Whenever the (single, non-preemptive) CPU frees
//!    up, the resource node picks the next data-complete task from its ready set according to
//!    the configured ready-set rule (Formula 10 for DSMF).
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`algorithm`] | the eight algorithms, their paper-default phase pairings, and the FCFS ablation |
//! | [`estimate`]  | the finish-time model of Eq. 4–7 evaluated against (possibly stale) gossip state |
//! | [`policy`]    | first-phase dispatch planning and second-phase ready-set selection |
//! | [`fullahead`] | the centralized full-ahead planner used by the HEFT and SMF baselines |
//! | [`scheduler`] | the pluggable [`Scheduler`] seam unifying both phases (implemented by [`AlgorithmConfig`]) |
//! | [`config`]    | experiment configuration (Table I defaults, [`config::ResourceModel`] slots, churn, load factor, CCR) |
//! | [`engine`]    | the grid engine: per-node / per-workflow runtime, transfer model, event loop |
//! | [`simulation`]| the thin [`GridSimulation`] facade over the engine |
//! | [`worked_example`] | the two-workflow scenario of Fig. 3 used by tests and `examples/paper_example.rs` |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm;
pub mod config;
pub mod engine;
pub mod estimate;
pub mod fullahead;
pub mod policy;
pub mod report;
pub mod scheduler;
pub mod simulation;
pub mod worked_example;

pub use algorithm::{Algorithm, AlgorithmConfig, SecondPhase};
pub use config::{
    CapacityModel, ChurnConfig, GridConfig, PreemptionPolicy, ResourceModel, SlotClass, SlotModel,
};
pub use estimate::{CandidateNode, FinishTimeEstimator, PredecessorData};
pub use report::SimulationReport;
pub use scheduler::Scheduler;
pub use simulation::GridSimulation;

/// Identifier of a peer node (shared dense index with `p2pgrid-topology` and `p2pgrid-gossip`).
pub type NodeId = usize;
