//! Second-phase (resource-node) ready-set selection — Algorithm 2 and its competitor rules.

use crate::algorithm::SecondPhase;
use std::cmp::Ordering;

/// The attributes of one ready task that the second-phase rules consult.
///
/// All of them were captured when the task was dispatched (the paper migrates the task
/// "together with its rest path makespan and its workflow's makespan").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadyTaskView {
    /// Remaining makespan of the task's workflow at dispatch time, seconds.
    pub workflow_ms_secs: f64,
    /// Rest path makespan of the task at dispatch time, seconds.
    pub rpm_secs: f64,
    /// Execution time of the task on *this* node, seconds.
    pub exec_secs: f64,
    /// Sufferage value captured at dispatch time, seconds.
    pub sufferage_secs: f64,
    /// Monotonic arrival sequence number at this node (for FCFS and deterministic ties).
    pub enqueued_seq: u64,
}

/// The priority key a second-phase rule assigns to one ready task.
///
/// Every built-in rule is a *static* ordering over values captured at dispatch time, so it can
/// be expressed as a two-component lexicographic key: the task with the **smallest** key runs
/// first, with the arrival sequence number as the final tie-break.  This is what lets the
/// engine keep each node's data-ready tasks in a priority heap (`engine::node::ReadySet`)
/// instead of re-scanning and re-ranking the whole ready set on every CPU-idle event.
///
/// Under the time-sliced preemptive substrate the same key also arbitrates *displacement*: a
/// newly ready task preempts the lowest-priority running task iff its key is *strictly*
/// smaller — the arrival sequence number plays no part, so equal keys never preempt and FCFS
/// (whose key is constant) degenerates to the non-preemptive behaviour by construction.  A
/// preempted task re-enters the ready heap with its remaining load and a key recomputed from
/// its updated attributes, so rules keyed on execution time rank it by *remaining* time
/// (shortest-remaining-time semantics) while the ms/rpm-based rules reproduce the original
/// key unchanged.
#[derive(Debug, Clone, Copy)]
pub struct ReadyKey {
    k0: f64,
    k1: f64,
}

impl PartialEq for ReadyKey {
    fn eq(&self, other: &Self) -> bool {
        // Defined via the total order so equality always agrees with `Ord` (IEEE `==` would
        // disagree on NaN components, which can arise from infinite finish-time estimates).
        self.cmp(other) == Ordering::Equal
    }
}

impl ReadyKey {
    /// Build a key from its lexicographic components (smaller runs first).
    ///
    /// Negative zero is normalised to positive zero so that keys derived through negation
    /// (e.g. "longest RPM first" = `-rpm`) compare exactly like the underlying values.
    pub fn new(k0: f64, k1: f64) -> Self {
        let norm = |v: f64| if v == 0.0 { 0.0 } else { v };
        ReadyKey {
            k0: norm(k0),
            k1: norm(k1),
        }
    }
}

impl Eq for ReadyKey {}

impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.k0
            .total_cmp(&other.k0)
            .then(self.k1.total_cmp(&other.k1))
    }
}

impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The priority key `rule` assigns to `task` (smallest key runs first).
pub fn ready_key(rule: SecondPhase, task: &ReadyTaskView) -> ReadyKey {
    match rule {
        // Formula 10 with Algorithm 2's tie-break: shortest workflow makespan first, then
        // longest RPM.
        SecondPhase::ShortestWorkflowMakespan => {
            ReadyKey::new(task.workflow_ms_secs, -task.rpm_secs)
        }
        SecondPhase::LongestRpmFirst => ReadyKey::new(-task.rpm_secs, 0.0),
        SecondPhase::ShortestDeadlineFirst => {
            ReadyKey::new(task.workflow_ms_secs - task.rpm_secs, 0.0)
        }
        SecondPhase::ShortestTaskFirst => ReadyKey::new(task.exec_secs, 0.0),
        SecondPhase::LongestTaskFirst => ReadyKey::new(-task.exec_secs, 0.0),
        SecondPhase::LargestSufferageFirst => ReadyKey::new(-task.sufferage_secs, 0.0),
        SecondPhase::Fcfs => ReadyKey::new(0.0, 0.0),
    }
}

/// Select the index of the task to execute next from `tasks` (the data-complete subset of a
/// resource node's ready set) according to `rule`.  Returns `None` when the slice is empty.
///
/// This is the naive linear-scan formulation (every call ranks the whole slice); the engine's
/// hot path keeps a [`ReadyKey`]-ordered heap instead, and the `micro_substrates` bench
/// compares the two.
pub fn select_next(rule: SecondPhase, tasks: &[ReadyTaskView]) -> Option<usize> {
    if tasks.is_empty() {
        return None;
    }
    let cmp = |a: &ReadyTaskView, b: &ReadyTaskView| -> Ordering {
        ready_key(rule, a)
            .cmp(&ready_key(rule, b))
            .then(a.enqueued_seq.cmp(&b.enqueued_seq))
    };
    let mut best = 0usize;
    for i in 1..tasks.len() {
        if cmp(&tasks[i], &tasks[best]) == Ordering::Less {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(ms: f64, rpm: f64, exec: f64, suff: f64, seq: u64) -> ReadyTaskView {
        ReadyTaskView {
            workflow_ms_secs: ms,
            rpm_secs: rpm,
            exec_secs: exec,
            sufferage_secs: suff,
            enqueued_seq: seq,
        }
    }

    #[test]
    fn empty_ready_set_selects_nothing() {
        assert_eq!(select_next(SecondPhase::Fcfs, &[]), None);
    }

    #[test]
    fn dsmf_rule_prefers_shortest_workflow_makespan() {
        let tasks = [
            task(300.0, 120.0, 10.0, 0.0, 0),
            task(100.0, 50.0, 10.0, 0.0, 1),
            task(200.0, 80.0, 10.0, 0.0, 2),
        ];
        assert_eq!(
            select_next(SecondPhase::ShortestWorkflowMakespan, &tasks),
            Some(1)
        );
    }

    #[test]
    fn dsmf_rule_breaks_ties_by_longest_rpm() {
        // Two tasks from workflows with equal remaining makespans: Algorithm 2 line 4 picks the
        // longer RPM.
        let tasks = [
            task(100.0, 30.0, 10.0, 0.0, 0),
            task(100.0, 90.0, 10.0, 0.0, 1),
        ];
        assert_eq!(
            select_next(SecondPhase::ShortestWorkflowMakespan, &tasks),
            Some(1)
        );
    }

    #[test]
    fn longest_rpm_and_deadline_rules() {
        let tasks = [
            task(200.0, 150.0, 10.0, 0.0, 0), // slack 50
            task(200.0, 195.0, 10.0, 0.0, 1), // slack 5
            task(500.0, 180.0, 10.0, 0.0, 2), // slack 320
        ];
        assert_eq!(select_next(SecondPhase::LongestRpmFirst, &tasks), Some(1));
        assert_eq!(
            select_next(SecondPhase::ShortestDeadlineFirst, &tasks),
            Some(1)
        );
    }

    #[test]
    fn task_length_rules() {
        let tasks = [
            task(0.0, 0.0, 40.0, 0.0, 0),
            task(0.0, 0.0, 5.0, 0.0, 1),
            task(0.0, 0.0, 90.0, 0.0, 2),
        ];
        assert_eq!(select_next(SecondPhase::ShortestTaskFirst, &tasks), Some(1));
        assert_eq!(select_next(SecondPhase::LongestTaskFirst, &tasks), Some(2));
    }

    #[test]
    fn sufferage_rule_uses_captured_value() {
        let tasks = [task(0.0, 0.0, 10.0, 3.0, 0), task(0.0, 0.0, 10.0, 42.0, 1)];
        assert_eq!(
            select_next(SecondPhase::LargestSufferageFirst, &tasks),
            Some(1)
        );
    }

    #[test]
    fn fcfs_takes_arrival_order_and_breaks_all_other_ties() {
        let tasks = [
            task(1.0, 1.0, 1.0, 1.0, 7),
            task(999.0, 0.0, 999.0, 0.0, 2),
            task(500.0, 3.0, 5.0, 9.0, 5),
        ];
        assert_eq!(select_next(SecondPhase::Fcfs, &tasks), Some(1));
        // Identical tasks: every rule falls back to arrival order.
        let same = [task(9.0, 9.0, 9.0, 9.0, 4), task(9.0, 9.0, 9.0, 9.0, 1)];
        for rule in [
            SecondPhase::ShortestWorkflowMakespan,
            SecondPhase::LongestRpmFirst,
            SecondPhase::ShortestDeadlineFirst,
            SecondPhase::ShortestTaskFirst,
            SecondPhase::LongestTaskFirst,
            SecondPhase::LargestSufferageFirst,
            SecondPhase::Fcfs,
        ] {
            assert_eq!(select_next(rule, &same), Some(1), "rule {rule}");
        }
    }

    #[test]
    fn ready_key_ordering_agrees_with_the_linear_scan_for_every_rule() {
        // The engine's heap executes tasks in ascending (ReadyKey, seq) order; that must pick
        // exactly what the reference linear scan picks, for every rule and any ready set.
        let mut tasks = Vec::new();
        for i in 0u64..24 {
            let f = i as f64;
            tasks.push(task(
                (f * 37.0) % 11.0,
                (f * 13.0) % 7.0,
                (f * 5.0) % 9.0,
                (f * 3.0) % 4.0,
                (i * 31) % 24, // distinct seqs in scrambled order
            ));
        }
        for rule in [
            SecondPhase::ShortestWorkflowMakespan,
            SecondPhase::LongestRpmFirst,
            SecondPhase::ShortestDeadlineFirst,
            SecondPhase::ShortestTaskFirst,
            SecondPhase::LongestTaskFirst,
            SecondPhase::LargestSufferageFirst,
            SecondPhase::Fcfs,
        ] {
            let scan = select_next(rule, &tasks).unwrap();
            let heap_order = tasks
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    ready_key(rule, a)
                        .cmp(&ready_key(rule, b))
                        .then(a.enqueued_seq.cmp(&b.enqueued_seq))
                })
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(scan, heap_order, "rule {rule}");
        }
    }

    #[test]
    fn ready_key_normalises_negative_zero() {
        let a = ReadyKey::new(-0.0, -0.0);
        let b = ReadyKey::new(0.0, 0.0);
        assert_eq!(a.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn single_task_is_always_selected() {
        let tasks = [task(1.0, 2.0, 3.0, 4.0, 0)];
        for rule in [
            SecondPhase::ShortestWorkflowMakespan,
            SecondPhase::Fcfs,
            SecondPhase::LongestTaskFirst,
        ] {
            assert_eq!(select_next(rule, &tasks), Some(0));
        }
    }
}
