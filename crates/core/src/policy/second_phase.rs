//! Second-phase (resource-node) ready-set selection — Algorithm 2 and its competitor rules.

use crate::algorithm::SecondPhase;
use std::cmp::Ordering;

/// The attributes of one ready task that the second-phase rules consult.
///
/// All of them were captured when the task was dispatched (the paper migrates the task
/// "together with its rest path makespan and its workflow's makespan").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadyTaskView {
    /// Remaining makespan of the task's workflow at dispatch time, seconds.
    pub workflow_ms_secs: f64,
    /// Rest path makespan of the task at dispatch time, seconds.
    pub rpm_secs: f64,
    /// Execution time of the task on *this* node, seconds.
    pub exec_secs: f64,
    /// Sufferage value captured at dispatch time, seconds.
    pub sufferage_secs: f64,
    /// Monotonic arrival sequence number at this node (for FCFS and deterministic ties).
    pub enqueued_seq: u64,
}

/// Select the index of the task to execute next from `tasks` (the data-complete subset of a
/// resource node's ready set) according to `rule`.  Returns `None` when the slice is empty.
pub fn select_next(rule: SecondPhase, tasks: &[ReadyTaskView]) -> Option<usize> {
    if tasks.is_empty() {
        return None;
    }
    let cmp = |a: &ReadyTaskView, b: &ReadyTaskView| -> Ordering {
        let primary = match rule {
            // Formula 10 with Algorithm 2's tie-break: shortest workflow makespan first, then
            // longest RPM.
            SecondPhase::ShortestWorkflowMakespan => a
                .workflow_ms_secs
                .partial_cmp(&b.workflow_ms_secs)
                .unwrap_or(Ordering::Equal)
                .then(
                    b.rpm_secs
                        .partial_cmp(&a.rpm_secs)
                        .unwrap_or(Ordering::Equal),
                ),
            SecondPhase::LongestRpmFirst => b
                .rpm_secs
                .partial_cmp(&a.rpm_secs)
                .unwrap_or(Ordering::Equal),
            SecondPhase::ShortestDeadlineFirst => {
                let slack_a = a.workflow_ms_secs - a.rpm_secs;
                let slack_b = b.workflow_ms_secs - b.rpm_secs;
                slack_a.partial_cmp(&slack_b).unwrap_or(Ordering::Equal)
            }
            SecondPhase::ShortestTaskFirst => a
                .exec_secs
                .partial_cmp(&b.exec_secs)
                .unwrap_or(Ordering::Equal),
            SecondPhase::LongestTaskFirst => b
                .exec_secs
                .partial_cmp(&a.exec_secs)
                .unwrap_or(Ordering::Equal),
            SecondPhase::LargestSufferageFirst => b
                .sufferage_secs
                .partial_cmp(&a.sufferage_secs)
                .unwrap_or(Ordering::Equal),
            SecondPhase::Fcfs => Ordering::Equal,
        };
        primary.then(a.enqueued_seq.cmp(&b.enqueued_seq))
    };
    let mut best = 0usize;
    for i in 1..tasks.len() {
        if cmp(&tasks[i], &tasks[best]) == Ordering::Less {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(ms: f64, rpm: f64, exec: f64, suff: f64, seq: u64) -> ReadyTaskView {
        ReadyTaskView {
            workflow_ms_secs: ms,
            rpm_secs: rpm,
            exec_secs: exec,
            sufferage_secs: suff,
            enqueued_seq: seq,
        }
    }

    #[test]
    fn empty_ready_set_selects_nothing() {
        assert_eq!(select_next(SecondPhase::Fcfs, &[]), None);
    }

    #[test]
    fn dsmf_rule_prefers_shortest_workflow_makespan() {
        let tasks = [
            task(300.0, 120.0, 10.0, 0.0, 0),
            task(100.0, 50.0, 10.0, 0.0, 1),
            task(200.0, 80.0, 10.0, 0.0, 2),
        ];
        assert_eq!(select_next(SecondPhase::ShortestWorkflowMakespan, &tasks), Some(1));
    }

    #[test]
    fn dsmf_rule_breaks_ties_by_longest_rpm() {
        // Two tasks from workflows with equal remaining makespans: Algorithm 2 line 4 picks the
        // longer RPM.
        let tasks = [
            task(100.0, 30.0, 10.0, 0.0, 0),
            task(100.0, 90.0, 10.0, 0.0, 1),
        ];
        assert_eq!(select_next(SecondPhase::ShortestWorkflowMakespan, &tasks), Some(1));
    }

    #[test]
    fn longest_rpm_and_deadline_rules() {
        let tasks = [
            task(200.0, 150.0, 10.0, 0.0, 0), // slack 50
            task(200.0, 195.0, 10.0, 0.0, 1), // slack 5
            task(500.0, 180.0, 10.0, 0.0, 2), // slack 320
        ];
        assert_eq!(select_next(SecondPhase::LongestRpmFirst, &tasks), Some(1));
        assert_eq!(select_next(SecondPhase::ShortestDeadlineFirst, &tasks), Some(1));
    }

    #[test]
    fn task_length_rules() {
        let tasks = [
            task(0.0, 0.0, 40.0, 0.0, 0),
            task(0.0, 0.0, 5.0, 0.0, 1),
            task(0.0, 0.0, 90.0, 0.0, 2),
        ];
        assert_eq!(select_next(SecondPhase::ShortestTaskFirst, &tasks), Some(1));
        assert_eq!(select_next(SecondPhase::LongestTaskFirst, &tasks), Some(2));
    }

    #[test]
    fn sufferage_rule_uses_captured_value() {
        let tasks = [
            task(0.0, 0.0, 10.0, 3.0, 0),
            task(0.0, 0.0, 10.0, 42.0, 1),
        ];
        assert_eq!(select_next(SecondPhase::LargestSufferageFirst, &tasks), Some(1));
    }

    #[test]
    fn fcfs_takes_arrival_order_and_breaks_all_other_ties() {
        let tasks = [
            task(1.0, 1.0, 1.0, 1.0, 7),
            task(999.0, 0.0, 999.0, 0.0, 2),
            task(500.0, 3.0, 5.0, 9.0, 5),
        ];
        assert_eq!(select_next(SecondPhase::Fcfs, &tasks), Some(1));
        // Identical tasks: every rule falls back to arrival order.
        let same = [task(9.0, 9.0, 9.0, 9.0, 4), task(9.0, 9.0, 9.0, 9.0, 1)];
        for rule in [
            SecondPhase::ShortestWorkflowMakespan,
            SecondPhase::LongestRpmFirst,
            SecondPhase::ShortestDeadlineFirst,
            SecondPhase::ShortestTaskFirst,
            SecondPhase::LongestTaskFirst,
            SecondPhase::LargestSufferageFirst,
            SecondPhase::Fcfs,
        ] {
            assert_eq!(select_next(rule, &same), Some(1), "rule {rule}");
        }
    }

    #[test]
    fn single_task_is_always_selected() {
        let tasks = [task(1.0, 2.0, 3.0, 4.0, 0)];
        for rule in [
            SecondPhase::ShortestWorkflowMakespan,
            SecondPhase::Fcfs,
            SecondPhase::LongestTaskFirst,
        ] {
            assert_eq!(select_next(rule, &tasks), Some(0));
        }
    }
}
