//! First-phase (home-node) dispatch planning — Algorithm 1 and its competitor heuristics.

use crate::algorithm::Algorithm;
use crate::estimate::{CandidateNode, FinishTimeEstimator, PredecessorData};
use crate::NodeId;
use p2pgrid_workflow::TaskId;
use std::cmp::Ordering;

/// One schedule-point task as presented to the first-phase planner.
#[derive(Debug, Clone)]
pub struct DispatchCandidateTask {
    /// Home-node-local workflow index this task belongs to.
    pub workflow: usize,
    /// Task id within its workflow.
    pub task: TaskId,
    /// Computational load in MI.
    pub load_mi: f64,
    /// Program image size in Mb.
    pub image_size_mb: f64,
    /// Rest path makespan RPM of this task under the current average-cost estimates, seconds.
    pub rpm_secs: f64,
    /// Remaining makespan `ms(f)` of its workflow (Eq. 8), seconds.
    pub workflow_ms_secs: f64,
    /// Finished precedents: where their data lives and how much must be moved.
    pub predecessors: Vec<PredecessorData>,
}

/// A dispatch decision produced by the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchDecision {
    /// Home-node-local workflow index.
    pub workflow: usize,
    /// Task id within that workflow.
    pub task: TaskId,
    /// Chosen resource node.
    pub target: NodeId,
    /// Estimated finish time (seconds from the scheduling instant) on the chosen node.
    pub estimated_finish_secs: f64,
    /// Sufferage value (second-best minus best completion time) at decision time; zero for
    /// heuristics that do not use it.
    pub sufferage_secs: f64,
}

/// The three classical matrix heuristics used as decentralized first-phase competitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixHeuristic {
    /// Earliest-completion-time task first.
    MinMin,
    /// The task whose best completion time is largest goes first.
    MaxMin,
    /// The task that would "suffer" most from losing its best node goes first.
    Sufferage,
}

/// Pick the next `(task, node, sufferage)` from a completion-time matrix restricted to the
/// still-unassigned `remaining` task rows.
///
/// `ct[t][h]` is the estimated completion time of task `t` on candidate `h`.  Ties break toward
/// the lower task index and lower candidate index so decisions are deterministic.  Returns
/// `None` if `remaining` is empty or the matrix has no candidates.
pub fn matrix_pick_next(
    heuristic: MatrixHeuristic,
    ct: &[Vec<f64>],
    remaining: &[usize],
) -> Option<(usize, usize, f64)> {
    if remaining.is_empty() || ct.is_empty() || ct[0].is_empty() {
        return None;
    }
    // For every remaining task: its best candidate, best CT and second-best CT.
    let per_task: Vec<(usize, usize, f64, f64)> = remaining
        .iter()
        .map(|&t| {
            let row = &ct[t];
            let mut best_h = 0usize;
            let mut best = f64::INFINITY;
            let mut second = f64::INFINITY;
            for (h, &v) in row.iter().enumerate() {
                if v < best {
                    second = best;
                    best = v;
                    best_h = h;
                } else if v < second {
                    second = v;
                }
            }
            if second.is_infinite() {
                second = best;
            }
            (t, best_h, best, second)
        })
        .collect();

    let chosen = match heuristic {
        MatrixHeuristic::MinMin => per_task.iter().min_by(|a, b| {
            a.2.partial_cmp(&b.2)
                .unwrap_or(Ordering::Equal)
                .then(a.0.cmp(&b.0))
        }),
        MatrixHeuristic::MaxMin => per_task.iter().max_by(|a, b| {
            a.2.partial_cmp(&b.2)
                .unwrap_or(Ordering::Equal)
                .then(b.0.cmp(&a.0))
        }),
        MatrixHeuristic::Sufferage => per_task.iter().max_by(|a, b| {
            (a.3 - a.2)
                .partial_cmp(&(b.3 - b.2))
                .unwrap_or(Ordering::Equal)
                .then(b.0.cmp(&a.0))
        }),
    };
    chosen.map(|&(t, h, best, second)| (t, h, second - best))
}

/// Plan this cycle's dispatches at one home node (Algorithm 1 for DSMF; the corresponding
/// orderings for the other heuristics).
///
/// `candidates` is the home node's current view of its `RSS`; the planner updates the candidate
/// loads as it assigns tasks (Algorithm 1, line 15), so the caller sees the post-dispatch view.
/// The returned decisions are in dispatch order.
pub fn plan_dispatch(
    algorithm: Algorithm,
    tasks: &[DispatchCandidateTask],
    candidates: &mut [CandidateNode],
    estimator: &FinishTimeEstimator<'_>,
) -> Vec<DispatchDecision> {
    if tasks.is_empty() || candidates.is_empty() {
        return Vec::new();
    }
    match algorithm {
        Algorithm::Dsmf | Algorithm::Smf => {
            // Workflows in ascending remaining makespan, tasks within a workflow in descending
            // RPM.  (SMF shares the ordering; it only differs by being planned full-ahead,
            // which the simulation handles elsewhere.)
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            order.sort_by(|&a, &b| {
                let ta = &tasks[a];
                let tb = &tasks[b];
                ta.workflow_ms_secs
                    .partial_cmp(&tb.workflow_ms_secs)
                    .unwrap_or(Ordering::Equal)
                    .then(ta.workflow.cmp(&tb.workflow))
                    .then(
                        tb.rpm_secs
                            .partial_cmp(&ta.rpm_secs)
                            .unwrap_or(Ordering::Equal),
                    )
                    .then(ta.task.cmp(&tb.task))
            });
            greedy_assign(&order, tasks, candidates, estimator)
        }
        Algorithm::Dheft | Algorithm::Heft => {
            // Longest RPM first, across all workflows.
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            order.sort_by(|&a, &b| {
                tasks[b]
                    .rpm_secs
                    .partial_cmp(&tasks[a].rpm_secs)
                    .unwrap_or(Ordering::Equal)
                    .then(tasks[a].workflow.cmp(&tasks[b].workflow))
                    .then(tasks[a].task.cmp(&tasks[b].task))
            });
            greedy_assign(&order, tasks, candidates, estimator)
        }
        Algorithm::Dsdf => {
            // Shortest deadline (slack between the workflow's remaining makespan and the task's
            // own rest path makespan) first.
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            order.sort_by(|&a, &b| {
                let slack_a = tasks[a].workflow_ms_secs - tasks[a].rpm_secs;
                let slack_b = tasks[b].workflow_ms_secs - tasks[b].rpm_secs;
                slack_a
                    .partial_cmp(&slack_b)
                    .unwrap_or(Ordering::Equal)
                    .then(tasks[a].workflow.cmp(&tasks[b].workflow))
                    .then(tasks[a].task.cmp(&tasks[b].task))
            });
            greedy_assign(&order, tasks, candidates, estimator)
        }
        Algorithm::MinMin | Algorithm::MaxMin | Algorithm::Sufferage => {
            let heuristic = match algorithm {
                Algorithm::MinMin => MatrixHeuristic::MinMin,
                Algorithm::MaxMin => MatrixHeuristic::MaxMin,
                _ => MatrixHeuristic::Sufferage,
            };
            let mut decisions = Vec::with_capacity(tasks.len());
            let mut remaining: Vec<usize> = (0..tasks.len()).collect();
            while !remaining.is_empty() {
                // Rebuild the completion-time matrix against the *current* candidate loads, as
                // the classical dynamic matching algorithms do after every assignment.
                let rows: Vec<(f64, f64, Vec<PredecessorData>)> = tasks
                    .iter()
                    .map(|t| (t.load_mi, t.image_size_mb, t.predecessors.clone()))
                    .collect();
                let ct = estimator.completion_matrix(&rows, candidates);
                let Some((t_idx, h_idx, sufferage)) = matrix_pick_next(heuristic, &ct, &remaining)
                else {
                    break;
                };
                let t = &tasks[t_idx];
                decisions.push(DispatchDecision {
                    workflow: t.workflow,
                    task: t.task,
                    target: candidates[h_idx].node,
                    estimated_finish_secs: ct[t_idx][h_idx],
                    sufferage_secs: sufferage,
                });
                candidates[h_idx].add_load(t.load_mi);
                remaining.retain(|&x| x != t_idx);
            }
            decisions
        }
    }
}

fn greedy_assign(
    order: &[usize],
    tasks: &[DispatchCandidateTask],
    candidates: &mut [CandidateNode],
    estimator: &FinishTimeEstimator<'_>,
) -> Vec<DispatchDecision> {
    let mut decisions = Vec::with_capacity(order.len());
    for &i in order {
        let t = &tasks[i];
        let Some((idx, ft)) =
            estimator.best_candidate(candidates, t.load_mi, t.image_size_mb, &t.predecessors)
        else {
            continue;
        };
        decisions.push(DispatchDecision {
            workflow: t.workflow,
            task: t.task,
            target: candidates[idx].node,
            estimated_finish_secs: ft,
            sufferage_secs: 0.0,
        });
        candidates[idx].add_load(t.load_mi);
    }
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_bw(a: NodeId, b: NodeId) -> f64 {
        if a == b {
            f64::INFINITY
        } else {
            1.0
        }
    }

    /// The four schedule-point tasks of the Fig. 3 worked example with their paper RPM values
    /// and workflow makespans (workflow 0 = A with ms 115, workflow 1 = B with ms 65).
    fn fig3_tasks() -> Vec<DispatchCandidateTask> {
        let mk = |workflow, task, rpm, ms| DispatchCandidateTask {
            workflow,
            task: TaskId(task),
            load_mi: 10.0,
            image_size_mb: 0.0,
            rpm_secs: rpm,
            workflow_ms_secs: ms,
            predecessors: vec![],
        };
        vec![
            mk(0, 1, 80.0, 115.0),  // A2
            mk(0, 2, 115.0, 115.0), // A3
            mk(1, 1, 65.0, 65.0),   // B2
            mk(1, 2, 60.0, 65.0),   // B3
        ]
    }

    fn idle_candidates(n: usize) -> Vec<CandidateNode> {
        (0..n)
            .map(|i| CandidateNode::single_slot(100 + i, 1.0, 0.0))
            .collect()
    }

    fn dispatch_order(decisions: &[DispatchDecision]) -> Vec<(usize, u32)> {
        decisions.iter().map(|d| (d.workflow, d.task.0)).collect()
    }

    #[test]
    fn dsmf_orders_b2_b3_a3_a2_as_in_fig3() {
        let tasks = fig3_tasks();
        let mut candidates = idle_candidates(3);
        let est = FinishTimeEstimator::new(0, &uniform_bw);
        let decisions = plan_dispatch(Algorithm::Dsmf, &tasks, &mut candidates, &est);
        // The paper: "According to DSMF, the scheduling order is thus B2, B3, A3, A2."
        assert_eq!(
            dispatch_order(&decisions),
            vec![(1, 1), (1, 2), (0, 2), (0, 1)]
        );
    }

    #[test]
    fn dheft_orders_by_decreasing_rpm_as_in_fig3() {
        let tasks = fig3_tasks();
        let mut candidates = idle_candidates(3);
        let est = FinishTimeEstimator::new(0, &uniform_bw);
        let decisions = plan_dispatch(Algorithm::Dheft, &tasks, &mut candidates, &est);
        // The paper: "The HEFT algorithm will choose A3, A2, B2, and B3 one by one."
        assert_eq!(
            dispatch_order(&decisions),
            vec![(0, 2), (0, 1), (1, 1), (1, 2)]
        );
    }

    #[test]
    fn dsdf_prefers_critical_tasks_of_each_workflow() {
        let tasks = fig3_tasks();
        let mut candidates = idle_candidates(3);
        let est = FinishTimeEstimator::new(0, &uniform_bw);
        let decisions = plan_dispatch(Algorithm::Dsdf, &tasks, &mut candidates, &est);
        let order = dispatch_order(&decisions);
        // Slacks: A3 = 0, B2 = 0, B3 = 5, A2 = 35 — so both critical tasks come first and A2
        // (the largest slack) comes last.
        assert_eq!(order[3], (0, 1));
        assert!(order[..2].contains(&(0, 2)));
        assert!(order[..2].contains(&(1, 1)));
    }

    #[test]
    fn fig3_matrix_min_min_and_max_min_first_picks() {
        // The estimated finish-time matrix of Fig. 3 (rows A2, A3, B2, B3; columns X, Y, Z).
        let ct = vec![
            vec![15.0, 10.0, 30.0],
            vec![30.0, 50.0, 40.0],
            vec![50.0, 60.0, 40.0],
            vec![40.0, 20.0, 30.0],
        ];
        let remaining = vec![0, 1, 2, 3];
        // min-min selects A2 (its best completion time, 10 on Y, is the global minimum).
        let (t, h, _) = matrix_pick_next(MatrixHeuristic::MinMin, &ct, &remaining).unwrap();
        assert_eq!((t, h), (0, 1));
        // max-min selects B2 (its best completion time, 40 on Z, is the largest best).
        let (t, h, _) = matrix_pick_next(MatrixHeuristic::MaxMin, &ct, &remaining).unwrap();
        assert_eq!((t, h), (2, 2));
        // sufferage: differences between second-best and best are 5 (A2), 10 (A3), 10 (B2),
        // 10 (B3); the first task index with the maximum (A3) wins deterministically.
        let (t, _, s) = matrix_pick_next(MatrixHeuristic::Sufferage, &ct, &remaining).unwrap();
        assert_eq!(t, 1);
        assert_eq!(s, 10.0);
    }

    #[test]
    fn matrix_pick_respects_remaining_set_and_empty_inputs() {
        let ct = vec![vec![5.0, 1.0], vec![2.0, 9.0]];
        let (t, h, _) = matrix_pick_next(MatrixHeuristic::MinMin, &ct, &[1]).unwrap();
        assert_eq!((t, h), (1, 0));
        assert!(matrix_pick_next(MatrixHeuristic::MinMin, &ct, &[]).is_none());
        assert!(matrix_pick_next(MatrixHeuristic::MinMin, &[], &[0]).is_none());
    }

    #[test]
    fn single_candidate_sufferage_is_zero() {
        let ct = vec![vec![5.0], vec![2.0]];
        let (_, _, s) = matrix_pick_next(MatrixHeuristic::Sufferage, &ct, &[0, 1]).unwrap();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn min_min_greedy_assignment_spreads_load() {
        // Two identical tasks, two identical idle nodes: after the first assignment the first
        // node is loaded, so the second task must go to the other node.
        let tasks: Vec<DispatchCandidateTask> = (0..2)
            .map(|i| DispatchCandidateTask {
                workflow: 0,
                task: TaskId(i),
                load_mi: 1000.0,
                image_size_mb: 0.0,
                rpm_secs: 10.0,
                workflow_ms_secs: 10.0,
                predecessors: vec![],
            })
            .collect();
        let mut candidates = idle_candidates(2);
        let est = FinishTimeEstimator::new(0, &uniform_bw);
        let decisions = plan_dispatch(Algorithm::MinMin, &tasks, &mut candidates, &est);
        assert_eq!(decisions.len(), 2);
        assert_ne!(decisions[0].target, decisions[1].target);
        // Both candidates now carry exactly one task's load.
        assert!(candidates.iter().all(|c| c.total_load_mi == 1000.0));
    }

    #[test]
    fn greedy_heuristics_also_balance_when_queues_grow() {
        // DSMF dispatching four equal tasks over two equal idle nodes must alternate targets,
        // because each dispatch updates the local copy of the RSS record.
        let tasks: Vec<DispatchCandidateTask> = (0..4)
            .map(|i| DispatchCandidateTask {
                workflow: i as usize,
                task: TaskId(0),
                load_mi: 500.0,
                image_size_mb: 0.0,
                rpm_secs: 100.0,
                workflow_ms_secs: 100.0,
                predecessors: vec![],
            })
            .collect();
        let mut candidates = idle_candidates(2);
        let est = FinishTimeEstimator::new(0, &uniform_bw);
        let decisions = plan_dispatch(Algorithm::Dsmf, &tasks, &mut candidates, &est);
        let to_first = decisions.iter().filter(|d| d.target == 100).count();
        let to_second = decisions.iter().filter(|d| d.target == 101).count();
        assert_eq!(to_first, 2);
        assert_eq!(to_second, 2);
    }

    #[test]
    fn equal_aggregate_slot_farm_does_not_attract_a_single_long_task() {
        // The capacity-illusion regression at planner level: a 16-slot node advertising the
        // same 16 MIPS aggregate as a single-core node must lose the placement of one long
        // task under every heuristic — one task only ever runs on one 1 MIPS slot there.
        let tasks = vec![DispatchCandidateTask {
            workflow: 0,
            task: TaskId(0),
            load_mi: 8000.0,
            image_size_mb: 0.0,
            rpm_secs: 1.0,
            workflow_ms_secs: 1.0,
            predecessors: vec![],
        }];
        let slot_farm = CandidateNode {
            node: 1,
            capacity_mips: 16.0,
            slots: 16,
            total_load_mi: 0.0,
        };
        let single_core = CandidateNode::single_slot(2, 16.0, 0.0);
        let est = FinishTimeEstimator::new(0, &uniform_bw);
        for alg in [
            Algorithm::Dsmf,
            Algorithm::Dheft,
            Algorithm::Dsdf,
            Algorithm::MinMin,
            Algorithm::MaxMin,
            Algorithm::Sufferage,
        ] {
            let mut cands = vec![slot_farm, single_core];
            let d = plan_dispatch(alg, &tasks, &mut cands, &est);
            assert_eq!(
                d[0].target, 2,
                "{alg}: the long task belongs on the fast single core"
            );
        }
    }

    #[test]
    fn empty_inputs_produce_no_decisions() {
        let est = FinishTimeEstimator::new(0, &uniform_bw);
        let mut candidates = idle_candidates(2);
        assert!(plan_dispatch(Algorithm::Dsmf, &[], &mut candidates, &est).is_empty());
        let tasks = fig3_tasks();
        let mut no_candidates: Vec<CandidateNode> = Vec::new();
        assert!(plan_dispatch(Algorithm::Dsmf, &tasks, &mut no_candidates, &est).is_empty());
    }

    #[test]
    fn faster_node_attracts_the_long_task() {
        // One powerful node and one weak node: the long task must land on the 16 MIPS node.
        let tasks = vec![DispatchCandidateTask {
            workflow: 0,
            task: TaskId(0),
            load_mi: 8000.0,
            image_size_mb: 0.0,
            rpm_secs: 1.0,
            workflow_ms_secs: 1.0,
            predecessors: vec![],
        }];
        let mut candidates = vec![
            CandidateNode::single_slot(1, 1.0, 0.0),
            CandidateNode::single_slot(2, 16.0, 0.0),
        ];
        let est = FinishTimeEstimator::new(0, &uniform_bw);
        for alg in [
            Algorithm::Dsmf,
            Algorithm::Dheft,
            Algorithm::Dsdf,
            Algorithm::MinMin,
            Algorithm::MaxMin,
            Algorithm::Sufferage,
        ] {
            let mut cands = candidates.clone();
            let d = plan_dispatch(alg, &tasks, &mut cands, &est);
            assert_eq!(d.len(), 1, "{alg}: task not dispatched");
            assert_eq!(
                d[0].target, 2,
                "{alg}: long task should go to the fast node"
            );
        }
        let _ = &mut candidates;
    }
}
