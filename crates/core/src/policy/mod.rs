//! The two scheduling phases.
//!
//! * [`first_phase`] — Algorithm 1: how a home node orders its schedule-point tasks and picks a
//!   target resource node for each of them, for every first-phase heuristic in the paper.
//! * [`second_phase`] — Algorithm 2: how a resource node picks the next task from its ready
//!   set, for every ready-set rule (including the FCFS ablation).
//!
//! Both phases are pure functions over small view structs, so they are unit-testable against
//! hand-constructed scenarios (including the paper's Fig. 3 worked example) without running the
//! full grid simulation.

pub mod first_phase;
pub mod second_phase;

pub use first_phase::{
    matrix_pick_next, plan_dispatch, DispatchCandidateTask, DispatchDecision, MatrixHeuristic,
};
pub use second_phase::{select_next, ReadyTaskView};
