//! The centralized full-ahead planner behind the HEFT and SMF baselines.
//!
//! The paper uses two full-ahead algorithms as upper-bound style baselines: the classic HEFT
//! list scheduler and the self-implemented SMF ("shortest makespan first").  Both are "centrally
//! performed before the execution starts" with *global* information, and the resource nodes
//! then simply execute ready tasks FCFS.  This module implements that planner:
//!
//! * every workflow gets an upward-rank analysis under the true system-wide averages;
//! * **HEFT** merges all tasks of all workflows into one list ordered by decreasing rank;
//! * **SMF** first orders whole workflows by ascending expected makespan and then their tasks by
//!   decreasing rank;
//! * every task is assigned to the node with the earliest estimated finish time given the
//!   already-planned tasks (non-insertion HEFT processor selection), accounting for dependent
//!   data transfers from the planned locations of its precedents and the program-image transfer
//!   from its home node.

use crate::algorithm::Algorithm;
use crate::estimate::CandidateNode;
use crate::NodeId;
use p2pgrid_workflow::{ExpectedCosts, TaskId, Workflow, WorkflowAnalysis};
use std::cmp::Ordering;

/// A workflow to plan: its home node and DAG.
#[derive(Debug, Clone)]
pub struct PlanInput<'a> {
    /// The home (submission) node.
    pub home: NodeId,
    /// The workflow DAG.
    pub workflow: &'a Workflow,
}

/// The plan for one workflow: the chosen execution node for every task (indexed by task id).
pub type WorkflowPlan = Vec<NodeId>;

/// Plan every workflow on the given nodes.
///
/// `algorithm` must be one of the two full-ahead baselines.  `nodes` is the global view of all
/// (alive) resource nodes; `costs` are the true system-wide averages used for rank computation;
/// `bandwidth_mbps` is the true pairwise bandwidth.
pub fn plan_full_ahead(
    algorithm: Algorithm,
    inputs: &[PlanInput<'_>],
    nodes: &[CandidateNode],
    costs: ExpectedCosts,
    bandwidth_mbps: &dyn Fn(NodeId, NodeId) -> f64,
) -> Vec<WorkflowPlan> {
    assert!(
        algorithm.is_full_ahead(),
        "plan_full_ahead only supports the HEFT and SMF baselines, got {algorithm}"
    );
    assert!(!nodes.is_empty(), "cannot plan on an empty node set");

    let analyses: Vec<WorkflowAnalysis> = inputs
        .iter()
        .map(|inp| WorkflowAnalysis::new(inp.workflow, costs))
        .collect();

    // Build the global task order as (workflow index, task id) pairs.
    let mut order: Vec<(usize, TaskId)> = Vec::new();
    match algorithm {
        Algorithm::Heft => {
            for (w, inp) in inputs.iter().enumerate() {
                for t in inp.workflow.task_ids() {
                    order.push((w, t));
                }
            }
            order.sort_by(|&(wa, ta), &(wb, tb)| {
                analyses[wb]
                    .rpm_secs(tb)
                    .partial_cmp(&analyses[wa].rpm_secs(ta))
                    .unwrap_or(Ordering::Equal)
                    .then(wa.cmp(&wb))
                    .then(ta.cmp(&tb))
            });
        }
        Algorithm::Smf => {
            let mut wf_order: Vec<usize> = (0..inputs.len()).collect();
            wf_order.sort_by(|&a, &b| {
                analyses[a]
                    .expected_finish_time_secs()
                    .partial_cmp(&analyses[b].expected_finish_time_secs())
                    .unwrap_or(Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for w in wf_order {
                let mut tasks: Vec<TaskId> = inputs[w].workflow.task_ids().collect();
                tasks.sort_by(|&ta, &tb| {
                    analyses[w]
                        .rpm_secs(tb)
                        .partial_cmp(&analyses[w].rpm_secs(ta))
                        .unwrap_or(Ordering::Equal)
                        .then(ta.cmp(&tb))
                });
                for t in tasks {
                    order.push((w, t));
                }
            }
        }
        _ => unreachable!("guarded above"),
    }

    // Greedy earliest-finish-time processor selection.
    let mut node_available: Vec<f64> = nodes.iter().map(|n| n.queuing_delay_secs()).collect();
    let mut plans: Vec<WorkflowPlan> = inputs
        .iter()
        .map(|inp| vec![0usize; inp.workflow.task_count()])
        .collect();
    let mut planned_finish: Vec<Vec<f64>> = inputs
        .iter()
        .map(|inp| vec![0.0f64; inp.workflow.task_count()])
        .collect();

    let transfer = |from: NodeId, to: NodeId, mb: f64| -> f64 {
        if from == to || mb <= 0.0 {
            return 0.0;
        }
        let bw = bandwidth_mbps(from, to);
        if bw <= 0.0 {
            f64::INFINITY
        } else {
            mb / bw
        }
    };

    for (w, t) in order {
        let inp = &inputs[w];
        let task = inp.workflow.task(t);
        let mut best: Option<(usize, f64)> = None;
        for (h, node) in nodes.iter().enumerate() {
            let mut data_ready = transfer(inp.home, node.node, task.image_size_mb);
            for e in inp.workflow.precedents(t) {
                let pred_node = nodes[plans[w][e.task.index()]].node;
                let arrival =
                    planned_finish[w][e.task.index()] + transfer(pred_node, node.node, e.data_mb);
                data_ready = data_ready.max(arrival);
            }
            let start = node_available[h].max(data_ready);
            let finish = start + node.execution_secs(task.load_mi);
            let better = match best {
                None => true,
                Some((bh, bft)) => {
                    finish < bft - 1e-12
                        || ((finish - bft).abs() <= 1e-12 && nodes[h].node < nodes[bh].node)
                }
            };
            if better {
                best = Some((h, finish));
            }
        }
        let (h, finish) = best.expect("nodes is non-empty");
        plans[w][t.index()] = h;
        planned_finish[w][t.index()] = finish;
        node_available[h] = finish;
    }

    // Translate node indices to node ids.
    plans
        .into_iter()
        .map(|p| p.into_iter().map(|h| nodes[h].node).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worked_example;
    use p2pgrid_workflow::shapes;

    fn uniform_bw(a: NodeId, b: NodeId) -> f64 {
        if a == b {
            f64::INFINITY
        } else {
            10.0
        }
    }

    fn idle_nodes(capacities: &[f64]) -> Vec<CandidateNode> {
        capacities
            .iter()
            .enumerate()
            .map(|(i, &c)| CandidateNode::single_slot(i, c, 0.0))
            .collect()
    }

    #[test]
    #[should_panic(expected = "only supports")]
    fn rejects_just_in_time_algorithms() {
        let w = shapes::chain(3, 100.0, 10.0);
        let inputs = [PlanInput {
            home: 0,
            workflow: &w,
        }];
        plan_full_ahead(
            Algorithm::Dsmf,
            &inputs,
            &idle_nodes(&[1.0]),
            ExpectedCosts::new(1.0, 1.0),
            &uniform_bw,
        );
    }

    #[test]
    fn every_task_gets_an_assignment() {
        let w1 = worked_example::workflow_a();
        let w2 = worked_example::workflow_b();
        let inputs = [
            PlanInput {
                home: 0,
                workflow: &w1,
            },
            PlanInput {
                home: 1,
                workflow: &w2,
            },
        ];
        let nodes = idle_nodes(&[1.0, 2.0, 4.0]);
        for alg in [Algorithm::Heft, Algorithm::Smf] {
            let plans = plan_full_ahead(
                alg,
                &inputs,
                &nodes,
                ExpectedCosts::new(1.0, 1.0),
                &uniform_bw,
            );
            assert_eq!(plans.len(), 2);
            assert_eq!(plans[0].len(), w1.task_count());
            assert_eq!(plans[1].len(), w2.task_count());
            for plan in &plans {
                for &n in plan {
                    assert!(n < 3, "assignment to unknown node {n}");
                }
            }
        }
    }

    #[test]
    fn a_chain_lands_on_the_fastest_node_when_communication_is_cheap() {
        // With cheap communication and a single dominant node, every task of a chain should be
        // planned on the fastest node (no benefit from spreading a purely sequential DAG).
        let w = shapes::chain(6, 1000.0, 1.0);
        let inputs = [PlanInput {
            home: 0,
            workflow: &w,
        }];
        let nodes = idle_nodes(&[1.0, 2.0, 16.0]);
        let plans = plan_full_ahead(
            Algorithm::Heft,
            &inputs,
            &nodes,
            ExpectedCosts::new(6.2, 10.0),
            &uniform_bw,
        );
        assert!(plans[0].iter().all(|&n| n == 2), "plan: {:?}", plans[0]);
    }

    #[test]
    fn parallel_branches_are_spread_across_nodes() {
        // A wide fork-join with heavy tasks and negligible data: parallel branches should not
        // all be serialised onto one node.
        let w = shapes::fork_join(6, 5000.0, 1.0);
        let inputs = [PlanInput {
            home: 0,
            workflow: &w,
        }];
        let nodes = idle_nodes(&[8.0, 8.0, 8.0, 8.0]);
        let plans = plan_full_ahead(
            Algorithm::Heft,
            &inputs,
            &nodes,
            ExpectedCosts::new(8.0, 10.0),
            &uniform_bw,
        );
        let distinct: std::collections::HashSet<_> = plans[0].iter().collect();
        assert!(
            distinct.len() >= 3,
            "fork-join should use several nodes, got {:?}",
            plans[0]
        );
    }

    #[test]
    fn busy_nodes_are_avoided() {
        let w = shapes::chain(2, 1000.0, 1.0);
        let inputs = [PlanInput {
            home: 0,
            workflow: &w,
        }];
        let nodes = vec![
            CandidateNode::single_slot(0, 8.0, 1_000_000.0),
            CandidateNode::single_slot(1, 8.0, 0.0),
        ];
        let plans = plan_full_ahead(
            Algorithm::Smf,
            &inputs,
            &nodes,
            ExpectedCosts::new(8.0, 10.0),
            &uniform_bw,
        );
        assert!(plans[0].iter().all(|&n| n == 1));
    }

    #[test]
    fn heft_and_smf_respect_precedence_in_their_plans() {
        // The planned finish time of a successor must not precede that of its precedents; we
        // verify indirectly by checking that the greedy pass assigned precedents before
        // successors (rank ordering guarantees it within a DAG).
        let w = worked_example::workflow_a();
        let analysis = WorkflowAnalysis::new(&w, ExpectedCosts::new(1.0, 1.0));
        for t in w.task_ids() {
            for e in w.successors(t) {
                assert!(
                    analysis.rpm_secs(t) > analysis.rpm_secs(e.task),
                    "upward rank must strictly decrease along edges"
                );
            }
        }
    }
}
