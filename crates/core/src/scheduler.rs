//! The pluggable scheduler seam.
//!
//! The grid engine drives every scheduling decision through this trait, so algorithms beyond
//! the paper's built-in eight can be plugged in without touching the engine or editing enum
//! match arms: implement [`Scheduler`] and hand it to
//! [`Scenario::simulate`](crate::scenario::Scenario::simulate).
//!
//! A scheduler owns both halves of the dual-phase model:
//!
//! * **first phase** — [`Scheduler::plan_dispatch`] orders and places this cycle's
//!   schedule-point tasks at one home node (Algorithm 1 for DSMF);
//! * **second phase** — [`Scheduler::ready_key`] assigns every migrated task a static priority
//!   key; each resource node executes its data-complete ready task with the *smallest* key
//!   whenever a slot frees up (Formula 10 for DSMF), with arrival order as the tie-break.
//!
//! Full-ahead baselines (HEFT, SMF) additionally return complete plans from
//! [`Scheduler::plan_full_ahead`]; just-in-time schedulers keep the default `None`.
//!
//! [`AlgorithmConfig`] — the paper's eight algorithms with configurable phase pairings — is the
//! built-in implementor.

use crate::algorithm::AlgorithmConfig;
use crate::estimate::{CandidateNode, FinishTimeEstimator};
use crate::fullahead::{plan_full_ahead, PlanInput, WorkflowPlan};
use crate::policy::first_phase::{plan_dispatch, DispatchCandidateTask, DispatchDecision};
use crate::policy::second_phase::{ready_key, ReadyKey, ReadyTaskView};
use crate::NodeId;
use p2pgrid_workflow::ExpectedCosts;

/// A complete dual-phase scheduling policy, pluggable into the grid engine.
///
/// `Send + Sync` is a supertrait because the sharded event loop executes each time window's
/// shards on the worker pool, and every shard reads the scheduler's [`Scheduler::ready_key`]
/// concurrently.  Schedulers are consulted, never mutated, during a window, so any stateless
/// policy (like the built-in [`AlgorithmConfig`]) satisfies the bound for free.
pub trait Scheduler: Send + Sync {
    /// Label used in reports and figure legends (e.g. `"DSMF"`, `"min-min+FCFS"`).
    fn label(&self) -> String;

    /// Centralized full-ahead planning before execution starts (HEFT / SMF style).
    ///
    /// Return one plan (task index → node id) per input workflow to make the engine dispatch
    /// every schedule point to its pre-planned node; return `None` (the default) for
    /// just-in-time schedulers, which plan each cycle through [`Scheduler::plan_dispatch`].
    fn plan_full_ahead(
        &self,
        _inputs: &[PlanInput<'_>],
        _nodes: &[CandidateNode],
        _costs: ExpectedCosts,
        _bandwidth_mbps: &dyn Fn(NodeId, NodeId) -> f64,
    ) -> Option<Vec<WorkflowPlan>> {
        None
    }

    /// First phase: order this cycle's schedule-point tasks and choose a resource node for
    /// each, updating `candidates` loads as tasks are placed (Algorithm 1, line 15).
    fn plan_dispatch(
        &self,
        tasks: &[DispatchCandidateTask],
        candidates: &mut [CandidateNode],
        estimator: &FinishTimeEstimator<'_>,
    ) -> Vec<DispatchDecision>;

    /// Second phase: the static priority key of one migrated task.  Each resource node runs
    /// the data-complete ready task with the smallest key first (ties: arrival order).
    fn ready_key(&self, task: &ReadyTaskView) -> ReadyKey;
}

impl Scheduler for AlgorithmConfig {
    fn label(&self) -> String {
        AlgorithmConfig::label(self)
    }

    fn plan_full_ahead(
        &self,
        inputs: &[PlanInput<'_>],
        nodes: &[CandidateNode],
        costs: ExpectedCosts,
        bandwidth_mbps: &dyn Fn(NodeId, NodeId) -> f64,
    ) -> Option<Vec<WorkflowPlan>> {
        self.algorithm
            .is_full_ahead()
            .then(|| plan_full_ahead(self.algorithm, inputs, nodes, costs, bandwidth_mbps))
    }

    fn plan_dispatch(
        &self,
        tasks: &[DispatchCandidateTask],
        candidates: &mut [CandidateNode],
        estimator: &FinishTimeEstimator<'_>,
    ) -> Vec<DispatchDecision> {
        plan_dispatch(self.algorithm, tasks, candidates, estimator)
    }

    fn ready_key(&self, task: &ReadyTaskView) -> ReadyKey {
        ready_key(self.second_phase, task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Algorithm, SecondPhase};
    use crate::policy::second_phase::select_next;

    #[test]
    fn algorithm_config_implements_the_trait_faithfully() {
        let dsmf = AlgorithmConfig::paper_default(Algorithm::Dsmf);
        let scheduler: &dyn Scheduler = &dsmf;
        assert_eq!(scheduler.label(), "DSMF");

        // The trait's ready_key must rank exactly like the reference select_next.
        let views = [
            ReadyTaskView {
                workflow_ms_secs: 300.0,
                rpm_secs: 120.0,
                exec_secs: 10.0,
                sufferage_secs: 0.0,
                enqueued_seq: 0,
            },
            ReadyTaskView {
                workflow_ms_secs: 100.0,
                rpm_secs: 50.0,
                exec_secs: 10.0,
                sufferage_secs: 0.0,
                enqueued_seq: 1,
            },
        ];
        let by_key = (0..views.len())
            .min_by_key(|&i| (scheduler.ready_key(&views[i]), views[i].enqueued_seq))
            .unwrap();
        assert_eq!(
            Some(by_key),
            select_next(SecondPhase::ShortestWorkflowMakespan, &views)
        );
    }

    #[test]
    fn only_full_ahead_algorithms_return_plans() {
        use crate::worked_example;
        let w = worked_example::workflow_a();
        let inputs = [PlanInput {
            home: 0,
            workflow: &w,
        }];
        let nodes = [CandidateNode::single_slot(0, 4.0, 0.0)];
        let bw = |_a: NodeId, _b: NodeId| 10.0;
        let costs = ExpectedCosts::new(1.0, 1.0);
        let jit = AlgorithmConfig::paper_default(Algorithm::Dsmf);
        assert!(Scheduler::plan_full_ahead(&jit, &inputs, &nodes, costs, &bw).is_none());
        let heft = AlgorithmConfig::paper_default(Algorithm::Heft);
        let plans = Scheduler::plan_full_ahead(&heft, &inputs, &nodes, costs, &bw).unwrap();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].len(), w.task_count());
    }
}
