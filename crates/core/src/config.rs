//! Experiment configuration (Table I defaults).
//!
//! All validation is `Result`-returning with a typed [`ConfigError`]: a malformed sweep
//! configuration fails [`Scenario::build`](crate::scenario::Scenario::build) with a message
//! naming the offending value instead of panicking mid-experiment.

use crate::error::ConfigError;
use p2pgrid_gossip::MixedGossipConfig;
use p2pgrid_sim::{SimDuration, SimRng, SimTime};
use p2pgrid_topology::WaxmanConfig;
use p2pgrid_workflow::{WorkflowGeneratorConfig, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// How node capacities are assigned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CapacityModel {
    /// Capacities drawn uniformly from the given set (Table I: {1, 2, 4, 8, 16} MIPS).
    Choices(Vec<f64>),
    /// Every node has the same capacity (useful for tests).
    Uniform(f64),
}

impl Default for CapacityModel {
    fn default() -> Self {
        CapacityModel::Choices(vec![1.0, 2.0, 4.0, 8.0, 16.0])
    }
}

impl CapacityModel {
    /// Sample a capacity for one node.  The model must have passed
    /// [`CapacityModel::validate`] first (an empty choice set panics here).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            CapacityModel::Choices(choices) => *rng
                .choose(choices)
                .expect("capacity choice set must not be empty (validate the config first)"),
            CapacityModel::Uniform(c) => *c,
        }
    }

    /// Check the model for an empty choice set or non-positive / non-finite capacities.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let values: &[f64] = match self {
            CapacityModel::Choices(choices) if choices.is_empty() => {
                return Err(ConfigError::EmptyCapacitySet)
            }
            CapacityModel::Choices(choices) => choices,
            CapacityModel::Uniform(c) => std::slice::from_ref(c),
        };
        match values.iter().find(|c| !(c.is_finite() && **c > 0.0)) {
            Some(&bad) => Err(ConfigError::InvalidCapacity(bad)),
            None => Ok(()),
        }
    }

    /// The mean capacity of the model (used by tests; the running system estimates this through
    /// the aggregation gossip instead).
    pub fn mean(&self) -> f64 {
        match self {
            CapacityModel::Choices(choices) => choices.iter().sum::<f64>() / choices.len() as f64,
            CapacityModel::Uniform(c) => *c,
        }
    }
}

/// One class of a heterogeneous slot distribution: nodes of this class own `slots` execution
/// slots, and the class is drawn with probability proportional to `weight`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotClass {
    /// Execution slots per node of this class (≥ 1).
    pub slots: usize,
    /// Relative sampling weight (> 0; weights need not sum to 1).
    pub weight: f64,
}

/// How many execution slots each node owns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SlotModel {
    /// Every node has the same slot count (paper: 1).
    Uniform(usize),
    /// Per-node slot counts sampled from a weighted class distribution, e.g. 80% single-core /
    /// 20% 16-core volunteer machines.  Sampling is deterministic per seed (its own `SimRng`
    /// stream), so heterogeneous runs are exactly reproducible.
    Weighted(Vec<SlotClass>),
}

impl SlotModel {
    /// Sample the slot count of one node.  `Uniform` never consumes randomness, so enabling
    /// the seam costs single-slot runs nothing — they stay byte-identical to the paper model.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        match self {
            SlotModel::Uniform(s) => *s,
            SlotModel::Weighted(classes) => {
                let total: f64 = classes.iter().map(|c| c.weight).sum();
                let mut x = rng.gen_f64() * total;
                for c in classes {
                    x -= c.weight;
                    if x < 0.0 {
                        return c.slots;
                    }
                }
                classes.last().expect("non-empty class set").slots
            }
        }
    }

    /// Check the model for zero slot counts, empty class sets or degenerate weights.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            SlotModel::Uniform(s) => {
                if *s < 1 {
                    return Err(ConfigError::ZeroSlots);
                }
            }
            SlotModel::Weighted(classes) => {
                if classes.is_empty() {
                    return Err(ConfigError::EmptySlotClasses);
                }
                for c in classes {
                    if c.slots < 1 {
                        return Err(ConfigError::ZeroSlots);
                    }
                    if !(c.weight > 0.0 && c.weight.is_finite()) {
                        return Err(ConfigError::InvalidSlotWeight(c.weight));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Whether a resource node's slots are preemptible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreemptionPolicy {
    /// The paper's model: a task that starts executing holds its slot until it finishes.
    NonPreemptive,
    /// Time-sliced execution: when a task becomes ready whose scheduler key is strictly
    /// smaller (higher priority) than that of the lowest-priority running task and no slot is
    /// free, the running task is displaced back into the ready heap carrying its *remaining*
    /// load, and resumes later without losing completed work.
    TimeSliced,
}

/// The execution substrate of one resource node — how many tasks it can run at once and
/// whether running tasks can be displaced.
///
/// The paper models every peer as a single, non-preemptive CPU; the default reproduces that
/// exactly.  Raising the slot count turns a peer into a multi-core node: it advertises its
/// *aggregate* throughput (`capacity × slots`) plus its slot count through the gossip
/// substrate, and executes up to `slots` data-complete ready tasks concurrently while each
/// individual task runs on one slot at the per-slot speed (`capacity / slots` of the
/// advertised aggregate).  See `examples/multicore_grid.rs` (uniform sweep) and
/// `examples/heterogeneous_grid.rs` (weighted distributions + preemption).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceModel {
    /// Per-node slot counts (paper default: uniform 1).
    pub slots: SlotModel,
    /// Preemption policy of the execution slots (paper default: non-preemptive).
    pub preemption: PreemptionPolicy,
}

impl Default for ResourceModel {
    fn default() -> Self {
        ResourceModel {
            slots: SlotModel::Uniform(1),
            preemption: PreemptionPolicy::NonPreemptive,
        }
    }
}

impl ResourceModel {
    /// The paper's model: one single, non-preemptive CPU per node.
    pub fn single_cpu() -> Self {
        ResourceModel::default()
    }

    /// A symmetric multi-core node with `slots` execution slots.
    pub fn multi_core(slots: usize) -> Self {
        ResourceModel {
            slots: SlotModel::Uniform(slots),
            ..ResourceModel::default()
        }
    }

    /// A heterogeneous population drawn from `(slots, weight)` classes.
    pub fn heterogeneous(classes: Vec<SlotClass>) -> Self {
        ResourceModel {
            slots: SlotModel::Weighted(classes),
            ..ResourceModel::default()
        }
    }

    /// Enable the time-sliced preemptive policy on this substrate.
    pub fn preemptive(mut self) -> Self {
        self.preemption = PreemptionPolicy::TimeSliced;
        self
    }

    /// True when running tasks may be displaced by higher-priority arrivals.
    pub fn is_preemptive(&self) -> bool {
        self.preemption == PreemptionPolicy::TimeSliced
    }

    /// Check the substrate's slot model.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.slots.validate()
    }
}

/// How many shards the sharded event loop partitions the node population into.
///
/// Nodes are assigned to shards by a deterministic hash of the node id; each shard owns its
/// nodes' event queue and RNG stream split, and all shards advance in lockstep conservative
/// time windows of width [`Scenario::lookahead`](crate::scenario::Scenario::lookahead).
/// Reports are byte-identical for every shard count (pinned by `tests/sharding.rs`), so this
/// is purely a performance knob: more shards expose more parallelism to the
/// `P2PGRID_POOL_THREADS` worker pool at the cost of more window-barrier bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardSpec {
    /// Read the shard count from the `P2PGRID_SHARDS` environment variable, defaulting to 1
    /// (a single shard — the classic sequential event loop) when unset or unparsable.
    #[default]
    Auto,
    /// Use exactly this many shards (clamped to the node count; zero fails validation).
    Fixed(usize),
}

impl ShardSpec {
    /// Resolve the effective shard count for a grid of `nodes` nodes.
    ///
    /// `Auto` consults `P2PGRID_SHARDS` (once per call; sessions resolve at construction).
    /// The result is clamped to `[1, nodes]` — more shards than nodes would only add empty
    /// barriers.
    pub fn resolve(&self, nodes: usize) -> usize {
        let requested = match self {
            ShardSpec::Fixed(s) => *s,
            ShardSpec::Auto => std::env::var("P2PGRID_SHARDS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(1),
        };
        requested.clamp(1, nodes.max(1))
    }

    /// Reject a fixed shard count of zero (`Auto` always resolves to at least one shard).
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            ShardSpec::Fixed(0) => Err(ConfigError::ZeroShards),
            _ => Ok(()),
        }
    }
}

/// The churn model of §IV.B: a fixed fraction of the population is *stable* (may serve as home
/// nodes and never departs); the rest may join/leave every scheduling interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// The dynamic factor `df`: the ratio of churning (joined + the same number departed) nodes
    /// to the total population per scheduling interval.  Zero disables churn.
    pub dynamic_factor: f64,
    /// Fraction of nodes that are stable (the paper uses 500 of 1 000).
    pub stable_fraction: f64,
    /// Restrict home nodes to the stable population even when `dynamic_factor` is zero.
    ///
    /// The churn experiments (Fig. 12–14) compare different dynamic factors against a `df = 0`
    /// baseline; for that comparison to be apples-to-apples every point must submit workflows
    /// from the same (stable) home nodes.  The static experiments (Fig. 4–10) leave this off so
    /// every node is a home node, as in the paper.
    pub homes_on_stable_only: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            dynamic_factor: 0.0,
            stable_fraction: 0.5,
            homes_on_stable_only: false,
        }
    }
}

impl ChurnConfig {
    /// A static system (no churn, every node is a home node).
    pub fn none() -> Self {
        ChurnConfig::default()
    }

    /// Churn with the given dynamic factor and the paper's 50% stable population.  Home nodes
    /// are restricted to the stable population (also for `df = 0`) so that churn sweeps are
    /// comparable across dynamic factors.
    pub fn with_dynamic_factor(df: f64) -> Self {
        ChurnConfig {
            dynamic_factor: df,
            homes_on_stable_only: true,
            ..ChurnConfig::default()
        }
    }

    /// True when resource nodes outside the stable population may churn or must not host
    /// workflows — i.e. when the node population has to be split into stable / churnable.
    pub fn splits_population(&self) -> bool {
        self.dynamic_factor > 0.0 || self.homes_on_stable_only
    }

    /// Validate the churn parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.dynamic_factor) {
            return Err(ConfigError::InvalidDynamicFactor(self.dynamic_factor));
        }
        if !(0.0..=1.0).contains(&self.stable_fraction) {
            return Err(ConfigError::InvalidStableFraction(self.stable_fraction));
        }
        Ok(())
    }
}

/// Stochastic per-node failures: every churnable node alternates between an exponentially
/// distributed uptime (mean [`mtbf`](StochasticFaults::mtbf)) and an exponentially distributed
/// repair time (mean [`mttr`](StochasticFaults::mttr)).  A failed node loses every queued and
/// running task it holds; what happens to those tasks is the [`RecoveryPolicy`]'s business.
///
/// The whole failure schedule is pre-drawn from the dedicated [`StreamKind::Faults`] stream
/// (one sub-stream per node) when the scenario is built, so failures are ordinary shard-local
/// events and reports stay byte-identical across shard counts and pool widths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StochasticFaults {
    /// Mean time between failures of one node (exponential uptime; must be positive).
    pub mtbf: SimDuration,
    /// Mean time to repair of one node (exponential downtime; must be positive).
    pub mttr: SimDuration,
    /// Fraction of nodes that never fail (ids `0..stable`).  Home nodes are restricted to
    /// this stable population so a failure never takes a workflow's submission site down.
    pub stable_fraction: f64,
    /// Optional correlated outages striking whole groups of nodes at once (rack/AS failures).
    pub correlated_outage: Option<CorrelatedOutage>,
}

impl StochasticFaults {
    /// Independent per-node failures with the paper's 50% stable population and no
    /// correlated outages.
    pub fn new(mtbf: SimDuration, mttr: SimDuration) -> Self {
        StochasticFaults {
            mtbf,
            mttr,
            stable_fraction: 0.5,
            correlated_outage: None,
        }
    }

    /// Add a correlated-outage process on top of the independent per-node failures.
    pub fn with_outage(mut self, outage: CorrelatedOutage) -> Self {
        self.correlated_outage = Some(outage);
        self
    }

    /// Validate the failure parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let positive = |what: &'static str, d: SimDuration| {
            if d.is_zero() {
                Err(ConfigError::InvalidFault { what, value: 0.0 })
            } else {
                Ok(())
            }
        };
        positive("mtbf", self.mtbf)?;
        positive("mttr", self.mttr)?;
        if !(0.0..=1.0).contains(&self.stable_fraction) {
            return Err(ConfigError::InvalidStableFraction(self.stable_fraction));
        }
        if let Some(outage) = &self.correlated_outage {
            if outage.group_size < 2 {
                return Err(ConfigError::InvalidFault {
                    what: "outage group size (need >= 2)",
                    value: outage.group_size as f64,
                });
            }
            positive("outage mtbf", outage.mtbf)?;
            positive("outage duration", outage.duration)?;
        }
        Ok(())
    }
}

/// A correlated-outage process: the churnable population is chunked into groups of
/// [`group_size`](CorrelatedOutage::group_size) consecutive nodes, and each group is struck
/// by outages arriving as a Poisson process (mean inter-outage time
/// [`mtbf`](CorrelatedOutage::mtbf)).  An outage takes the whole group down for a fixed
/// [`duration`](CorrelatedOutage::duration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedOutage {
    /// Nodes per outage group (>= 2; the last group may be smaller).
    pub group_size: usize,
    /// Mean time between outages of one group (must be positive).
    pub mtbf: SimDuration,
    /// How long an outage keeps its group down (must be positive).
    pub duration: SimDuration,
}

/// How nodes fail — the fault model of a [`GridConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum FaultModel {
    /// No faults at all (the static experiments of Fig. 4–10).
    #[default]
    Off,
    /// The paper's synchronized churn of §IV.B: a fixed fraction of the population is swapped
    /// (same number of departures and joins) every scheduling interval.
    Churn(ChurnConfig),
    /// Stochastic per-node lifetimes (exponential MTBF/MTTR), optionally with correlated
    /// group outages.  The fault model the paper names as future work.
    Stochastic(StochasticFaults),
}

impl FaultModel {
    /// The churn parameters, when this is the churn model.
    pub fn churn(&self) -> Option<&ChurnConfig> {
        match self {
            FaultModel::Churn(c) => Some(c),
            _ => None,
        }
    }

    /// The stochastic-failure parameters, when this is the stochastic model.
    pub fn stochastic(&self) -> Option<&StochasticFaults> {
        match self {
            FaultModel::Stochastic(s) => Some(s),
            _ => None,
        }
    }

    /// True when the node population has to be split into stable / churnable (fallible)
    /// halves — i.e. when some nodes may fail or must not host workflows.
    pub fn splits_population(&self) -> bool {
        match self {
            FaultModel::Off => false,
            FaultModel::Churn(c) => c.splits_population(),
            FaultModel::Stochastic(_) => true,
        }
    }

    /// Fraction of nodes that never fail.  `1.0` when the model is off.
    pub fn stable_fraction(&self) -> f64 {
        match self {
            FaultModel::Off => 1.0,
            FaultModel::Churn(c) => c.stable_fraction,
            FaultModel::Stochastic(s) => s.stable_fraction,
        }
    }

    /// Validate the fault-model parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            FaultModel::Off => Ok(()),
            FaultModel::Churn(c) => c.validate(),
            FaultModel::Stochastic(s) => s.validate(),
        }
    }
}

/// What happens to the tasks a failed (or churned-away) node was holding.
///
/// The policy only concerns tasks that were *running* when their node went down; tasks that
/// were merely queued on the node re-enter the schedule-point queue for free under every
/// policy (they cost nothing but the wasted placement).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// The paper's behaviour: losing a running task fails its whole workflow.
    #[default]
    FailWorkflow,
    /// Re-schedule the lost task, up to `budget` losses per task.  Each loss delays the
    /// task's next dispatch by `backoff × attempt` (linear backoff; `SimDuration::ZERO`
    /// re-queues immediately).  Exceeding the budget fails the workflow.
    Retry {
        /// Maximum number of times one task may be lost before its workflow fails.
        budget: u32,
        /// Base backoff delay; attempt `k` waits `backoff × k` before re-dispatch.
        backoff: SimDuration,
    },
    /// Periodic checkpointing: a lost running task re-enters the queue with only the load
    /// since its last checkpoint remaining (the task checkpoints every `interval` of
    /// execution time on its node).
    Checkpoint {
        /// Execution time between checkpoints (must be positive).
        interval: SimDuration,
    },
    /// Speculative replication: dispatch `copies` replicas of every task to distinct nodes;
    /// the first completion wins and cancels the surviving twins.  A task is only lost when
    /// every replica is lost, and then it simply re-enters the queue.
    Replicate {
        /// Total number of copies per task (>= 2), placement permitting.
        copies: usize,
    },
}

impl RecoveryPolicy {
    /// The retry semantics of the old `reschedule_lost_tasks` boolean: re-queue lost tasks
    /// immediately, with an unlimited budget.
    pub fn unlimited_retry() -> Self {
        RecoveryPolicy::Retry {
            budget: u32::MAX,
            backoff: SimDuration::ZERO,
        }
    }

    /// Validate the policy parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            RecoveryPolicy::FailWorkflow | RecoveryPolicy::Retry { .. } => Ok(()),
            RecoveryPolicy::Checkpoint { interval } => {
                if interval.is_zero() {
                    Err(ConfigError::InvalidRecovery {
                        what: "checkpoint interval",
                        value: 0.0,
                    })
                } else {
                    Ok(())
                }
            }
            RecoveryPolicy::Replicate { copies } => {
                if *copies < 2 {
                    Err(ConfigError::InvalidRecovery {
                        what: "replicate copies (need >= 2)",
                        value: *copies as f64,
                    })
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// The named RNG streams [`Scenario::build`](crate::scenario::Scenario::build) derives from
/// the master seed, in sampling order.
///
/// Every stochastic component of the world draws from its own stream, so perturbing one
/// (e.g. re-seeding the workflow draw) never shifts the randomness of the others.  The
/// [`StreamSeeds`] overrides pin individual streams to a seed other than the master —
/// the plumbing behind the copy-on-write `Scenario::with_*` derivation methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Waxman topology generation (node placement + edge sampling).
    Topology,
    /// Landmark selection for the bandwidth estimator.
    Landmarks,
    /// Per-node capacity sampling.
    Capacity,
    /// Per-node slot-count sampling (heterogeneous resource models).
    Slots,
    /// Workflow DAG generation.
    Workflows,
    /// Gossip protocol initialisation and per-cycle peer selection.
    Gossip,
    /// Churn arrival/departure draws.
    Churn,
    /// Stochastic per-node failure/repair lifetimes and correlated outages.
    Faults,
}

impl StreamKind {
    /// All streams, in the order `Scenario::build` derives them.
    pub const ALL: [StreamKind; 8] = [
        StreamKind::Topology,
        StreamKind::Landmarks,
        StreamKind::Capacity,
        StreamKind::Slots,
        StreamKind::Workflows,
        StreamKind::Gossip,
        StreamKind::Churn,
        StreamKind::Faults,
    ];

    /// The `SimRng::derive` label of this stream (the same labels `Scenario::build` uses).
    pub fn label(self) -> &'static str {
        match self {
            StreamKind::Topology => "topology",
            StreamKind::Landmarks => "landmarks",
            StreamKind::Capacity => "capacity",
            StreamKind::Slots => "slots",
            StreamKind::Workflows => "workflows",
            StreamKind::Gossip => "gossip",
            StreamKind::Churn => "churn",
            StreamKind::Faults => "faults",
        }
    }
}

/// Optional per-stream seed overrides (see [`StreamKind`]).
///
/// Every field defaults to `None`, meaning "derive this stream from the master
/// [`GridConfig::seed`]" — the behaviour (and byte-exact sampling) of a config without
/// overrides.  Setting a field pins that stream to the given seed independently of the
/// master seed.  This is what lets [`Scenario::with_seed`](crate::scenario::Scenario::with_seed)
/// re-seed the cheap streams of a derived world while the expensive topology/landmark
/// streams stay pinned (and their `Arc`'d tables stay shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamSeeds {
    /// Override for the topology stream.
    pub topology: Option<u64>,
    /// Override for the landmark-selection stream.
    pub landmarks: Option<u64>,
    /// Override for the capacity-sampling stream.
    pub capacity: Option<u64>,
    /// Override for the slot-sampling stream.
    pub slots: Option<u64>,
    /// Override for the workflow-generation stream.
    pub workflows: Option<u64>,
    /// Override for the gossip stream.
    pub gossip: Option<u64>,
    /// Override for the churn stream.
    pub churn: Option<u64>,
    /// Override for the stochastic-fault stream.
    pub faults: Option<u64>,
}

impl StreamSeeds {
    /// The override for `kind`, if any.
    pub fn get(&self, kind: StreamKind) -> Option<u64> {
        match kind {
            StreamKind::Topology => self.topology,
            StreamKind::Landmarks => self.landmarks,
            StreamKind::Capacity => self.capacity,
            StreamKind::Slots => self.slots,
            StreamKind::Workflows => self.workflows,
            StreamKind::Gossip => self.gossip,
            StreamKind::Churn => self.churn,
            StreamKind::Faults => self.faults,
        }
    }

    /// Set the override for `kind`.
    pub fn set(&mut self, kind: StreamKind, seed: u64) {
        let slot = match kind {
            StreamKind::Topology => &mut self.topology,
            StreamKind::Landmarks => &mut self.landmarks,
            StreamKind::Capacity => &mut self.capacity,
            StreamKind::Slots => &mut self.slots,
            StreamKind::Workflows => &mut self.workflows,
            StreamKind::Gossip => &mut self.gossip,
            StreamKind::Churn => &mut self.churn,
            StreamKind::Faults => &mut self.faults,
        };
        *slot = Some(seed);
    }
}

/// Where a scenario's workflows come from.
///
/// The default [`Synthetic`](WorkloadSource::Synthetic) source reproduces the paper: every
/// home node submits `workflows_per_node` randomly generated DAGs, sampled from the
/// [`StreamKind::Workflows`] RNG stream.  A [`Trace`](WorkloadSource::Trace) source replays a
/// serialized [`WorkloadSpec`] instead (e.g. a checked-in artifact from `workloads/`): each
/// entry names its DAG, its arrival time and its home-node policy, and `workflows_per_node`
/// is ignored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSource {
    /// Randomly generated workflows (the paper's Table I model).
    Synthetic(WorkflowGeneratorConfig),
    /// A deserialized trace workload replayed verbatim.
    Trace(WorkloadSpec),
}

impl Default for WorkloadSource {
    fn default() -> Self {
        WorkloadSource::Synthetic(WorkflowGeneratorConfig::default())
    }
}

impl WorkloadSource {
    /// The synthetic generator configuration, if this source is synthetic.
    pub fn generator(&self) -> Option<&WorkflowGeneratorConfig> {
        match self {
            WorkloadSource::Synthetic(g) => Some(g),
            WorkloadSource::Trace(_) => None,
        }
    }

    /// Mutable access to the synthetic generator configuration.
    ///
    /// Panics on a [`Trace`](WorkloadSource::Trace) source — this is the convenience used by
    /// tests and examples that tweak generator ranges on the (synthetic) default config.
    pub fn generator_mut(&mut self) -> &mut WorkflowGeneratorConfig {
        match self {
            WorkloadSource::Synthetic(g) => g,
            WorkloadSource::Trace(_) => {
                panic!("generator_mut() called on a trace workload source")
            }
        }
    }

    /// The trace workload, if this source is a trace.
    pub fn trace(&self) -> Option<&WorkloadSpec> {
        match self {
            WorkloadSource::Synthetic(_) => None,
            WorkloadSource::Trace(spec) => Some(spec),
        }
    }
}

/// When synthetic workflows arrive at their home nodes.
///
/// All variants other than the default [`Batch`](ArrivalProcess::Batch) draw their arrival
/// times from the tail of the [`StreamKind::Workflows`] stream (after the DAGs themselves), so
/// enabling an arrival process never perturbs topology, capacities or gossip.  `Batch` draws
/// nothing at all — the default configuration samples byte-identically to the pre-arrival
/// engine.  Arrival times may exceed the horizon; such workflows never enter the system and
/// are not counted as submitted.
///
/// Trace workloads ([`WorkloadSource::Trace`]) carry explicit per-entry arrival times; for
/// them a non-`Batch` process *overrides* those times (same DAGs, resampled arrivals), which
/// is what lets a checked-in workload be replayed under, say, a flash crowd.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Every workflow is submitted at its workload-defined time (time zero for synthetic
    /// workloads — the paper's model).  Samples no randomness.
    #[default]
    Batch,
    /// A homogeneous Poisson process: independent exponential inter-arrival times.
    Poisson {
        /// Mean arrivals per simulated hour (> 0).
        rate_per_hour: f64,
    },
    /// A diurnal (sinusoidally modulated) Poisson process, sampled by thinning: the rate
    /// swings between `base_rate_per_hour` (trough, at time zero) and `peak_rate_per_hour`
    /// once per `period`.
    Diurnal {
        /// Trough arrival rate per hour (>= 0).
        base_rate_per_hour: f64,
        /// Peak arrival rate per hour (>= base, > 0).
        peak_rate_per_hour: f64,
        /// Length of one day (one full swing); must be positive.
        period: SimDuration,
    },
    /// A bursty / flash-crowd process: burst instants form a Poisson process and each burst
    /// submits a heavy-tailed (Pareto) number of workflows simultaneously.
    Bursty {
        /// Mean bursts per simulated hour (> 0).
        bursts_per_hour: f64,
        /// Mean number of workflows per burst (>= 1).
        mean_burst_size: f64,
        /// Pareto tail index of the burst size (> 1 so the mean exists; smaller = heavier
        /// tail.  The classic flash-crowd regime is 1 < shape <= 2: finite mean, infinite
        /// variance).
        pareto_shape: f64,
    },
}

impl ArrivalProcess {
    /// Check every rate/shape parameter, reporting the first problem found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let positive = |what: &'static str, value: f64| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(ConfigError::InvalidArrival { what, value })
            }
        };
        match self {
            ArrivalProcess::Batch => Ok(()),
            ArrivalProcess::Poisson { rate_per_hour } => positive("rate_per_hour", *rate_per_hour),
            ArrivalProcess::Diurnal {
                base_rate_per_hour,
                peak_rate_per_hour,
                period,
            } => {
                if !base_rate_per_hour.is_finite() || *base_rate_per_hour < 0.0 {
                    return Err(ConfigError::InvalidArrival {
                        what: "base_rate_per_hour",
                        value: *base_rate_per_hour,
                    });
                }
                positive("peak_rate_per_hour", *peak_rate_per_hour)?;
                if peak_rate_per_hour < base_rate_per_hour {
                    return Err(ConfigError::InvalidArrival {
                        what: "peak_rate_per_hour (must be >= base)",
                        value: *peak_rate_per_hour,
                    });
                }
                if period.is_zero() {
                    return Err(ConfigError::InvalidArrival {
                        what: "period",
                        value: 0.0,
                    });
                }
                Ok(())
            }
            ArrivalProcess::Bursty {
                bursts_per_hour,
                mean_burst_size,
                pareto_shape,
            } => {
                positive("bursts_per_hour", *bursts_per_hour)?;
                if !mean_burst_size.is_finite() || *mean_burst_size < 1.0 {
                    return Err(ConfigError::InvalidArrival {
                        what: "mean_burst_size",
                        value: *mean_burst_size,
                    });
                }
                if !pareto_shape.is_finite() || *pareto_shape <= 1.0 {
                    return Err(ConfigError::InvalidArrival {
                        what: "pareto_shape",
                        value: *pareto_shape,
                    });
                }
                Ok(())
            }
        }
    }

    /// True when this process never moves an arrival away from its workload-defined time
    /// (and consumes no randomness).
    pub fn is_batch(&self) -> bool {
        matches!(self, ArrivalProcess::Batch)
    }

    /// Sample `n` arrival times in submission order.
    ///
    /// `Batch` returns all zeros without touching `rng`; every other process consumes draws
    /// from `rng` only (deterministic per stream seed).  Times are monotonically
    /// non-decreasing.
    pub(crate) fn sample_times(&self, n: usize, rng: &mut SimRng) -> Vec<SimTime> {
        let mut times = Vec::with_capacity(n);
        match self {
            ArrivalProcess::Batch => times.resize(n, SimTime::ZERO),
            ArrivalProcess::Poisson { rate_per_hour } => {
                let rate_per_sec = rate_per_hour / 3600.0;
                let mut t = 0.0f64;
                for _ in 0..n {
                    t += exponential(rng, rate_per_sec);
                    times.push(SimTime::from_secs_f64(t));
                }
            }
            ArrivalProcess::Diurnal {
                base_rate_per_hour,
                peak_rate_per_hour,
                period,
            } => {
                // Thinning (Lewis & Shedler): candidates at the peak rate, each kept with
                // probability rate(t) / peak.  rate(t) swings base -> peak -> base over one
                // period, trough at t = 0.
                let peak_per_sec = peak_rate_per_hour / 3600.0;
                let base_per_sec = base_rate_per_hour / 3600.0;
                let period_secs = period.as_secs_f64();
                let mut t = 0.0f64;
                while times.len() < n {
                    t += exponential(rng, peak_per_sec);
                    let phase = (t / period_secs) * std::f64::consts::TAU;
                    let rate =
                        base_per_sec + (peak_per_sec - base_per_sec) * 0.5 * (1.0 - phase.cos());
                    if rng.gen_f64() < rate / peak_per_sec {
                        times.push(SimTime::from_secs_f64(t));
                    }
                }
            }
            ArrivalProcess::Bursty {
                bursts_per_hour,
                mean_burst_size,
                pareto_shape,
            } => {
                let rate_per_sec = bursts_per_hour / 3600.0;
                // Pareto(xm, a) has mean xm * a / (a - 1); scale xm so the mean burst size
                // comes out as configured.
                let xm = mean_burst_size * (pareto_shape - 1.0) / pareto_shape;
                let mut t = 0.0f64;
                while times.len() < n {
                    t += exponential(rng, rate_per_sec);
                    let u = (1.0 - rng.gen_f64()).max(f64::MIN_POSITIVE);
                    let size = (xm * u.powf(-1.0 / pareto_shape)).round().max(1.0) as usize;
                    let when = SimTime::from_secs_f64(t);
                    for _ in 0..size.min(n - times.len()) {
                        times.push(when);
                    }
                }
            }
        }
        times
    }
}

/// One exponential inter-arrival draw with the given rate (events per second).
pub(crate) fn exponential(rng: &mut SimRng, rate_per_sec: f64) -> f64 {
    let u = (1.0 - rng.gen_f64()).max(f64::MIN_POSITIVE);
    -u.ln() / rate_per_sec
}

/// Full configuration of one grid-simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Number of peer nodes (Table I: 200–2 000; the headline experiments use 1 000).
    pub nodes: usize,
    /// Workflows submitted per home node ("load factor" in Fig. 7/8; headline experiments: 3).
    pub workflows_per_node: usize,
    /// Node capacity model.
    pub capacity: CapacityModel,
    /// Per-node execution substrate (slot count; the paper's single CPU by default).
    pub resource: ResourceModel,
    /// Where workflows come from: the synthetic Table I generator (default) or a trace.
    pub workload: WorkloadSource,
    /// When synthetic workflows arrive (default: all at time zero, as in the paper).
    pub arrivals: ArrivalProcess,
    /// WAN topology parameters.
    pub waxman: WaxmanConfig,
    /// Mixed gossip protocol parameters.
    pub gossip: MixedGossipConfig,
    /// Scheduler activation period (paper: 15 minutes).
    pub scheduling_interval: SimDuration,
    /// Gossip cycle period (paper: 5 minutes).
    pub gossip_interval: SimDuration,
    /// Metrics sampling period (the figures sample hourly).
    pub metrics_interval: SimDuration,
    /// Total simulated time (paper: 36 hours).
    pub horizon: SimDuration,
    /// Fault model: off (default), the paper's synchronized churn, or stochastic lifetimes.
    pub faults: FaultModel,
    /// What happens to tasks lost to a failed or departed node.
    pub recovery: RecoveryPolicy,
    /// Shard count of the sharded event loop (purely a performance knob; reports are
    /// byte-identical for every shard count).
    pub shards: ShardSpec,
    /// Master seed; every stochastic component derives its own stream from it.
    pub seed: u64,
    /// Per-stream seed overrides (default: all derived from the master seed).
    pub streams: StreamSeeds,
}

impl GridConfig {
    /// The paper's headline configuration (§IV.B, first experiment): 1 000 nodes, 3 workflows
    /// per node, loads of 100–10 000 MI, dependent data of 10–1 000 Mb (CCR ≈ 0.16), 36 hours.
    pub fn paper_default() -> Self {
        GridConfig {
            nodes: 1000,
            workflows_per_node: 3,
            capacity: CapacityModel::default(),
            resource: ResourceModel::default(),
            workload: WorkloadSource::Synthetic(WorkflowGeneratorConfig {
                data_mb: 10.0..=1000.0,
                ..WorkflowGeneratorConfig::default()
            }),
            arrivals: ArrivalProcess::Batch,
            waxman: WaxmanConfig::with_nodes(1000),
            gossip: MixedGossipConfig::default(),
            scheduling_interval: SimDuration::from_mins(15),
            gossip_interval: SimDuration::from_mins(5),
            metrics_interval: SimDuration::from_hours(1),
            horizon: SimDuration::from_hours(36),
            faults: FaultModel::Off,
            recovery: RecoveryPolicy::FailWorkflow,
            shards: ShardSpec::Auto,
            seed: 20100913, // ICPP 2010 started on 13 September 2010.
            streams: StreamSeeds::default(),
        }
    }

    /// A scaled-down configuration for unit/integration tests and quick examples: same model,
    /// far fewer nodes and workflows, shorter horizon.
    pub fn small(nodes: usize) -> Self {
        GridConfig {
            nodes,
            workflows_per_node: 2,
            workload: WorkloadSource::Synthetic(WorkflowGeneratorConfig {
                tasks: 2..=12,
                data_mb: 10.0..=500.0,
                ..WorkflowGeneratorConfig::default()
            }),
            waxman: WaxmanConfig::with_nodes(nodes),
            horizon: SimDuration::from_hours(12),
            ..GridConfig::paper_default()
        }
    }

    /// Override the number of nodes, keeping the topology consistent.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self.waxman.nodes = nodes;
        self
    }

    /// Override the load factor (workflows per home node), as swept in Fig. 7/8.
    pub fn with_load_factor(mut self, workflows_per_node: usize) -> Self {
        self.workflows_per_node = workflows_per_node;
        self
    }

    /// Override the per-task load and per-edge data ranges, as swept in Fig. 9/10 (CCR).
    ///
    /// Only meaningful for the (default) synthetic workload source; panics on a trace.
    pub fn with_load_and_data(
        mut self,
        load_mi: std::ops::RangeInclusive<f64>,
        data_mb: std::ops::RangeInclusive<f64>,
    ) -> Self {
        let generator = self.workload.generator_mut();
        generator.load_mi = load_mi;
        generator.data_mb = data_mb;
        self
    }

    /// Replay a serialized trace workload instead of generating synthetic workflows.
    ///
    /// Each entry of the trace names its DAG, arrival time and home-node policy;
    /// `workflows_per_node` is ignored.  See [`WorkloadSource::Trace`].
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = WorkloadSource::Trace(workload);
        self
    }

    /// Override the arrival process (see [`ArrivalProcess`]; the default `Batch` reproduces
    /// the paper's submit-everything-at-time-zero model).
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Override the per-node slot count (the `ResourceModel` seam; 1 is the paper's model).
    pub fn with_slots_per_node(mut self, slots: usize) -> Self {
        self.resource = ResourceModel::multi_core(slots);
        self
    }

    /// Override the full resource model (heterogeneous slot distributions, preemption).
    pub fn with_resource(mut self, resource: ResourceModel) -> Self {
        self.resource = resource;
        self
    }

    /// Override the churn model, as swept in Fig. 12–14 (shorthand for
    /// `with_faults(FaultModel::Churn(churn))`).
    pub fn with_churn(mut self, churn: ChurnConfig) -> Self {
        self.faults = FaultModel::Churn(churn);
        self
    }

    /// Override the fault model (see [`FaultModel`]).
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Override the recovery policy (see [`RecoveryPolicy`]).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// The churn parameters, when the fault model is [`FaultModel::Churn`].
    pub fn churn(&self) -> Option<&ChurnConfig> {
        self.faults.churn()
    }

    /// Override the shard count of the sharded event loop (see [`ShardSpec`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = ShardSpec::Fixed(shards);
        self
    }

    /// Override the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pin one RNG stream to its own seed, independent of the master seed (see
    /// [`StreamSeeds`]).
    pub fn with_stream_seed(mut self, kind: StreamKind, seed: u64) -> Self {
        self.streams.set(kind, seed);
        self
    }

    /// The effective seed of `kind`: its [`StreamSeeds`] override if set, else the master
    /// seed.  `Scenario::build` seeds the stream as
    /// `SimRng::seed_from_u64(stream_seed(kind)).derive(kind.label())`, so two configs with
    /// equal effective seeds sample that stream byte-identically.
    pub fn stream_seed(&self, kind: StreamKind) -> u64 {
        self.streams.get(kind).unwrap_or(self.seed)
    }

    /// Check the whole configuration, reporting the first problem found.
    ///
    /// [`Scenario::build`](crate::scenario::Scenario::build) calls this before any sampling,
    /// so malformed sweep configurations fail with a [`ConfigError`] message instead of a
    /// panic mid-experiment.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes < 1 {
            return Err(ConfigError::NoNodes);
        }
        if self.waxman.nodes != self.nodes {
            return Err(ConfigError::TopologyMismatch {
                topology: self.waxman.nodes,
                nodes: self.nodes,
            });
        }
        self.faults.validate()?;
        self.recovery.validate()?;
        self.capacity.validate()?;
        self.resource.validate()?;
        self.shards.validate()?;
        if self.scheduling_interval.is_zero() {
            return Err(ConfigError::ZeroInterval("scheduling"));
        }
        if self.gossip_interval.is_zero() {
            return Err(ConfigError::ZeroInterval("gossip"));
        }
        if self.metrics_interval.is_zero() {
            return Err(ConfigError::ZeroInterval("metrics"));
        }
        match &self.workload {
            WorkloadSource::Synthetic(generator) => generator
                .validate()
                .map_err(|e| ConfigError::InvalidWorkload(e.to_string()))?,
            WorkloadSource::Trace(spec) => {
                // Full structural validation (cycles, unknown references, ...) happens when
                // the entries are resolved in `Scenario::build`; here we reject the cases
                // that are knowable without building the DAGs.
                if spec.entry_count() == 0 {
                    return Err(ConfigError::EmptyTrace);
                }
                for entry in &spec.entries {
                    if let p2pgrid_workflow::HomePolicy::Node(node) = entry.home {
                        if node >= self.nodes {
                            return Err(ConfigError::TraceHomeOutOfRange {
                                node,
                                nodes: self.nodes,
                            });
                        }
                    }
                }
            }
        }
        self.arrivals.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::error::ConfigError;

    #[test]
    fn paper_default_matches_table_i() {
        let cfg = GridConfig::paper_default();
        cfg.validate().unwrap();
        assert_eq!(cfg.nodes, 1000);
        assert_eq!(cfg.workflows_per_node, 3);
        assert_eq!(cfg.scheduling_interval, SimDuration::from_mins(15));
        assert_eq!(cfg.gossip_interval, SimDuration::from_mins(5));
        assert_eq!(cfg.horizon, SimDuration::from_hours(36));
        assert_eq!(cfg.capacity.mean(), 6.2);
        let generator = cfg
            .workload
            .generator()
            .expect("paper default is synthetic");
        assert_eq!(*generator.tasks.start(), 2);
        assert_eq!(*generator.tasks.end(), 30);
        assert!(cfg.arrivals.is_batch());
    }

    #[test]
    fn capacity_models_sample_within_their_support() {
        let mut rng = SimRng::seed_from_u64(1);
        let choices = CapacityModel::default();
        for _ in 0..100 {
            let c = choices.sample(&mut rng);
            assert!([1.0, 2.0, 4.0, 8.0, 16.0].contains(&c));
        }
        let uniform = CapacityModel::Uniform(3.5);
        assert_eq!(uniform.sample(&mut rng), 3.5);
        assert_eq!(uniform.mean(), 3.5);
    }

    #[test]
    fn builders_keep_the_config_consistent() {
        let cfg = GridConfig::small(50)
            .with_nodes(80)
            .with_load_factor(4)
            .with_load_and_data(10.0..=1000.0, 100.0..=10_000.0)
            .with_churn(ChurnConfig::with_dynamic_factor(0.2))
            .with_seed(7);
        cfg.validate().unwrap();
        assert_eq!(cfg.nodes, 80);
        assert_eq!(cfg.waxman.nodes, 80);
        assert_eq!(cfg.workflows_per_node, 4);
        assert_eq!(cfg.churn().unwrap().dynamic_factor, 0.2);
        assert_eq!(cfg.seed, 7);
        assert_eq!(*cfg.workload.generator().unwrap().data_mb.end(), 10_000.0);
    }

    #[test]
    fn churn_population_split_rules() {
        // The static experiments use every node as a home node...
        assert!(!ChurnConfig::none().splits_population());
        // ...while the churn sweep keeps the home set fixed to the stable half, even for the
        // df = 0 baseline, so its points are comparable.
        assert!(ChurnConfig::with_dynamic_factor(0.0).splits_population());
        assert!(ChurnConfig::with_dynamic_factor(0.2).splits_population());
        assert!(ChurnConfig::with_dynamic_factor(0.2).homes_on_stable_only);
        assert_eq!(ChurnConfig::with_dynamic_factor(0.2).stable_fraction, 0.5);
        // The FaultModel wrapper delegates to the active model.
        assert!(!FaultModel::Off.splits_population());
        assert_eq!(FaultModel::Off.stable_fraction(), 1.0);
        let churned = FaultModel::Churn(ChurnConfig::with_dynamic_factor(0.2));
        assert!(churned.splits_population());
        assert_eq!(churned.stable_fraction(), 0.5);
        let stochastic = FaultModel::Stochastic(StochasticFaults::new(
            SimDuration::from_hours(4),
            SimDuration::from_mins(30),
        ));
        assert!(stochastic.splits_population());
        assert_eq!(stochastic.stable_fraction(), 0.5);
    }

    #[test]
    fn fault_model_validation_rejects_bad_parameters() {
        let zero_mtbf =
            StochasticFaults::new(SimDuration::ZERO, SimDuration::from_mins(30)).validate();
        assert_eq!(
            zero_mtbf,
            Err(ConfigError::InvalidFault {
                what: "mtbf",
                value: 0.0
            })
        );
        let zero_mttr =
            StochasticFaults::new(SimDuration::from_hours(4), SimDuration::ZERO).validate();
        assert!(matches!(
            zero_mttr,
            Err(ConfigError::InvalidFault { what: "mttr", .. })
        ));
        let mut bad_fraction =
            StochasticFaults::new(SimDuration::from_hours(4), SimDuration::from_mins(30));
        bad_fraction.stable_fraction = 1.5;
        assert_eq!(
            bad_fraction.validate(),
            Err(ConfigError::InvalidStableFraction(1.5))
        );
        let tiny_group =
            StochasticFaults::new(SimDuration::from_hours(4), SimDuration::from_mins(30))
                .with_outage(CorrelatedOutage {
                    group_size: 1,
                    mtbf: SimDuration::from_hours(8),
                    duration: SimDuration::from_mins(10),
                });
        assert!(matches!(
            tiny_group.validate(),
            Err(ConfigError::InvalidFault { .. })
        ));
        // The config surfaces the same errors end to end.
        let cfg = GridConfig::small(8).with_faults(FaultModel::Stochastic(StochasticFaults::new(
            SimDuration::ZERO,
            SimDuration::from_mins(30),
        )));
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::InvalidFault { .. })
        ));
    }

    #[test]
    fn recovery_policy_validation_rejects_bad_parameters() {
        RecoveryPolicy::FailWorkflow.validate().unwrap();
        RecoveryPolicy::unlimited_retry().validate().unwrap();
        RecoveryPolicy::Checkpoint {
            interval: SimDuration::from_mins(10),
        }
        .validate()
        .unwrap();
        RecoveryPolicy::Replicate { copies: 2 }.validate().unwrap();
        assert_eq!(
            RecoveryPolicy::Checkpoint {
                interval: SimDuration::ZERO
            }
            .validate(),
            Err(ConfigError::InvalidRecovery {
                what: "checkpoint interval",
                value: 0.0
            })
        );
        assert!(matches!(
            RecoveryPolicy::Replicate { copies: 1 }.validate(),
            Err(ConfigError::InvalidRecovery { .. })
        ));
        assert!(matches!(
            GridConfig::small(8)
                .with_recovery(RecoveryPolicy::Replicate { copies: 0 })
                .validate(),
            Err(ConfigError::InvalidRecovery { .. })
        ));
        // Defaults reproduce the paper.
        assert_eq!(GridConfig::paper_default().faults, FaultModel::Off);
        assert_eq!(
            GridConfig::paper_default().recovery,
            RecoveryPolicy::FailWorkflow
        );
    }

    #[test]
    fn churn_baseline_restricts_home_nodes_like_the_churned_points() {
        use crate::algorithm::Algorithm;
        use crate::scenario::Scenario;
        let mut cfg = GridConfig::small(12).with_seed(3);
        cfg.workflows_per_node = 1;
        cfg.workload.generator_mut().tasks = 2..=4;
        cfg.horizon = p2pgrid_sim::SimDuration::from_hours(6);
        let all_homes = Scenario::build(cfg.clone())
            .unwrap()
            .simulate_algorithm(Algorithm::Dsmf)
            .run();
        assert_eq!(all_homes.submitted, 12);
        let stable_homes = Scenario::build(cfg.with_churn(ChurnConfig::with_dynamic_factor(0.0)))
            .unwrap()
            .simulate_algorithm(Algorithm::Dsmf)
            .run();
        assert_eq!(stable_homes.submitted, 6);
    }

    #[test]
    fn resource_model_defaults_to_the_papers_single_cpu() {
        assert_eq!(ResourceModel::default().slots, SlotModel::Uniform(1));
        assert!(!ResourceModel::default().is_preemptive());
        assert_eq!(ResourceModel::single_cpu(), ResourceModel::default());
        assert_eq!(
            GridConfig::paper_default().resource.slots,
            SlotModel::Uniform(1)
        );
        let cfg = GridConfig::small(8).with_slots_per_node(4);
        cfg.validate().unwrap();
        assert_eq!(cfg.resource, ResourceModel::multi_core(4));
    }

    #[test]
    fn zero_slots_per_node_is_rejected() {
        assert_eq!(
            GridConfig::small(8).with_slots_per_node(0).validate(),
            Err(ConfigError::ZeroSlots)
        );
    }

    #[test]
    fn slot_models_sample_within_their_support() {
        // Uniform never consumes randomness: two generators stay in lock-step.
        let mut a = SimRng::seed_from_u64(5);
        let b = SimRng::seed_from_u64(5);
        assert_eq!(SlotModel::Uniform(3).sample(&mut a), 3);
        assert_eq!(a.clone().gen_u64(), b.clone().gen_u64());

        let classes = vec![
            SlotClass {
                slots: 1,
                weight: 0.8,
            },
            SlotClass {
                slots: 16,
                weight: 0.2,
            },
        ];
        let model = SlotModel::Weighted(classes);
        model.validate().unwrap();
        let mut rng = SimRng::seed_from_u64(9);
        let mut seen_single = 0usize;
        let mut seen_multi = 0usize;
        for _ in 0..500 {
            match model.sample(&mut rng) {
                1 => seen_single += 1,
                16 => seen_multi += 1,
                other => panic!("sampled slot count {other} outside the class set"),
            }
        }
        // 80/20 split: both classes must appear, the single-core one far more often.
        assert!(seen_multi > 0 && seen_single > 2 * seen_multi);
    }

    #[test]
    fn heterogeneous_preemptive_builders_compose() {
        let model = ResourceModel::heterogeneous(vec![
            SlotClass {
                slots: 1,
                weight: 4.0,
            },
            SlotClass {
                slots: 8,
                weight: 1.0,
            },
        ])
        .preemptive();
        assert!(model.is_preemptive());
        let cfg = GridConfig::small(8).with_resource(model.clone());
        cfg.validate().unwrap();
        assert_eq!(cfg.resource, model);
    }

    #[test]
    fn non_positive_slot_weight_is_rejected() {
        let err = SlotModel::Weighted(vec![SlotClass {
            slots: 2,
            weight: 0.0,
        }])
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::InvalidSlotWeight(0.0));
        assert!(err.to_string().contains("weights must be positive"));
    }

    #[test]
    fn empty_slot_class_set_is_rejected() {
        assert_eq!(
            SlotModel::Weighted(Vec::new()).validate(),
            Err(ConfigError::EmptySlotClasses)
        );
    }

    #[test]
    fn shard_spec_resolves_and_clamps() {
        // Fixed counts resolve to themselves, clamped to the node count.
        assert_eq!(ShardSpec::Fixed(4).resolve(100), 4);
        assert_eq!(ShardSpec::Fixed(8).resolve(3), 3);
        assert_eq!(ShardSpec::Fixed(1).resolve(0), 1);
        // The paper default leaves the knob on Auto (env-driven, 1 when unset).
        assert_eq!(GridConfig::paper_default().shards, ShardSpec::Auto);
        ShardSpec::Auto.validate().unwrap();
        ShardSpec::Fixed(7).validate().unwrap();
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert_eq!(
            GridConfig::small(8).with_shards(0).validate(),
            Err(ConfigError::ZeroShards)
        );
        let cfg = GridConfig::small(8).with_shards(4);
        cfg.validate().unwrap();
        assert_eq!(cfg.shards, ShardSpec::Fixed(4));
    }

    #[test]
    fn invalid_dynamic_factor_is_rejected() {
        let err = GridConfig::small(10)
            .with_churn(ChurnConfig::with_dynamic_factor(1.5))
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidDynamicFactor(1.5));
        assert!(err.to_string().contains("dynamic factor"));
    }

    #[test]
    fn mismatched_topology_is_rejected() {
        let mut cfg = GridConfig::small(10);
        cfg.waxman.nodes = 99;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::TopologyMismatch {
                topology: 99,
                nodes: 10
            })
        );
    }

    #[test]
    fn empty_capacity_choice_set_is_rejected() {
        let mut cfg = GridConfig::small(10);
        cfg.capacity = CapacityModel::Choices(Vec::new());
        assert_eq!(cfg.validate(), Err(ConfigError::EmptyCapacitySet));
        cfg.capacity = CapacityModel::Uniform(-1.0);
        assert_eq!(cfg.validate(), Err(ConfigError::InvalidCapacity(-1.0)));
    }

    #[test]
    fn batch_arrivals_draw_nothing_and_return_zeros() {
        let mut rng = SimRng::seed_from_u64(11);
        let untouched = rng.clone();
        let times = ArrivalProcess::Batch.sample_times(5, &mut rng);
        assert_eq!(times, vec![SimTime::ZERO; 5]);
        // Batch consumed no randomness — the generator is still in lock-step with its clone.
        assert_eq!(rng.gen_u64(), untouched.clone().gen_u64());
    }

    #[test]
    fn stochastic_arrival_processes_are_monotone_and_deterministic() {
        let processes = [
            ArrivalProcess::Poisson {
                rate_per_hour: 60.0,
            },
            ArrivalProcess::Diurnal {
                base_rate_per_hour: 5.0,
                peak_rate_per_hour: 120.0,
                period: SimDuration::from_hours(24),
            },
            ArrivalProcess::Bursty {
                bursts_per_hour: 10.0,
                mean_burst_size: 4.0,
                pareto_shape: 1.5,
            },
        ];
        for process in &processes {
            process.validate().unwrap();
            assert!(!process.is_batch());
            let mut a = SimRng::seed_from_u64(42);
            let mut b = SimRng::seed_from_u64(42);
            let first = process.sample_times(64, &mut a);
            let second = process.sample_times(64, &mut b);
            assert_eq!(first, second, "same seed must give the same arrivals");
            assert_eq!(first.len(), 64);
            assert!(first.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
            assert!(
                first[0] > SimTime::ZERO,
                "stochastic arrivals start after 0"
            );
        }
    }

    #[test]
    fn bursty_arrivals_share_burst_instants() {
        let process = ArrivalProcess::Bursty {
            bursts_per_hour: 2.0,
            mean_burst_size: 8.0,
            pareto_shape: 1.2,
        };
        let mut rng = SimRng::seed_from_u64(3);
        let times = process.sample_times(200, &mut rng);
        let distinct: std::collections::BTreeSet<_> = times.iter().collect();
        // Heavy-tailed bursts: far fewer distinct instants than arrivals.
        assert!(distinct.len() < times.len() / 2);
    }

    #[test]
    fn arrival_process_validation_rejects_bad_parameters() {
        let bad = [
            ArrivalProcess::Poisson { rate_per_hour: 0.0 },
            ArrivalProcess::Poisson {
                rate_per_hour: f64::NAN,
            },
            ArrivalProcess::Diurnal {
                base_rate_per_hour: -1.0,
                peak_rate_per_hour: 10.0,
                period: SimDuration::from_hours(24),
            },
            ArrivalProcess::Diurnal {
                base_rate_per_hour: 20.0,
                peak_rate_per_hour: 10.0,
                period: SimDuration::from_hours(24),
            },
            ArrivalProcess::Diurnal {
                base_rate_per_hour: 1.0,
                peak_rate_per_hour: 10.0,
                period: SimDuration::ZERO,
            },
            ArrivalProcess::Bursty {
                bursts_per_hour: 5.0,
                mean_burst_size: 0.5,
                pareto_shape: 1.5,
            },
            ArrivalProcess::Bursty {
                bursts_per_hour: 5.0,
                mean_burst_size: 4.0,
                pareto_shape: 1.0,
            },
        ];
        for process in &bad {
            let err = process.validate().unwrap_err();
            assert!(
                matches!(err, ConfigError::InvalidArrival { .. }),
                "{process:?} should fail with InvalidArrival, got {err:?}"
            );
        }
    }

    #[test]
    fn synthetic_generator_ranges_are_validated_through_the_config() {
        let mut cfg = GridConfig::small(8);
        cfg.workload.generator_mut().tasks = 0..=5;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::InvalidWorkload(_)));
        assert!(err.to_string().contains("task count"));

        #[allow(clippy::reversed_empty_ranges)]
        {
            let mut cfg = GridConfig::small(8);
            cfg.workload.generator_mut().load_mi = 100.0..=10.0;
            assert!(matches!(
                cfg.validate().unwrap_err(),
                ConfigError::InvalidWorkload(_)
            ));
        }
    }

    #[test]
    fn trace_workloads_are_checked_for_homes_and_emptiness() {
        use p2pgrid_workflow::{shapes, HomePolicy, WorkflowSpec, WorkloadEntry, WorkloadSpec};
        let wf = shapes::diamond(100.0, 500.0, 10.0);
        let spec = WorkflowSpec::from_workflow("diamond", &wf).unwrap();

        let mut trace = WorkloadSpec {
            name: "t".into(),
            workflows: vec![spec],
            entries: Vec::new(),
        };
        let empty = GridConfig::small(8).with_workload(trace.clone());
        assert_eq!(empty.validate(), Err(ConfigError::EmptyTrace));

        trace.entries.push(WorkloadEntry {
            workflow: "diamond".into(),
            submit_at_ms: 0,
            home: HomePolicy::Node(99),
        });
        let out_of_range = GridConfig::small(8).with_workload(trace.clone());
        assert_eq!(
            out_of_range.validate(),
            Err(ConfigError::TraceHomeOutOfRange { node: 99, nodes: 8 })
        );

        trace.entries[0].home = HomePolicy::Auto;
        GridConfig::small(8)
            .with_workload(trace)
            .validate()
            .unwrap();
    }
}
