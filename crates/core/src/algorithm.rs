//! The eight scheduling algorithms compared in Section IV, and their phase pairings.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The workflow scheduling algorithm driving the **first phase** (dispatch from home nodes) and,
/// for the full-ahead baselines, the whole plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// The paper's contribution: dynamic shortest (remaining) makespan first, applied at both
    /// phases.
    Dsmf,
    /// Decentralized HEFT: longest RPM first at both phases.
    Dheft,
    /// Dynamic shortest deadline first: smallest `ms(f) − RPM(t)` slack first at both phases.
    Dsdf,
    /// Decentralized min-min (earliest completion time first); paper pairing: shortest task
    /// first at the second phase.
    MinMin,
    /// Decentralized max-min; paper pairing: longest task first at the second phase.
    MaxMin,
    /// Decentralized sufferage; paper pairing: largest sufferage first at the second phase.
    Sufferage,
    /// Full-ahead HEFT (centralized, global information, FCFS ready sets) — baseline.
    Heft,
    /// Full-ahead shortest makespan first (centralized, FCFS ready sets) — baseline.
    Smf,
}

impl Algorithm {
    /// All eight algorithms, in the order the paper's figure legends list them.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Dheft,
        Algorithm::Heft,
        Algorithm::MaxMin,
        Algorithm::MinMin,
        Algorithm::Dsdf,
        Algorithm::Sufferage,
        Algorithm::Dsmf,
        Algorithm::Smf,
    ];

    /// The decentralized (dual-phase, just-in-time) algorithms only.
    pub const DECENTRALIZED: [Algorithm; 6] = [
        Algorithm::Dsmf,
        Algorithm::Dheft,
        Algorithm::Dsdf,
        Algorithm::MinMin,
        Algorithm::MaxMin,
        Algorithm::Sufferage,
    ];

    /// Display name used in figure legends and report tables.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Dsmf => "DSMF",
            Algorithm::Dheft => "DHEFT",
            Algorithm::Dsdf => "DSDF",
            Algorithm::MinMin => "min-min",
            Algorithm::MaxMin => "max-min",
            Algorithm::Sufferage => "sufferage",
            Algorithm::Heft => "HEFT",
            Algorithm::Smf => "SMF",
        }
    }

    /// Parse a display name back into the algorithm (case-insensitive) — the inverse of
    /// [`Algorithm::name`], used by campaign specs and command-line arguments.
    pub fn parse(s: &str) -> Option<Algorithm> {
        Algorithm::ALL
            .iter()
            .copied()
            .find(|a| a.name().eq_ignore_ascii_case(s))
    }

    /// True for the two full-ahead baselines that plan the entire workflow centrally before
    /// execution starts.
    pub fn is_full_ahead(self) -> bool {
        matches!(self, Algorithm::Heft | Algorithm::Smf)
    }

    /// The second-phase (ready-set) rule the paper pairs with this algorithm.
    pub fn paper_second_phase(self) -> SecondPhase {
        match self {
            Algorithm::Dsmf => SecondPhase::ShortestWorkflowMakespan,
            Algorithm::Dheft => SecondPhase::LongestRpmFirst,
            Algorithm::Dsdf => SecondPhase::ShortestDeadlineFirst,
            Algorithm::MinMin => SecondPhase::ShortestTaskFirst,
            Algorithm::MaxMin => SecondPhase::LongestTaskFirst,
            Algorithm::Sufferage => SecondPhase::LargestSufferageFirst,
            // The full-ahead baselines execute ready tasks first-come-first-served.
            Algorithm::Heft | Algorithm::Smf => SecondPhase::Fcfs,
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The rule a resource node uses to pick the next task from its ready set (the second phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecondPhase {
    /// DSMF / Formula 10: the task whose workflow has the shortest remaining makespan,
    /// tie-broken by longest RPM (Algorithm 2).
    ShortestWorkflowMakespan,
    /// Longest RPM first (decentralized HEFT).
    LongestRpmFirst,
    /// Smallest slack `ms(f) − RPM(t)` first (DSDF).
    ShortestDeadlineFirst,
    /// Shortest task (execution time on this node) first — paired with min-min.
    ShortestTaskFirst,
    /// Longest task first — paired with max-min.
    LongestTaskFirst,
    /// Largest sufferage value (captured at dispatch time) first — paired with sufferage.
    LargestSufferageFirst,
    /// First come, first served — the ablation of the second phase (§IV.B) and the rule used by
    /// the full-ahead baselines.
    Fcfs,
}

impl SecondPhase {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SecondPhase::ShortestWorkflowMakespan => "shortest-workflow-makespan",
            SecondPhase::LongestRpmFirst => "longest-rpm",
            SecondPhase::ShortestDeadlineFirst => "shortest-deadline",
            SecondPhase::ShortestTaskFirst => "shortest-task",
            SecondPhase::LongestTaskFirst => "longest-task",
            SecondPhase::LargestSufferageFirst => "largest-sufferage",
            SecondPhase::Fcfs => "FCFS",
        }
    }
}

impl fmt::Display for SecondPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete scheduler configuration: the first-phase algorithm plus the second-phase rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AlgorithmConfig {
    /// First-phase algorithm.
    pub algorithm: Algorithm,
    /// Second-phase (ready set) rule.
    pub second_phase: SecondPhase,
}

impl AlgorithmConfig {
    /// The pairing used throughout the paper's evaluation.
    pub fn paper_default(algorithm: Algorithm) -> Self {
        AlgorithmConfig {
            algorithm,
            second_phase: algorithm.paper_second_phase(),
        }
    }

    /// The §IV.B ablation: the same first-phase algorithm but a FCFS ready set.
    pub fn with_fcfs_second_phase(algorithm: Algorithm) -> Self {
        AlgorithmConfig {
            algorithm,
            second_phase: SecondPhase::Fcfs,
        }
    }

    /// Label such as `"min-min"` or `"min-min+FCFS"` used in reports.
    pub fn label(&self) -> String {
        if self.second_phase == self.algorithm.paper_second_phase() {
            self.algorithm.name().to_string()
        } else {
            format!("{}+{}", self.algorithm.name(), self.second_phase.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_each_algorithm_once() {
        assert_eq!(Algorithm::ALL.len(), 8);
        let unique: std::collections::HashSet<_> = Algorithm::ALL.iter().collect();
        assert_eq!(unique.len(), 8);
        assert_eq!(Algorithm::DECENTRALIZED.len(), 6);
        assert!(Algorithm::DECENTRALIZED.iter().all(|a| !a.is_full_ahead()));
    }

    #[test]
    fn full_ahead_flags_match_paper() {
        assert!(Algorithm::Heft.is_full_ahead());
        assert!(Algorithm::Smf.is_full_ahead());
        assert!(!Algorithm::Dsmf.is_full_ahead());
        assert!(!Algorithm::MinMin.is_full_ahead());
    }

    #[test]
    fn paper_pairings() {
        assert_eq!(
            Algorithm::Dsmf.paper_second_phase(),
            SecondPhase::ShortestWorkflowMakespan
        );
        assert_eq!(
            Algorithm::MinMin.paper_second_phase(),
            SecondPhase::ShortestTaskFirst
        );
        assert_eq!(
            Algorithm::MaxMin.paper_second_phase(),
            SecondPhase::LongestTaskFirst
        );
        assert_eq!(
            Algorithm::Sufferage.paper_second_phase(),
            SecondPhase::LargestSufferageFirst
        );
        assert_eq!(Algorithm::Heft.paper_second_phase(), SecondPhase::Fcfs);
    }

    #[test]
    fn labels_distinguish_the_fcfs_ablation() {
        assert_eq!(
            AlgorithmConfig::paper_default(Algorithm::Dsmf).label(),
            "DSMF"
        );
        assert_eq!(
            AlgorithmConfig::with_fcfs_second_phase(Algorithm::MinMin).label(),
            "min-min+FCFS"
        );
        assert_eq!(
            AlgorithmConfig::paper_default(Algorithm::Heft).label(),
            "HEFT",
            "FCFS is HEFT's paper default and needs no suffix"
        );
        assert_eq!(format!("{}", Algorithm::Sufferage), "sufferage");
        assert_eq!(format!("{}", SecondPhase::Fcfs), "FCFS");
    }
}
