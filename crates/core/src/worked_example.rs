//! The paper's worked example (Fig. 3): two workflows on one scheduler node.
//!
//! Fig. 3 shows two workflows, A and B, whose entry tasks (A1, B1) have already finished.  The
//! four schedule-point tasks have rest path makespans RPM(A2) = 80, RPM(A3) = 115,
//! RPM(B2) = 65 and RPM(B3) = 60, so the workflows' remaining makespans are 115 and 65 and the
//! DSMF dispatch order is B2, B3, A3, A2 (while plain decreasing-RPM HEFT ordering gives
//! A3, A2, B2, B3).
//!
//! The figure in the paper only prints the per-vertex execution times and per-edge transmission
//! times, not the full adjacency; this module reconstructs a pair of DAGs with the same
//! structure (a 6-task workflow A and a 5-task workflow B, two schedule points each) whose
//! estimated costs reproduce the quoted RPM values exactly under unit average capacity and
//! bandwidth.  Tests in this module and the `examples/paper_example.rs` binary check every
//! quoted number.

use p2pgrid_workflow::{Task, TaskId, Workflow, WorkflowBuilder};

/// Names of the interesting tasks of workflow A, in index order `A1..A6`.
pub const WORKFLOW_A_TASKS: [&str; 6] = ["A1", "A2", "A3", "A4", "A5", "A6"];
/// Names of the interesting tasks of workflow B, in index order `B1..B5`.
pub const WORKFLOW_B_TASKS: [&str; 5] = ["B1", "B2", "B3", "B4", "B5"];

/// Build workflow A of Fig. 3.
///
/// Structure: `A1 → {A2, A3}`, `A2 → A4 → A6`, `A3 → A5 → A6`.  Under unit averages the
/// estimated execution times are the task loads and the estimated transmission times are the
/// edge data sizes, giving RPM(A2) = 80 and RPM(A3) = 115.
pub fn workflow_a() -> Workflow {
    let mut b = WorkflowBuilder::new();
    let a1 = b.add_task(Task::named("A1", 5.0, 0.0));
    let a2 = b.add_task(Task::named("A2", 20.0, 0.0));
    let a3 = b.add_task(Task::named("A3", 40.0, 0.0));
    let a4 = b.add_task(Task::named("A4", 30.0, 0.0));
    let a5 = b.add_task(Task::named("A5", 20.0, 0.0));
    let a6 = b.add_task(Task::named("A6", 10.0, 0.0));
    b.add_dependency(a1, a2, 5.0);
    b.add_dependency(a1, a3, 10.0);
    b.add_dependency(a2, a4, 10.0);
    b.add_dependency(a3, a5, 40.0);
    b.add_dependency(a4, a6, 10.0);
    b.add_dependency(a5, a6, 5.0);
    b.build().expect("workflow A is a valid DAG")
}

/// Build workflow B of Fig. 3.
///
/// Structure: `B1 → {B2, B3}`, `B2 → B4 → B5`, `B3 → B5`, giving RPM(B2) = 65 and
/// RPM(B3) = 60.
pub fn workflow_b() -> Workflow {
    let mut b = WorkflowBuilder::new();
    let b1 = b.add_task(Task::named("B1", 20.0, 0.0));
    let b2 = b.add_task(Task::named("B2", 20.0, 0.0));
    let b3 = b.add_task(Task::named("B3", 30.0, 0.0));
    let b4 = b.add_task(Task::named("B4", 20.0, 0.0));
    let b5 = b.add_task(Task::named("B5", 10.0, 0.0));
    b.add_dependency(b1, b2, 20.0);
    b.add_dependency(b1, b3, 10.0);
    b.add_dependency(b2, b4, 10.0);
    b.add_dependency(b3, b5, 20.0);
    b.add_dependency(b4, b5, 5.0);
    b.build().expect("workflow B is a valid DAG")
}

/// Task ids of the four schedule points, in the order `(A2, A3, B2, B3)`.
pub fn schedule_points() -> (TaskId, TaskId, TaskId, TaskId) {
    (TaskId(1), TaskId(2), TaskId(1), TaskId(2))
}

/// The estimated finish-time matrix of Fig. 3: rows are the schedule points `A2, A3, B2, B3`,
/// columns are the three idle resource nodes `X, Y, Z`.
pub fn finish_time_matrix() -> Vec<Vec<f64>> {
    vec![
        vec![15.0, 10.0, 30.0],
        vec![30.0, 50.0, 40.0],
        vec![50.0, 60.0, 40.0],
        vec![40.0, 20.0, 30.0],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use crate::estimate::{CandidateNode, FinishTimeEstimator};
    use crate::policy::first_phase::{plan_dispatch, DispatchCandidateTask};
    use p2pgrid_workflow::{ExpectedCosts, ProgressTracker, WorkflowAnalysis};

    /// Unit averages: estimated execution times equal the task loads, transmission times equal
    /// the edge data sizes — exactly how Fig. 3 annotates its DAGs.
    fn unit_costs() -> ExpectedCosts {
        ExpectedCosts::new(1.0, 1.0)
    }

    #[test]
    fn rpm_values_match_the_paper() {
        let wa = workflow_a();
        let wb = workflow_b();
        let aa = WorkflowAnalysis::new(&wa, unit_costs());
        let ab = WorkflowAnalysis::new(&wb, unit_costs());
        let (a2, a3, b2, b3) = schedule_points();
        assert_eq!(aa.rpm_secs(a2), 80.0, "RPM(A2)");
        assert_eq!(aa.rpm_secs(a3), 115.0, "RPM(A3)");
        assert_eq!(ab.rpm_secs(b2), 65.0, "RPM(B2)");
        assert_eq!(ab.rpm_secs(b3), 60.0, "RPM(B3)");
    }

    #[test]
    fn remaining_makespans_are_115_and_65_after_the_entries_finish() {
        let wa = workflow_a();
        let wb = workflow_b();
        let aa = WorkflowAnalysis::new(&wa, unit_costs());
        let ab = WorkflowAnalysis::new(&wb, unit_costs());

        let mut pa = ProgressTracker::new(&wa);
        pa.mark_dispatched(wa.entry());
        pa.mark_finished(&wa, wa.entry());
        let mut pb = ProgressTracker::new(&wb);
        pb.mark_dispatched(wb.entry());
        pb.mark_finished(&wb, wb.entry());

        let ms_a = pa
            .schedule_points(&wa)
            .iter()
            .map(|&t| aa.rpm_secs(t))
            .fold(0.0f64, f64::max);
        let ms_b = pb
            .schedule_points(&wb)
            .iter()
            .map(|&t| ab.rpm_secs(t))
            .fold(0.0f64, f64::max);
        assert_eq!(ms_a, 115.0);
        assert_eq!(ms_b, 65.0);
        // The schedule points are exactly {A2, A3} and {B2, B3}.
        assert_eq!(pa.schedule_points(&wa), vec![TaskId(1), TaskId(2)]);
        assert_eq!(pb.schedule_points(&wb), vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn dsmf_dispatch_order_is_b2_b3_a3_a2_end_to_end() {
        // Build the dispatch view exactly as a home node would after A1 and B1 finished.
        let wa = workflow_a();
        let wb = workflow_b();
        let aa = WorkflowAnalysis::new(&wa, unit_costs());
        let ab = WorkflowAnalysis::new(&wb, unit_costs());
        let (a2, a3, b2, b3) = schedule_points();
        let ms_a = aa.rpm_secs(a3).max(aa.rpm_secs(a2));
        let ms_b = ab.rpm_secs(b2).max(ab.rpm_secs(b3));
        let view = |wf: usize, w: &Workflow, analysis: &WorkflowAnalysis, t: TaskId, ms: f64| {
            DispatchCandidateTask {
                workflow: wf,
                task: t,
                load_mi: w.task(t).load_mi,
                image_size_mb: w.task(t).image_size_mb,
                rpm_secs: analysis.rpm_secs(t),
                workflow_ms_secs: ms,
                predecessors: vec![],
            }
        };
        let tasks = vec![
            view(0, &wa, &aa, a2, ms_a),
            view(0, &wa, &aa, a3, ms_a),
            view(1, &wb, &ab, b2, ms_b),
            view(1, &wb, &ab, b3, ms_b),
        ];
        let bw = |a: usize, b: usize| if a == b { f64::INFINITY } else { 1.0 };
        let est = FinishTimeEstimator::new(0, &bw);
        let mut candidates: Vec<CandidateNode> = (1..=3)
            .map(|i| CandidateNode::single_slot(i, 1.0, 0.0))
            .collect();
        let order: Vec<(usize, TaskId)> =
            plan_dispatch(Algorithm::Dsmf, &tasks, &mut candidates, &est)
                .iter()
                .map(|d| (d.workflow, d.task))
                .collect();
        assert_eq!(order, vec![(1, b2), (1, b3), (0, a3), (0, a2)]);

        // And the decreasing-RPM (HEFT-style) ordering is A3, A2, B2, B3.
        let mut candidates2: Vec<CandidateNode> = candidates
            .iter()
            .map(|c| CandidateNode {
                total_load_mi: 0.0,
                ..*c
            })
            .collect();
        let heft_order: Vec<(usize, TaskId)> =
            plan_dispatch(Algorithm::Dheft, &tasks, &mut candidates2, &est)
                .iter()
                .map(|d| (d.workflow, d.task))
                .collect();
        assert_eq!(heft_order, vec![(0, a3), (0, a2), (1, b2), (1, b3)]);
    }

    #[test]
    fn workflows_have_single_entry_and_exit_without_virtual_tasks() {
        let wa = workflow_a();
        let wb = workflow_b();
        assert_eq!(wa.task_count(), 6);
        assert_eq!(wb.task_count(), 5);
        assert!(!wa.task(wa.entry()).is_virtual());
        assert!(!wb.task(wb.exit()).is_virtual());
        assert_eq!(wa.task(wa.entry()).name.as_deref(), Some("A1"));
        assert_eq!(wb.task(wb.exit()).name.as_deref(), Some("B5"));
    }

    #[test]
    fn finish_time_matrix_shape() {
        let m = finish_time_matrix();
        assert_eq!(m.len(), 4);
        assert!(m.iter().all(|row| row.len() == 3));
    }
}
