//! The finish-time estimation model of Eq. (4)–(7) and the target-node rule of Formula (9).
//!
//! All quantities are *relative to the scheduling instant* ("now"): the queuing delay
//! `R(τ, p_h) = l_h / c_h` is how long the candidate node's current backlog will keep its CPU
//! busy, and data transfers towards the candidate start immediately upon dispatch, so the
//! longest transmission delay (LTD, Eq. 4) is simply the slowest of the individual transfers
//! (program image from the home node plus one dependent-data transfer per precedent).  The two
//! delays overlap in time, hence `ST = max(R, LTD)` (Eq. 5) and `FT = ST + et` (Eq. 6/7).
//!
//! ## Multi-core candidates: per-slot execution vs aggregate queue drain
//!
//! A multi-slot peer gossips its *aggregate* capacity (`per-slot rate × slots`) plus its slot
//! count, and the two halves of the model use different rates:
//!
//! * the **queuing delay** divides the backlog by the *aggregate* capacity — all slots drain
//!   the queue concurrently;
//! * the **execution time** divides one task's load by the *per-slot* rate
//!   (`capacity / slots`) — a single task occupies exactly one slot and runs no faster on a
//!   16-core node than on one of its cores.
//!
//! Conflating the two (dividing a single task's load by the aggregate) makes a 16-slot node
//! look 16× faster *for one task* than it is and skews every placement towards multi-core
//! peers; `slots == 1` keeps both rates equal, reproducing the paper's model bit-for-bit.
//!
//! The estimator is deliberately decoupled from the simulation: it sees candidate nodes as
//! `(capacity, slots, total load)` records — exactly what the epidemic gossip's `RSS`
//! provides, stale or not — and network bandwidth through a caller-supplied estimate function
//! (landmark-based for the decentralized algorithms, exact for the full-ahead baselines).

use crate::NodeId;

/// A candidate resource node as seen by a scheduler (one `RSS` record).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateNode {
    /// The node's identifier.
    pub node: NodeId,
    /// Its *aggregate* capacity in MIPS (all execution slots combined).
    pub capacity_mips: f64,
    /// Number of execution slots behind that aggregate (paper: 1).
    pub slots: usize,
    /// Its believed total load (running + ready tasks) in MI.
    pub total_load_mi: f64,
}

impl CandidateNode {
    /// A candidate with the paper's single execution slot.
    pub fn single_slot(node: NodeId, capacity_mips: f64, total_load_mi: f64) -> Self {
        CandidateNode {
            node,
            capacity_mips,
            slots: 1,
            total_load_mi,
        }
    }

    /// The rate one task actually executes at: `capacity / slots`, in MIPS.
    pub fn per_slot_capacity_mips(&self) -> f64 {
        self.capacity_mips / self.slots.max(1) as f64
    }

    /// The queuing delay `R(τ, p_h) = l_h / c_h`, in seconds.  The backlog drains on all slots
    /// concurrently, so this uses the aggregate capacity.
    pub fn queuing_delay_secs(&self) -> f64 {
        if self.capacity_mips <= 0.0 {
            f64::INFINITY
        } else {
            self.total_load_mi / self.capacity_mips
        }
    }

    /// Execution time of a task with `load_mi` on this node, in seconds.  One task runs on one
    /// slot, so this uses the per-slot rate — not the aggregate.
    pub fn execution_secs(&self, load_mi: f64) -> f64 {
        if self.capacity_mips <= 0.0 {
            f64::INFINITY
        } else {
            load_mi / self.per_slot_capacity_mips()
        }
    }

    /// Account for a task of `load_mi` just dispatched to this node (Algorithm 1, line 15:
    /// "Update p_r's state record in RSS(p_s)").
    pub fn add_load(&mut self, load_mi: f64) {
        self.total_load_mi += load_mi;
    }
}

/// One precedent of the task being placed: where its output data currently lives and how much
/// of it must be moved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredecessorData {
    /// Node on which the precedent task executed (so where its output resides).
    pub location: NodeId,
    /// Data volume to transfer, in Mb.
    pub data_mb: f64,
}

/// Finish-time estimator for one scheduling decision site.
pub struct FinishTimeEstimator<'a> {
    home: NodeId,
    bandwidth_mbps: &'a dyn Fn(NodeId, NodeId) -> f64,
}

impl<'a> FinishTimeEstimator<'a> {
    /// Create an estimator for decisions taken at `home`, using the given pairwise bandwidth
    /// estimate (Mb/s).
    pub fn new(home: NodeId, bandwidth_mbps: &'a dyn Fn(NodeId, NodeId) -> f64) -> Self {
        FinishTimeEstimator {
            home,
            bandwidth_mbps,
        }
    }

    /// The home node this estimator plans from.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Time in seconds to move `data_mb` megabits from `from` to `to`.
    pub fn transfer_secs(&self, from: NodeId, to: NodeId, data_mb: f64) -> f64 {
        if from == to || data_mb <= 0.0 {
            return 0.0;
        }
        let bw = (self.bandwidth_mbps)(from, to);
        if bw <= 0.0 {
            f64::INFINITY
        } else {
            data_mb / bw
        }
    }

    /// The longest transmission delay LTD (Eq. 4): the slowest of the concurrent transfers the
    /// task needs before it can start on `target` — its program image from the home node plus
    /// one dependent-data transfer per precedent.
    pub fn longest_transmission_delay_secs(
        &self,
        target: NodeId,
        image_size_mb: f64,
        predecessors: &[PredecessorData],
    ) -> f64 {
        let image = self.transfer_secs(self.home, target, image_size_mb);
        predecessors
            .iter()
            .map(|p| self.transfer_secs(p.location, target, p.data_mb))
            .fold(image, f64::max)
    }

    /// The start time ST (Eq. 5): queuing delay and transmission delay overlap, so the task can
    /// start once both have elapsed.
    pub fn start_time_secs(
        &self,
        candidate: &CandidateNode,
        image_size_mb: f64,
        predecessors: &[PredecessorData],
    ) -> f64 {
        candidate
            .queuing_delay_secs()
            .max(self.longest_transmission_delay_secs(candidate.node, image_size_mb, predecessors))
    }

    /// The finish time FT (Eq. 6/7), in seconds from "now".
    pub fn finish_time_secs(
        &self,
        candidate: &CandidateNode,
        load_mi: f64,
        image_size_mb: f64,
        predecessors: &[PredecessorData],
    ) -> f64 {
        self.start_time_secs(candidate, image_size_mb, predecessors)
            + candidate.execution_secs(load_mi)
    }

    /// Formula (9): the index (into `candidates`) of the node with the earliest estimated finish
    /// time, together with that finish time.  Ties break towards the lower node id so decisions
    /// are deterministic.  Returns `None` when `candidates` is empty.
    pub fn best_candidate(
        &self,
        candidates: &[CandidateNode],
        load_mi: f64,
        image_size_mb: f64,
        predecessors: &[PredecessorData],
    ) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in candidates.iter().enumerate() {
            let ft = self.finish_time_secs(c, load_mi, image_size_mb, predecessors);
            let better = match best {
                None => true,
                Some((bi, bft)) => {
                    ft < bft - 1e-12 || ((ft - bft).abs() <= 1e-12 && c.node < candidates[bi].node)
                }
            };
            if better {
                best = Some((i, ft));
            }
        }
        best
    }

    /// The completion-time matrix `CT[task][candidate]` used by the min-min / max-min /
    /// sufferage heuristics.
    pub fn completion_matrix(
        &self,
        tasks: &[(f64, f64, Vec<PredecessorData>)],
        candidates: &[CandidateNode],
    ) -> Vec<Vec<f64>> {
        tasks
            .iter()
            .map(|(load, image, preds)| {
                candidates
                    .iter()
                    .map(|c| self.finish_time_secs(c, *load, *image, preds))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform 1 Mb/s bandwidth between distinct nodes.
    fn unit_bw(a: NodeId, b: NodeId) -> f64 {
        if a == b {
            f64::INFINITY
        } else {
            1.0
        }
    }

    #[test]
    fn queuing_delay_and_execution_follow_load_over_capacity() {
        let c = CandidateNode::single_slot(3, 4.0, 200.0);
        assert_eq!(c.queuing_delay_secs(), 50.0);
        assert_eq!(c.execution_secs(100.0), 25.0);
        let dead = CandidateNode::single_slot(0, 0.0, 0.0);
        assert_eq!(dead.queuing_delay_secs(), f64::INFINITY);
    }

    #[test]
    fn ltd_takes_the_slowest_concurrent_transfer() {
        let est = FinishTimeEstimator::new(0, &unit_bw);
        let preds = [
            PredecessorData {
                location: 1,
                data_mb: 30.0,
            },
            PredecessorData {
                location: 2,
                data_mb: 80.0,
            },
        ];
        // Image from home (0 -> 5): 10 s; preds: 30 s and 80 s; the slowest (80) wins.
        assert_eq!(est.longest_transmission_delay_secs(5, 10.0, &preds), 80.0);
        // If the target holds the big predecessor's data locally, only 30 s and 10 s remain.
        let preds_local = [
            PredecessorData {
                location: 1,
                data_mb: 30.0,
            },
            PredecessorData {
                location: 5,
                data_mb: 80.0,
            },
        ];
        assert_eq!(
            est.longest_transmission_delay_secs(5, 10.0, &preds_local),
            30.0
        );
        // No predecessors: only the image matters; on the home node itself even that is free.
        assert_eq!(est.longest_transmission_delay_secs(5, 10.0, &[]), 10.0);
        assert_eq!(est.longest_transmission_delay_secs(0, 10.0, &[]), 0.0);
    }

    #[test]
    fn start_time_is_max_of_queue_and_transfers() {
        let est = FinishTimeEstimator::new(0, &unit_bw);
        let busy = CandidateNode {
            node: 2,
            capacity_mips: 1.0,
            slots: 1,
            total_load_mi: 500.0, // 500 s of queue
        };
        let idle = CandidateNode::single_slot(2, 1.0, 0.0);
        let preds = [PredecessorData {
            location: 1,
            data_mb: 100.0,
        }];
        assert_eq!(est.start_time_secs(&busy, 10.0, &preds), 500.0);
        assert_eq!(est.start_time_secs(&idle, 10.0, &preds), 100.0);
    }

    #[test]
    fn finish_time_adds_execution_on_top_of_start() {
        let est = FinishTimeEstimator::new(0, &unit_bw);
        let c = CandidateNode {
            node: 1,
            capacity_mips: 2.0,
            slots: 1,
            total_load_mi: 100.0, // 50 s queue
        };
        // LTD = image 20 Mb / 1 Mb/s = 20 s < queue 50 s; execution = 300 / 2 = 150 s.
        assert_eq!(est.finish_time_secs(&c, 300.0, 20.0, &[]), 200.0);
    }

    #[test]
    fn best_candidate_implements_formula_9() {
        let est = FinishTimeEstimator::new(0, &unit_bw);
        let candidates = [
            CandidateNode::single_slot(1, 1.0, 0.0),     // exec 100
            CandidateNode::single_slot(2, 4.0, 0.0),     // exec 25
            CandidateNode::single_slot(3, 16.0, 8000.0), // queue 500
        ];
        let (idx, ft) = est.best_candidate(&candidates, 100.0, 0.0, &[]).unwrap();
        assert_eq!(candidates[idx].node, 2);
        assert_eq!(ft, 25.0);
        assert!(est.best_candidate(&[], 100.0, 0.0, &[]).is_none());
    }

    #[test]
    fn best_candidate_accounts_for_data_locality() {
        // Node 9 is slower but already holds the predecessor's large output; node 2 is faster
        // but must pull 1 000 Mb across a 1 Mb/s link.  Locality must win (the paper's
        // "node locality issue" in §III.D).
        let est = FinishTimeEstimator::new(0, &unit_bw);
        let candidates = [
            CandidateNode::single_slot(2, 16.0, 0.0),
            CandidateNode::single_slot(9, 2.0, 0.0),
        ];
        let preds = [PredecessorData {
            location: 9,
            data_mb: 1000.0,
        }];
        let (idx, _) = est.best_candidate(&candidates, 160.0, 0.0, &preds).unwrap();
        assert_eq!(candidates[idx].node, 9);
    }

    #[test]
    fn ties_break_towards_lower_node_id() {
        let est = FinishTimeEstimator::new(0, &unit_bw);
        let candidates = [
            CandidateNode::single_slot(7, 2.0, 0.0),
            CandidateNode::single_slot(3, 2.0, 0.0),
        ];
        let (idx, _) = est.best_candidate(&candidates, 100.0, 0.0, &[]).unwrap();
        assert_eq!(candidates[idx].node, 3);
    }

    #[test]
    fn add_load_updates_subsequent_estimates() {
        let est = FinishTimeEstimator::new(0, &unit_bw);
        let mut c = CandidateNode::single_slot(1, 2.0, 0.0);
        assert_eq!(est.finish_time_secs(&c, 100.0, 0.0, &[]), 50.0);
        c.add_load(100.0);
        assert_eq!(est.finish_time_secs(&c, 100.0, 0.0, &[]), 100.0);
    }

    #[test]
    fn completion_matrix_matches_individual_estimates() {
        let est = FinishTimeEstimator::new(0, &unit_bw);
        let candidates = [
            CandidateNode::single_slot(1, 1.0, 0.0),
            CandidateNode::single_slot(2, 2.0, 100.0),
        ];
        let tasks = vec![
            (100.0, 0.0, vec![]),
            (
                400.0,
                0.0,
                vec![PredecessorData {
                    location: 1,
                    data_mb: 50.0,
                }],
            ),
        ];
        let m = est.completion_matrix(&tasks, &candidates);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].len(), 2);
        assert_eq!(
            m[0][0],
            est.finish_time_secs(&candidates[0], 100.0, 0.0, &[])
        );
        assert_eq!(
            m[1][1],
            est.finish_time_secs(&candidates[1], 400.0, 0.0, &tasks[1].2)
        );
    }

    #[test]
    fn one_16_slot_node_is_not_16_single_slot_nodes_for_one_task() {
        // The "capacity illusion" regression: a 16-slot node and a single-slot node with the
        // same 16 MIPS aggregate must yield *different* single-task finish estimates — the
        // multi-core peer runs one task at 1 MIPS (one slot), the single-core peer at 16 MIPS.
        let est = FinishTimeEstimator::new(0, &unit_bw);
        let multi = CandidateNode {
            node: 1,
            capacity_mips: 16.0,
            slots: 16,
            total_load_mi: 0.0,
        };
        let single = CandidateNode::single_slot(2, 16.0, 0.0);
        assert_eq!(multi.per_slot_capacity_mips(), 1.0);
        assert_eq!(single.per_slot_capacity_mips(), 16.0);
        let ft_multi = est.finish_time_secs(&multi, 1600.0, 0.0, &[]);
        let ft_single = est.finish_time_secs(&single, 1600.0, 0.0, &[]);
        assert_eq!(ft_multi, 1600.0);
        assert_eq!(ft_single, 100.0);
        // Formula 9 therefore places a single long task on the fast single core...
        let (idx, _) = est
            .best_candidate(&[multi, single], 1600.0, 0.0, &[])
            .unwrap();
        assert_eq!([multi, single][idx].node, 2);
        // ...while the queue-drain half still credits the multi-core node's aggregate: under a
        // heavy backlog the 16 slots drain 16× faster, so it wins the queued comparison.
        let multi_busy = CandidateNode {
            total_load_mi: 64_000.0,
            ..multi
        };
        let single_busy = CandidateNode {
            total_load_mi: 64_000.0,
            ..single
        };
        assert_eq!(multi_busy.queuing_delay_secs(), 4000.0);
        assert_eq!(single_busy.queuing_delay_secs(), 4000.0);
        let (idx, _) = est
            .best_candidate(&[multi_busy, single_busy], 16.0, 0.0, &[])
            .unwrap();
        assert_eq!(
            [multi_busy, single_busy][idx].node,
            2,
            "equal queues: per-slot execution still favours the single core"
        );
    }

    #[test]
    fn single_slot_candidates_reproduce_the_paper_model_exactly() {
        // slots == 1 must not perturb a single bit of the original arithmetic.
        let c = CandidateNode::single_slot(3, 4.0, 200.0);
        assert_eq!(c.per_slot_capacity_mips().to_bits(), 4.0f64.to_bits());
        assert_eq!(c.execution_secs(100.0).to_bits(), 25.0f64.to_bits());
        assert_eq!(c.queuing_delay_secs().to_bits(), 50.0f64.to_bits());
    }

    #[test]
    fn zero_bandwidth_means_unreachable() {
        let no_bw = |_a: NodeId, _b: NodeId| 0.0;
        let est = FinishTimeEstimator::new(0, &no_bw);
        assert_eq!(est.transfer_secs(0, 1, 10.0), f64::INFINITY);
        assert_eq!(
            est.transfer_secs(1, 1, 10.0),
            0.0,
            "local transfers never hit the network"
        );
    }
}
