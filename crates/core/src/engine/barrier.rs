//! Window-barrier bookkeeping for the sharded event loop.
//!
//! While a time window executes, shards run concurrently and must not touch shared state
//! (workflow progress, metrics) or call observers — both would make results depend on shard
//! count and interleaving.  Instead each shard records what happened into two per-shard
//! buffers, and the barrier replays them in a *canonical* order that no partitioning can
//! perturb:
//!
//! * [`ArrivalNotice`]s — workflow arrivals that must flip the workflow's `arrived` flag and
//!   count a submission — are merged and sorted by `(time, workflow)` and applied *before* the
//!   window's completion notices (nothing completes before it arrives);
//! * [`CompletionNotice`]s — task completions that must update workflow state — are merged and
//!   sorted by `(time, workflow, task)` before being applied, so the floating-point
//!   accumulation order inside the metrics is identical for every shard count;
//! * [`BufferedEvent`]s — observer callbacks — are merged and sorted by
//!   `(time, node, per-shard emission sequence)`.  A node's events are always processed by
//!   exactly one shard in a causally fixed order, so the per-shard sequence preserves each
//!   node's relative order while the global node id canonicalises the order *across* nodes.

use crate::NodeId;
use p2pgrid_sim::SimTime;
use p2pgrid_workflow::TaskId;

/// A workflow arrival recorded inside a window (its `WorkflowArrival` event fired on the home
/// node's shard), applied to workflow state and metrics at the barrier — before any completion
/// notice of the same window, since nothing can complete before it arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ArrivalNotice {
    /// Arrival instant.
    pub time: SimTime,
    /// Global workflow index.
    pub wf: usize,
}

/// Sort arrival notices into the canonical application order: `(time, workflow)`.  Each
/// workflow arrives exactly once, so the key is unique and the order total.
pub(crate) fn sort_arrivals(arrivals: &mut [ArrivalNotice]) {
    arrivals.sort_unstable_by_key(|a| (a.time, a.wf));
}

/// A task completion recorded inside a window, applied to workflow state at the barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CompletionNotice {
    /// Completion instant.
    pub time: SimTime,
    /// Global workflow index.
    pub wf: usize,
    /// The completed task.
    pub task: TaskId,
    /// Node the task ran on (becomes the task's output location).
    pub node: NodeId,
    /// The completing run's load in MI — what the barrier books as wasted work when this
    /// notice turns out to be a redundant replica completion.
    pub load_mi: f64,
}

/// Sort notices into the canonical application order: `(time, workflow, task, node)`.
///
/// Without replication a `(workflow, task)` pair completes at most once per window — re-
/// dispatch of lost tasks only happens at barriers — so `(time, workflow, task)` is already
/// unique.  Under `RecoveryPolicy::Replicate` two replicas of the same task can complete in
/// the same window (the earlier one wins, the later is booked as wasted work); they
/// necessarily ran on distinct nodes, so the node id makes the key unique and the order
/// total again.
pub(crate) fn sort_notices(notices: &mut [CompletionNotice]) {
    notices.sort_unstable_by_key(|n| (n.time, n.wf, n.task, n.node));
}

/// What a [`FaultRecord`] reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FaultKind {
    /// The node went down (stochastic failure).  Follows the node's `Lost` records.
    Down,
    /// The node came back up (stochastic repair).
    Up,
    /// A task was resident on the node when it went down.  `running` tasks carry their
    /// execution timing so the barrier can book wasted work and compute checkpoint residues;
    /// queued tasks carry zeros.
    Lost {
        /// Global workflow index.
        wf: usize,
        /// The lost task.
        task: TaskId,
        /// True when the task held an execution slot (vs. merely queued).
        running: bool,
        /// Full execution time of the run on this node, in seconds.
        total_secs: f64,
        /// Execution time already spent when the node died, in seconds.
        executed_secs: f64,
        /// The node's per-slot rate in MIPS (converts seconds to MI).
        rate_mips: f64,
    },
}

/// A shard-local fault event recorded inside a window, applied to recovery state at the
/// barrier.  Sorted like [`BufferedEvent`]s: `(time, node, seq)` — one node belongs to exactly
/// one shard, so the per-shard counter preserves each node's causal order while the node id
/// canonicalises across nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FaultRecord {
    /// When the transition happened.
    pub time: SimTime,
    /// The failing / repaired node.
    pub node: NodeId,
    /// The owning shard's monotone fault counter.
    pub seq: u64,
    /// What happened.
    pub kind: FaultKind,
}

/// Sort fault records into the canonical application order: `(time, node, seq)`.
pub(crate) fn sort_faults(records: &mut [FaultRecord]) {
    records.sort_unstable_by_key(|r| (r.time, r.node, r.seq));
}

/// Which observer hook a buffered event replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BufferedKind {
    /// A task occupied an execution slot (`on_task_started`).
    Started {
        /// Global workflow index.
        wf: usize,
        /// The started task.
        task: TaskId,
    },
    /// A task finished executing (`on_task_finished`, possibly followed by
    /// `on_workflow_completed` for the exit task).
    Finished {
        /// Global workflow index.
        wf: usize,
        /// The finished task.
        task: TaskId,
    },
    /// A running task was displaced by a higher-priority arrival (`on_task_displaced`).
    Displaced {
        /// Global workflow index.
        wf: usize,
        /// The displaced task.
        task: TaskId,
    },
    /// A workflow arrived at its home node (`on_workflow_submitted`; the event's `node` is the
    /// home node).  Only emitted for arrivals after time zero — time-zero submissions are
    /// announced before the first window, as in the paper's batch model.
    Submitted {
        /// Global workflow index.
        wf: usize,
    },
    /// A task was lost with its node (`on_task_lost`; the event's `node` is the dead node).
    Lost {
        /// Global workflow index.
        wf: usize,
        /// The lost task.
        task: TaskId,
    },
    /// The node went down (`on_node_departed`, stochastic failure path; churn departures are
    /// barrier-side and emit directly).
    Departed,
    /// The node came back up (`on_node_joined`, stochastic repair path).
    Joined,
}

/// One observer callback recorded during a window, replayed at the barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BufferedEvent {
    /// Virtual time the transition happened.
    pub time: SimTime,
    /// The node it happened on.
    pub node: NodeId,
    /// The emitting shard's monotone emission counter; orders events of the *same node*
    /// (a node's events all carry the same shard's counter, so the order is shard-count
    /// independent).
    pub seq: u64,
    /// Which hook to replay.
    pub kind: BufferedKind,
}

/// Sort buffered observations into the canonical replay order: `(time, node, seq)`.
pub(crate) fn sort_observations(events: &mut [BufferedEvent]) {
    events.sort_unstable_by_key(|e| (e.time, e.node, e.seq));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_sort_by_time_then_workflow() {
        let t = SimTime::from_secs;
        let mut arrivals = vec![
            ArrivalNotice { time: t(9), wf: 0 },
            ArrivalNotice { time: t(2), wf: 5 },
            ArrivalNotice { time: t(2), wf: 1 },
        ];
        sort_arrivals(&mut arrivals);
        let order: Vec<usize> = arrivals.iter().map(|a| a.wf).collect();
        assert_eq!(order, vec![1, 5, 0]);
    }

    #[test]
    fn notices_sort_by_time_then_workflow_then_task() {
        let t = SimTime::from_secs;
        let mut notices = vec![
            CompletionNotice {
                time: t(5),
                wf: 1,
                task: TaskId(0),
                node: 3,
                load_mi: 0.0,
            },
            CompletionNotice {
                time: t(2),
                wf: 9,
                task: TaskId(4),
                node: 0,
                load_mi: 0.0,
            },
            CompletionNotice {
                time: t(5),
                wf: 0,
                task: TaskId(2),
                node: 1,
                load_mi: 0.0,
            },
            CompletionNotice {
                time: t(5),
                wf: 0,
                task: TaskId(1),
                node: 2,
                load_mi: 0.0,
            },
        ];
        sort_notices(&mut notices);
        let order: Vec<(u64, usize, TaskId)> = notices
            .iter()
            .map(|n| (n.time.as_millis() / 1000, n.wf, n.task))
            .collect();
        assert_eq!(
            order,
            vec![
                (2, 9, TaskId(4)),
                (5, 0, TaskId(1)),
                (5, 0, TaskId(2)),
                (5, 1, TaskId(0)),
            ]
        );
    }

    #[test]
    fn observations_interleave_nodes_canonically_but_keep_per_node_order() {
        let t = SimTime::from_secs(1);
        // Node 7's events carry seqs from a "large" shard, node 2's from a singleton shard;
        // the merge must order by node id first, then by each node's own sequence.
        let mut events = vec![
            BufferedEvent {
                time: t,
                node: 7,
                seq: 11,
                kind: BufferedKind::Finished {
                    wf: 0,
                    task: TaskId(0),
                },
            },
            BufferedEvent {
                time: t,
                node: 2,
                seq: 1,
                kind: BufferedKind::Started {
                    wf: 1,
                    task: TaskId(1),
                },
            },
            BufferedEvent {
                time: t,
                node: 7,
                seq: 4,
                kind: BufferedKind::Started {
                    wf: 0,
                    task: TaskId(0),
                },
            },
            BufferedEvent {
                time: SimTime::ZERO,
                node: 9,
                seq: 99,
                kind: BufferedKind::Displaced {
                    wf: 2,
                    task: TaskId(2),
                },
            },
        ];
        sort_observations(&mut events);
        let order: Vec<(NodeId, u64)> = events.iter().map(|e| (e.node, e.seq)).collect();
        assert_eq!(order, vec![(9, 99), (2, 1), (7, 4), (7, 11)]);
    }

    #[test]
    fn replica_twin_completions_tie_break_on_node() {
        let t = SimTime::from_secs(4);
        let mut notices = vec![
            CompletionNotice {
                time: t,
                wf: 0,
                task: TaskId(1),
                node: 8,
                load_mi: 100.0,
            },
            CompletionNotice {
                time: t,
                wf: 0,
                task: TaskId(1),
                node: 3,
                load_mi: 100.0,
            },
        ];
        sort_notices(&mut notices);
        assert_eq!(notices[0].node, 3, "same (time, wf, task): node id decides");
    }

    #[test]
    fn fault_records_sort_by_time_node_then_seq() {
        let t = SimTime::from_secs;
        let mut records = vec![
            FaultRecord {
                time: t(3),
                node: 5,
                seq: 9,
                kind: FaultKind::Down,
            },
            FaultRecord {
                time: t(3),
                node: 5,
                seq: 7,
                kind: FaultKind::Lost {
                    wf: 0,
                    task: TaskId(0),
                    running: true,
                    total_secs: 10.0,
                    executed_secs: 4.0,
                    rate_mips: 2.0,
                },
            },
            FaultRecord {
                time: t(1),
                node: 9,
                seq: 0,
                kind: FaultKind::Up,
            },
        ];
        sort_faults(&mut records);
        let order: Vec<(NodeId, u64)> = records.iter().map(|r| (r.node, r.seq)).collect();
        assert_eq!(order, vec![(9, 0), (5, 7), (5, 9)]);
    }
}
