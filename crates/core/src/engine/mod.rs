//! The grid engine: the event loop driving one end-to-end P2P-grid simulation.
//!
//! One engine run reproduces the paper's experimental procedure:
//!
//! 1. A Waxman WAN topology is generated and its pairwise bottleneck bandwidths computed
//!    (the ground truth on which [`transfer::TransferModel`] times migrations).
//! 2. Every node receives a capacity from Table I's {1, 2, 4, 8, 16} MIPS set — and, through
//!    the [`ResourceModel`](crate::config::ResourceModel) seam, a number of execution slots —
//!    and the home nodes receive their workflows at time zero.
//! 3. The **mixed gossip protocol** runs every five minutes, giving every node a bounded `RSS`
//!    of peer states and estimates of the average capacity / bandwidth.
//! 4. The **first scheduling phase** runs every fifteen minutes on every home node: schedule
//!    points are prioritised and dispatched per the configured [`Scheduler`] (Algorithm 1 for
//!    DSMF), program images and dependent data start flowing to the chosen resource nodes.
//! 5. The **second scheduling phase** runs on every resource node whenever an execution slot
//!    frees up: the data-complete ready task with the smallest scheduler
//!    [`ReadyKey`](crate::policy::second_phase::ReadyKey) is popped from the node's indexed
//!    [`node::ReadySet`] and executed for `load / capacity` seconds.
//! 6. Under churn, a `df` fraction of the churnable population leaves and (re-)joins every
//!    scheduling interval; tasks resident on departed nodes are lost and their workflows fail
//!    (or are re-scheduled if the future-work flag is enabled).
//! 7. Throughput, ACT and AE are sampled hourly, exactly like the paper's figures.
//!
//! Steps 1–2 (and every other seed-derived sample) live in
//! [`Scenario::build`](crate::scenario::Scenario::build) so a sweep pays for them once; the
//! event loop itself runs inside a crate-private session type, which the public
//! [`Simulation`](crate::simulation::Simulation) handle drives one event at a time.  Every
//! externally meaningful transition is mirrored to the session's registered
//! [`Observer`](crate::observer)s — [`node`] (the indexed ready set and slot
//! runtime) and [`transfer`] are exported for benches and tooling; everything else stays
//! crate-private.

pub mod node;
pub mod transfer;
pub(crate) mod workflow;

use crate::config::GridConfig;
use crate::estimate::{CandidateNode, FinishTimeEstimator, PredecessorData};
use crate::fullahead::PlanInput;
use crate::observer::{GridSample, Observer};
use crate::policy::first_phase::DispatchCandidateTask;
use crate::policy::second_phase::ReadyTaskView;
use crate::report::SimulationReport;
use crate::scenario::Scenario;
use crate::scheduler::Scheduler;
use crate::NodeId;
use node::{NodeRuntime, ReadyEntry};
use p2pgrid_gossip::{LocalNodeState, MixedGossip};
use p2pgrid_metrics::{WorkflowMetrics, WorkflowOutcome, WorkflowRecord};
use p2pgrid_sim::{EventHandler, SimControl, SimDuration, SimRng, SimTime, Simulator};
use p2pgrid_topology::LandmarkEstimator;
use p2pgrid_workflow::{ExpectedCosts, TaskId, WorkflowAnalysis};
use std::sync::Arc;
use transfer::TransferModel;
use workflow::WorkflowRuntime;

/// Events of the grid simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GridEvent {
    /// Run one mixed-gossip cycle on every alive node.
    GossipCycle,
    /// Run the churn step and the first scheduling phase on every home node.
    SchedulingCycle,
    /// Sample throughput / ACT / AE.
    MetricsSample,
    /// All input data of a dispatched task has arrived at its resource node.
    DataReady {
        node: NodeId,
        epoch: u64,
        wf: usize,
        task: TaskId,
    },
    /// A running task finished on its resource node.
    TaskCompleted {
        node: NodeId,
        epoch: u64,
        wf: usize,
        task: TaskId,
        /// Run generation the completion belongs to; a preemption of the same task bumps the
        /// generation, turning the displaced run's in-flight completion event stale.
        run: u64,
    },
}

/// The observers registered on one session, passed down the engine call tree so every hook
/// fires at the exact transition it describes.  Observers only ever receive `&mut self`
/// callbacks with copied event data — they cannot reach engine state, so a run with observers
/// attached stays byte-identical to the same run without them.
pub(crate) struct Observers<'a, 'obs>(pub(crate) &'a mut [&'obs mut dyn Observer]);

impl Observers<'_, '_> {
    fn emit(&mut self, mut f: impl FnMut(&mut dyn Observer)) {
        for o in self.0.iter_mut() {
            f(&mut **o);
        }
    }
}

pub(crate) struct EngineState {
    config: GridConfig,
    scheduler: Box<dyn Scheduler>,
    transfer: Arc<TransferModel>,
    landmarks: Arc<LandmarkEstimator>,
    gossip: MixedGossip,
    gossip_rng: SimRng,
    churn_rng: SimRng,
    nodes: Vec<NodeRuntime>,
    workflows: Vec<WorkflowRuntime>,
    home_of: Arc<Vec<Vec<usize>>>,
    metrics: WorkflowMetrics,
    next_seq: u64,
    next_run: u64,
    dispatched_tasks: u64,
    executed_tasks: u64,
}

impl EngineState {
    /// Clone the scenario's mutable runtime state into a fresh session state and run the
    /// scheduler's full-ahead planning pass (HEFT / SMF plan centrally before execution).
    pub(crate) fn from_scenario(scenario: &Scenario, scheduler: Box<dyn Scheduler>) -> Self {
        let world = scenario.world();
        let nodes = world.nodes.clone();
        let mut workflows = (*world.workflows).clone();
        let mut metrics = WorkflowMetrics::new(scheduler.label());
        for _ in 0..workflows.len() {
            metrics.record_submission();
        }

        {
            let inputs: Vec<PlanInput<'_>> = workflows
                .iter()
                .map(|w| PlanInput {
                    home: w.home,
                    workflow: &w.workflow,
                })
                .collect();
            let candidates: Vec<CandidateNode> = nodes
                .iter()
                .enumerate()
                .map(|(i, nd)| CandidateNode {
                    node: i,
                    capacity_mips: nd.advertised_capacity_mips(),
                    slots: nd.slots,
                    total_load_mi: 0.0,
                })
                .collect();
            let transfer = &world.transfer;
            let bw = |a: NodeId, b: NodeId| transfer.bandwidth_mbps(a, b);
            if let Some(plans) =
                scheduler.plan_full_ahead(&inputs, &candidates, world.true_costs, &bw)
            {
                assert_eq!(
                    plans.len(),
                    workflows.len(),
                    "full-ahead scheduler must plan every workflow"
                );
                for (w, plan) in workflows.iter_mut().zip(plans) {
                    assert_eq!(
                        plan.len(),
                        w.workflow.task_count(),
                        "full-ahead plan must place every task"
                    );
                    w.plan = Some(plan);
                }
            }
        }

        EngineState {
            config: world.config.clone(),
            scheduler,
            transfer: Arc::clone(&world.transfer),
            landmarks: Arc::clone(&world.landmarks),
            gossip: world.gossip.clone(),
            gossip_rng: world.gossip_rng.clone(),
            churn_rng: world.churn_rng.clone(),
            nodes,
            workflows,
            home_of: Arc::clone(&world.home_of),
            metrics,
            next_seq: 0,
            next_run: 0,
            dispatched_tasks: 0,
            executed_tasks: 0,
        }
    }

    // ----- helpers -------------------------------------------------------------------------

    fn local_gossip_states(&self, now: SimTime) -> Vec<LocalNodeState> {
        self.nodes
            .iter()
            .map(|nd| LocalNodeState {
                alive: nd.alive,
                capacity_mips: nd.advertised_capacity_mips(),
                slots: nd.slots,
                total_load_mi: nd.total_load_mi(now),
                local_avg_bandwidth_mbps: nd.local_avg_bandwidth_mbps,
            })
            .collect()
    }

    /// One aggregate snapshot over the alive population, built from the per-node `O(1)`
    /// accessors — `O(nodes)` total, no heap walks.
    fn grid_sample(&self) -> GridSample {
        let mut sample = GridSample {
            alive_nodes: 0,
            ready_tasks: 0,
            selectable_tasks: 0,
            running_tasks: 0,
            queued_load_mi: 0.0,
        };
        for nd in &self.nodes {
            if !nd.alive {
                continue;
            }
            sample.alive_nodes += 1;
            sample.ready_tasks += nd.ready.len();
            sample.selectable_tasks += nd.ready.selectable_len();
            sample.running_tasks += nd.running.len();
            sample.queued_load_mi += nd.ready.queued_load_mi();
        }
        sample
    }

    fn fail_workflow(&mut self, wf: usize, now: SimTime, obs: &mut Observers<'_, '_>) {
        let w = &mut self.workflows[wf];
        if !w.is_active() {
            return;
        }
        w.failed = true;
        self.metrics.record_failure(WorkflowRecord {
            submitted_at: w.submitted_at,
            completed_at: now,
            expected_finish_secs: w.eft_secs,
            outcome: WorkflowOutcome::Failed,
        });
        obs.emit(|o| o.on_workflow_failed(now, wf));
    }

    /// A node departs.  Tasks that were merely *waiting* in its ready set (or still receiving
    /// their input data) have not executed anything yet, so their home nodes simply observe the
    /// failed migration and turn them back into schedule points — no checkpointing is needed
    /// for that.  A task that was *running* loses its computation; without the
    /// checkpointing/rescheduling extension (the paper's future work) its workflow can no
    /// longer finish and is recorded as failed.
    fn handle_departure(&mut self, node: NodeId, now: SimTime, obs: &mut Observers<'_, '_>) {
        if !self.nodes[node].alive {
            return;
        }
        let (waiting, running) = self.nodes[node].depart();
        for (wf, task) in waiting {
            if self.workflows[wf].is_active() {
                self.workflows[wf].progress.unmark_dispatched(task);
            }
        }
        for (wf, task) in running {
            if self.workflows[wf].is_active() {
                if self.config.churn.reschedule_lost_tasks {
                    self.workflows[wf].progress.unmark_dispatched(task);
                } else {
                    self.fail_workflow(wf, now, obs);
                }
            }
        }
        self.gossip.forget_node(node);
        obs.emit(|o| o.on_node_departed(now, node));
    }

    fn handle_join(&mut self, node: NodeId, now: SimTime, obs: &mut Observers<'_, '_>) {
        if !self.nodes[node].alive {
            self.nodes[node].join();
            obs.emit(|o| o.on_node_joined(now, node));
        }
    }

    fn churn_step(&mut self, now: SimTime, obs: &mut Observers<'_, '_>) {
        let df = self.config.churn.dynamic_factor;
        if df <= 0.0 {
            return;
        }
        let churn_count = ((self.nodes.len() as f64) * df).round() as usize;
        if churn_count == 0 {
            return;
        }
        let alive_churnable: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].churnable && self.nodes[i].alive)
            .collect();
        let dead_churnable: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].churnable && !self.nodes[i].alive)
            .collect();
        let leaving: Vec<NodeId> = self
            .churn_rng
            .choose_multiple(&alive_churnable, churn_count)
            .into_iter()
            .copied()
            .collect();
        let joining: Vec<NodeId> = self
            .churn_rng
            .choose_multiple(&dead_churnable, churn_count)
            .into_iter()
            .copied()
            .collect();
        for node in leaving {
            self.handle_departure(node, now, obs);
        }
        for node in joining {
            self.handle_join(node, now, obs);
        }
    }

    // ----- first phase ---------------------------------------------------------------------

    fn scheduling_phase_one(
        &mut self,
        ctl: &mut SimControl<GridEvent>,
        obs: &mut Observers<'_, '_>,
    ) {
        let home_nodes: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].alive && !self.home_of[i].is_empty())
            .collect();
        for home in home_nodes {
            if self.workflows[self.home_of[home][0]].plan.is_some() {
                self.dispatch_full_ahead(home, ctl, obs);
            } else {
                self.dispatch_just_in_time(home, ctl, obs);
            }
        }
    }

    /// Dispatch every current schedule point of a full-ahead plan to its pre-planned node
    /// (falling back to the home node if the planned node has churned away).
    fn dispatch_full_ahead(
        &mut self,
        home: NodeId,
        ctl: &mut SimControl<GridEvent>,
        obs: &mut Observers<'_, '_>,
    ) {
        let wf_indices = self.home_of[home].clone();
        for wf in wf_indices {
            if !self.workflows[wf].is_active() {
                continue;
            }
            let sps = {
                let w = &self.workflows[wf];
                w.progress.schedule_points(&w.workflow)
            };
            for task in sps {
                let planned =
                    self.workflows[wf].plan.as_ref().expect("full-ahead plan")[task.index()];
                let target = if self.nodes[planned].alive {
                    planned
                } else {
                    home
                };
                let (rpm, ms, sufferage) = {
                    let w = &self.workflows[wf];
                    (w.static_rpm[task.index()], w.static_ms_secs, 0.0)
                };
                self.dispatch_task(home, wf, task, target, rpm, ms, sufferage, ctl, obs);
            }
        }
    }

    /// Algorithm 1 (and its competitor orderings) at one home node.
    fn dispatch_just_in_time(
        &mut self,
        home: NodeId,
        ctl: &mut SimControl<GridEvent>,
        obs: &mut Observers<'_, '_>,
    ) {
        // The home node's estimates of the system-wide averages come from the aggregation
        // gossip; its candidate set comes from the epidemic gossip's RSS.
        let (avg_cap, avg_bw) = self.gossip.expected_costs(home);
        let costs = ExpectedCosts::new(avg_cap, avg_bw);

        let mut candidate_tasks: Vec<DispatchCandidateTask> = Vec::new();
        let wf_indices = self.home_of[home].clone();
        for &wf in &wf_indices {
            let w = &self.workflows[wf];
            if !w.is_active() {
                continue;
            }
            let sps = w.progress.schedule_points(&w.workflow);
            if sps.is_empty() {
                continue;
            }
            let analysis = WorkflowAnalysis::new(&w.workflow, costs);
            let ms = sps
                .iter()
                .map(|&t| analysis.rpm_secs(t))
                .fold(0.0f64, f64::max);
            for t in sps {
                let predecessors: Vec<PredecessorData> = w
                    .workflow
                    .precedents(t)
                    .iter()
                    .map(|e| PredecessorData {
                        location: w.output_location(e.task),
                        data_mb: e.data_mb,
                    })
                    .collect();
                candidate_tasks.push(DispatchCandidateTask {
                    workflow: wf,
                    task: t,
                    load_mi: w.workflow.task(t).load_mi,
                    image_size_mb: w.workflow.task(t).image_size_mb,
                    rpm_secs: analysis.rpm_secs(t),
                    workflow_ms_secs: ms,
                    predecessors,
                });
            }
        }
        if candidate_tasks.is_empty() {
            return;
        }

        // Candidate resource nodes: the home node's RSS (always contains itself once gossip has
        // run; fall back to the home node before that), restricted to currently alive nodes.
        let mut candidates: Vec<CandidateNode> = self
            .gossip
            .rss(home)
            .records()
            .filter(|r| self.nodes[r.node].alive)
            .map(|r| CandidateNode {
                node: r.node,
                capacity_mips: r.capacity_mips,
                slots: r.slots,
                total_load_mi: r.total_load_mi,
            })
            .collect();
        if candidates.is_empty() {
            candidates.push(CandidateNode {
                node: home,
                capacity_mips: self.nodes[home].advertised_capacity_mips(),
                slots: self.nodes[home].slots,
                total_load_mi: self.nodes[home].total_load_mi(ctl.now()),
            });
        }

        let landmarks = &self.landmarks;
        let bw_estimate =
            move |a: NodeId, b: NodeId| -> f64 { landmarks.estimate_bandwidth_mbps(a, b) };
        let estimator = FinishTimeEstimator::new(home, &bw_estimate);
        let decisions = self
            .scheduler
            .plan_dispatch(&candidate_tasks, &mut candidates, &estimator);
        let lookup: std::collections::HashMap<(usize, TaskId), (f64, f64)> = candidate_tasks
            .iter()
            .map(|t| ((t.workflow, t.task), (t.rpm_secs, t.workflow_ms_secs)))
            .collect();
        for d in decisions {
            let (rpm, ms) = lookup[&(d.workflow, d.task)];
            self.dispatch_task(
                home,
                d.workflow,
                d.task,
                d.target,
                rpm,
                ms,
                d.sufferage_secs,
                ctl,
                obs,
            );
        }
    }

    /// Migrate a task to its chosen resource node: mark it dispatched, enqueue it in the ready
    /// set and schedule the completion of its (true) data transfers.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_task(
        &mut self,
        home: NodeId,
        wf: usize,
        task: TaskId,
        target: NodeId,
        rpm_secs: f64,
        ms_secs: f64,
        sufferage_secs: f64,
        ctl: &mut SimControl<GridEvent>,
        obs: &mut Observers<'_, '_>,
    ) {
        if !self.nodes[target].alive {
            // A stale RSS record pointed at a node that just churned away; the migration fails
            // before any computation happens, so the task simply stays a schedule point and is
            // retried at the next scheduling cycle.
            return;
        }
        let (load_mi, image_mb, inputs): (f64, f64, Vec<(NodeId, f64)>) = {
            let w = &self.workflows[wf];
            let t = w.workflow.task(task);
            let inputs = w
                .workflow
                .precedents(task)
                .iter()
                .map(|e| (w.output_location(e.task), e.data_mb))
                .collect();
            (t.load_mi, t.image_size_mb, inputs)
        };
        self.workflows[wf].progress.mark_dispatched(task);
        self.dispatched_tasks += 1;

        // True transfer times on the ground-truth network: program image from the home node
        // plus dependent data from every precedent's execution site, all in parallel.
        let transfer_secs = self
            .transfer
            .arrival_delay_secs(home, target, image_mb, &inputs);
        let view = ReadyTaskView {
            workflow_ms_secs: ms_secs,
            rpm_secs,
            exec_secs: self.nodes[target].execution_secs(load_mi),
            sufferage_secs,
            enqueued_seq: self.next_seq,
        };
        self.next_seq += 1;
        self.nodes[target].ready.insert(ReadyEntry {
            wf,
            task,
            load_mi,
            key: self.scheduler.ready_key(&view),
            view,
            data_ready: false,
        });
        obs.emit(|o| o.on_task_dispatched(ctl.now(), wf, task, target));
        ctl.schedule_in(
            SimDuration::from_secs_f64(transfer_secs),
            GridEvent::DataReady {
                node: target,
                epoch: self.nodes[target].epoch,
                wf,
                task,
            },
        );
    }

    // ----- second phase --------------------------------------------------------------------

    /// Occupy one slot of `node` with `chosen` and schedule its completion.
    fn start_task(
        &mut self,
        node: NodeId,
        chosen: &ReadyEntry,
        ctl: &mut SimControl<GridEvent>,
        obs: &mut Observers<'_, '_>,
    ) {
        let run = self.next_run;
        self.next_run += 1;
        let finish_at = self.nodes[node].start(chosen, ctl.now(), run);
        self.executed_tasks += 1;
        obs.emit(|o| o.on_task_started(ctl.now(), chosen.wf, chosen.task, node));
        ctl.schedule_at(
            finish_at,
            GridEvent::TaskCompleted {
                node,
                epoch: self.nodes[node].epoch,
                wf: chosen.wf,
                task: chosen.task,
                run,
            },
        );
    }

    /// Algorithm 2: while the node has free execution slots, pick the next data-complete ready
    /// task (smallest scheduler key) and run it.  Under the time-sliced preemptive substrate a
    /// remaining ready task that outranks the lowest-priority running task then displaces it —
    /// the victim re-enters the ready heap with its residual load and resumes later.
    fn try_start_tasks(
        &mut self,
        node: NodeId,
        ctl: &mut SimControl<GridEvent>,
        obs: &mut Observers<'_, '_>,
    ) {
        if !self.nodes[node].alive {
            return;
        }
        while self.nodes[node].has_free_slot() {
            let Some(chosen) = self.nodes[node].ready.pop_next() else {
                break;
            };
            self.start_task(node, &chosen, ctl, obs);
        }
        if !self.config.resource.is_preemptive() {
            return;
        }
        // Each round swaps a strictly higher-priority ready task into a slot, so the worst
        // running key strictly improves and the loop terminates.
        while let Some((key, _seq)) = self.nodes[node].ready.peek_next() {
            let Some(mut displaced) = self.nodes[node].preempt_lowest_priority(key, ctl.now())
            else {
                break;
            };
            let chosen = self.nodes[node]
                .ready
                .pop_next()
                .expect("peeked entry must still be queued");
            obs.emit(|o| o.on_task_displaced(ctl.now(), displaced.wf, displaced.task, node));
            // Re-key the displaced task against its updated view: rules keyed on exec time
            // now see the *remaining* time (shortest-remaining-time semantics), while
            // ms/rpm-based rules and FCFS recompute the same key as before.
            displaced.key = self.scheduler.ready_key(&displaced.view);
            self.nodes[node].ready.insert(displaced);
            self.start_task(node, &chosen, ctl, obs);
        }
    }

    fn on_data_ready(
        &mut self,
        node: NodeId,
        epoch: u64,
        wf: usize,
        task: TaskId,
        ctl: &mut SimControl<GridEvent>,
        obs: &mut Observers<'_, '_>,
    ) {
        if !self.nodes[node].alive || self.nodes[node].epoch != epoch {
            return;
        }
        self.nodes[node].ready.mark_data_ready(wf, task);
        self.try_start_tasks(node, ctl, obs);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_task_completed(
        &mut self,
        node: NodeId,
        epoch: u64,
        wf: usize,
        task: TaskId,
        run: u64,
        ctl: &mut SimControl<GridEvent>,
        obs: &mut Observers<'_, '_>,
    ) {
        if self.nodes[node].epoch != epoch || !self.nodes[node].alive {
            return;
        }
        if !self.nodes[node].complete(wf, task, run) {
            return;
        }
        let now = ctl.now();
        obs.emit(|o| o.on_task_finished(now, wf, task, node));
        {
            let w = &mut self.workflows[wf];
            if w.is_active() {
                w.task_location[task.index()] = Some(node);
                w.progress.mark_finished(&w.workflow, task);
                if task == w.workflow.exit() {
                    w.completed = true;
                    self.metrics.record_completion(WorkflowRecord {
                        submitted_at: w.submitted_at,
                        completed_at: now,
                        expected_finish_secs: w.eft_secs,
                        outcome: WorkflowOutcome::Completed,
                    });
                    obs.emit(|o| o.on_workflow_completed(now, wf));
                }
            }
        }
        self.try_start_tasks(node, ctl, obs);
    }

    fn handle_event(
        &mut self,
        ctl: &mut SimControl<GridEvent>,
        event: GridEvent,
        obs: &mut Observers<'_, '_>,
    ) {
        match event {
            GridEvent::GossipCycle => {
                let cycle = self.gossip.stats().cycles;
                let local = self.local_gossip_states(ctl.now());
                let mut rng = self.gossip_rng.clone();
                self.gossip.run_cycle(ctl.now(), &local, &mut rng);
                self.gossip_rng = rng;
                obs.emit(|o| o.on_gossip_cycle(ctl.now(), cycle));
                ctl.schedule_in(self.config.gossip_interval, GridEvent::GossipCycle);
            }
            GridEvent::SchedulingCycle => {
                self.churn_step(ctl.now(), obs);
                self.scheduling_phase_one(ctl, obs);
                ctl.schedule_in(self.config.scheduling_interval, GridEvent::SchedulingCycle);
            }
            GridEvent::MetricsSample => {
                self.metrics.sample(ctl.now());
                let sample = self.grid_sample();
                obs.emit(|o| o.on_sample(ctl.now(), &sample));
                ctl.schedule_in(self.config.metrics_interval, GridEvent::MetricsSample);
            }
            GridEvent::DataReady {
                node,
                epoch,
                wf,
                task,
            } => {
                self.on_data_ready(node, epoch, wf, task, ctl, obs);
            }
            GridEvent::TaskCompleted {
                node,
                epoch,
                wf,
                task,
                run,
            } => {
                self.on_task_completed(node, epoch, wf, task, run, ctl, obs);
            }
        }
    }

    fn finish(mut self, end_time: SimTime) -> SimulationReport {
        self.metrics.sample(end_time);
        let local = self.local_gossip_states(end_time);
        let avg_rss_size = self.gossip.average_rss_size(&local);
        SimulationReport {
            algorithm: self.scheduler.label(),
            gossip_stats: self.gossip.stats(),
            avg_rss_size,
            end_time,
            nodes: self.config.nodes,
            submitted: self.metrics.submitted(),
            completed: self.metrics.throughput(),
            failed: self.metrics.failed(),
            metrics: self.metrics,
        }
    }
}

/// Adapter handing each delivered event to the engine together with the session's observers.
struct Driver<'a, 'obs> {
    state: &'a mut EngineState,
    observers: &'a mut [&'obs mut dyn Observer],
}

impl EventHandler<GridEvent> for Driver<'_, '_> {
    fn handle(&mut self, ctl: &mut SimControl<GridEvent>, event: GridEvent) {
        self.state
            .handle_event(ctl, event, &mut Observers(&mut *self.observers));
    }
}

/// One in-flight run: the engine state plus its event queue, stepped one event at a time.
/// The public face of this type is [`Simulation`](crate::simulation::Simulation), which owns
/// the observer list; the session only borrows observers per step so the engine stays free of
/// observer lifetimes.
pub(crate) struct EngineSession {
    state: EngineState,
    sim: Simulator<GridEvent>,
    horizon: SimTime,
}

impl EngineSession {
    pub(crate) fn new(scenario: &Scenario, scheduler: Box<dyn Scheduler>) -> Self {
        let state = EngineState::from_scenario(scenario, scheduler);
        let horizon = SimTime::ZERO + state.config.horizon;
        let mut sim: Simulator<GridEvent> = Simulator::new().with_horizon(horizon);
        sim.schedule_at(SimTime::ZERO, GridEvent::GossipCycle);
        sim.schedule_at(SimTime::ZERO, GridEvent::MetricsSample);
        sim.schedule_at(SimTime::ZERO, GridEvent::SchedulingCycle);
        EngineSession {
            state,
            sim,
            horizon,
        }
    }

    /// Announce the time-zero workflow submissions (fires once, before the first event).
    pub(crate) fn announce_submissions(&self, observers: &mut [&mut dyn Observer]) {
        let mut obs = Observers(observers);
        for (wf, w) in self.state.workflows.iter().enumerate() {
            let home = w.home;
            obs.emit(|o| o.on_workflow_submitted(SimTime::ZERO, wf, home));
        }
    }

    /// Deliver exactly one event and return its timestamp, or `None` when the run is over
    /// (queue drained or every remaining event lies beyond the horizon).
    pub(crate) fn step(&mut self, observers: &mut [&mut dyn Observer]) -> Option<SimTime> {
        let mut driver = Driver {
            state: &mut self.state,
            observers,
        };
        self.sim.step(&mut driver)
    }

    /// Timestamp of the next event [`EngineSession::step`] would deliver.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.sim.peek_time()
    }

    /// Current virtual time (the timestamp of the last delivered event).
    pub(crate) fn now(&self) -> SimTime {
        self.sim.now()
    }

    pub(crate) fn horizon(&self) -> SimTime {
        self.horizon
    }

    pub(crate) fn grid_sample(&self) -> GridSample {
        self.state.grid_sample()
    }

    pub(crate) fn label(&self) -> String {
        self.state.scheduler.label()
    }

    /// Close the session: take the final metrics sample (at the horizon if the run completed,
    /// at the current time if it was cut short), mirror it to the observers, and build the
    /// report.  A fully-stepped session produces a report byte-identical to the legacy
    /// one-shot run.
    pub(crate) fn finish(self, observers: &mut [&mut dyn Observer]) -> SimulationReport {
        let end_time = if self.peek_time().is_none() {
            self.horizon
        } else {
            self.now()
        };
        let sample = self.state.grid_sample();
        Observers(observers).emit(|o| o.on_sample(end_time, &sample));
        self.state.finish(end_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Algorithm, AlgorithmConfig, SecondPhase};
    use crate::config::{CapacityModel, ChurnConfig};
    use crate::scenario::Scenario;
    use crate::simulation::Simulation;

    fn tiny_config(seed: u64) -> GridConfig {
        let mut cfg = GridConfig::small(12).with_seed(seed);
        cfg.workflows_per_node = 1;
        cfg.workflow.tasks = 2..=6;
        cfg.horizon = SimDuration::from_hours(20);
        cfg
    }

    fn simulate(cfg: GridConfig, algorithm: Algorithm) -> Simulation<'static> {
        Scenario::build(cfg)
            .expect("test config is valid")
            .simulate_algorithm(algorithm)
    }

    /// Run a session to the horizon and hand back the internal engine state, for white-box
    /// tests asserting on dispatch/execution counters.
    fn run_session(cfg: GridConfig, algo: AlgorithmConfig) -> EngineState {
        let scenario = Scenario::build(cfg).expect("test config is valid");
        let mut session = EngineSession::new(&scenario, Box::new(algo));
        while session.step(&mut []).is_some() {}
        session.state
    }

    #[test]
    fn dsmf_run_completes_workflows_and_reports_metrics() {
        let report = simulate(tiny_config(1), Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 12);
        assert!(
            report.completed > 0,
            "no workflow completed within the horizon"
        );
        assert!(report.act_secs() > 0.0);
        assert!(report.average_efficiency() > 0.0);
        assert!(report.avg_rss_size >= 1.0);
        assert!(report.gossip_stats.cycles > 0);
        assert_eq!(report.algorithm, "DSMF");
        // The throughput series is sampled hourly plus the final sample.
        assert!(report.metrics.throughput_series().len() >= 20);
    }

    #[test]
    fn every_algorithm_runs_on_the_same_shared_scenario() {
        let scenario = Scenario::build(tiny_config(2)).unwrap();
        for alg in Algorithm::ALL {
            let report = scenario.simulate_algorithm(alg).run();
            assert!(
                report.completed > 0,
                "{alg}: no workflow completed within the horizon"
            );
            assert!(report.completed <= report.submitted);
            assert!(report.average_efficiency() > 0.0, "{alg}: zero efficiency");
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed_and_across_scenario_reuse() {
        let scenario = Scenario::build(tiny_config(3)).unwrap();
        let a = scenario.simulate_algorithm(Algorithm::Dsmf).run();
        let b = scenario.simulate_algorithm(Algorithm::Dsmf).run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.act_secs(), b.act_secs());
        assert_eq!(a.average_efficiency(), b.average_efficiency());
        let c = simulate(tiny_config(4), Algorithm::Dsmf).run();
        // A different seed gives a different workload, so at least one headline number differs.
        assert!(
            a.completed != c.completed || a.act_secs() != c.act_secs(),
            "different seeds should produce different runs"
        );
    }

    #[test]
    fn fcfs_ablation_changes_only_the_second_phase() {
        let scenario = Scenario::build(tiny_config(5)).unwrap();
        let paper = scenario
            .simulate_config(AlgorithmConfig::paper_default(Algorithm::MinMin))
            .run();
        let fcfs = scenario
            .simulate_config(AlgorithmConfig::with_fcfs_second_phase(Algorithm::MinMin))
            .run();
        assert_eq!(paper.submitted, fcfs.submitted);
        assert_eq!(fcfs.algorithm, "min-min+FCFS");
        assert!(fcfs.completed > 0);
    }

    #[test]
    fn churn_loses_workflows_but_keeps_the_rest_running() {
        let mut cfg = tiny_config(6).with_churn(ChurnConfig::with_dynamic_factor(0.2));
        cfg.nodes = 20;
        cfg.waxman.nodes = 20;
        let report = simulate(cfg, Algorithm::Dsmf).run();
        // Only stable nodes are home nodes: 50% of 20 = 10 homes, 1 workflow each.
        assert_eq!(report.submitted, 10);
        assert!(report.completed + report.failed <= report.submitted);
        assert!(
            report.completed > 0,
            "churn must not wipe out every workflow"
        );
    }

    #[test]
    fn rescheduling_extension_recovers_lost_tasks() {
        let mut churned = ChurnConfig::with_dynamic_factor(0.3);
        churned.reschedule_lost_tasks = true;
        let mut cfg = tiny_config(7).with_churn(churned);
        cfg.nodes = 20;
        cfg.waxman.nodes = 20;
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(
            report.failed, 0,
            "with rescheduling enabled no workflow should be recorded as failed"
        );
    }

    #[test]
    fn uniform_capacity_single_node_grid_still_finishes() {
        let mut cfg = GridConfig::small(1).with_seed(8);
        cfg.workflows_per_node = 2;
        cfg.capacity = CapacityModel::Uniform(4.0);
        cfg.workflow.tasks = 2..=4;
        cfg.horizon = SimDuration::from_hours(30);
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 2);
        assert!(report.completed > 0);
    }

    #[test]
    fn all_tasks_execute_at_most_once() {
        let mut cfg = tiny_config(9);
        cfg.workflows_per_node = 2;
        let state = run_session(cfg, AlgorithmConfig::paper_default(Algorithm::Dsmf));
        let total_tasks: usize = state
            .workflows
            .iter()
            .map(|w| w.workflow.task_count())
            .sum();
        assert!(state.executed_tasks <= state.dispatched_tasks);
        assert!(state.dispatched_tasks as usize <= total_tasks);
        // Completed workflows really finished every one of their tasks.
        for w in &state.workflows {
            if w.completed {
                assert!(w.progress.is_complete());
                assert!(w.task_location.iter().all(|l| l.is_some()));
            }
        }
    }

    #[test]
    fn departures_only_fail_workflows_whose_task_was_running() {
        // Under churn, the failure count can never exceed the number of running-task losses:
        // each departure takes down at most one workflow per occupied slot, while queued tasks
        // are silently re-dispatched.  With one workflow per home node and a modest dynamic
        // factor, some workflows must still survive and complete.
        let mut cfg = tiny_config(11).with_churn(ChurnConfig::with_dynamic_factor(0.2));
        cfg.nodes = 30;
        cfg.waxman.nodes = 30;
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 15);
        assert!(report.completed > 0);
        assert!(report.completed + report.failed <= report.submitted);
    }

    #[test]
    fn churn_sweep_baseline_matches_restricted_home_population() {
        // The df = 0 baseline of the churn experiments uses the same stable home population as
        // the churned points, so throughput numbers are directly comparable.
        // tiny_config builds a 12-node grid with one workflow per home node; restricting the
        // home set to the stable half leaves 6 submissions.
        let cfg = tiny_config(16).with_churn(ChurnConfig::with_dynamic_factor(0.0));
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 6);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn second_phase_rule_is_respected_in_reports_label() {
        let report = Scenario::build(tiny_config(10))
            .unwrap()
            .simulate_config(AlgorithmConfig {
                algorithm: Algorithm::Dsmf,
                second_phase: SecondPhase::Fcfs,
            })
            .run();
        assert_eq!(report.algorithm, "DSMF+FCFS");
    }

    #[test]
    fn multi_core_nodes_complete_no_less_than_single_core() {
        // The ResourceModel seam: with the same workload, giving every node four slots (and
        // four times the advertised throughput) must not finish fewer workflows.
        let single = simulate(tiny_config(12), Algorithm::Dsmf).run();
        let quad = simulate(tiny_config(12).with_slots_per_node(4), Algorithm::Dsmf).run();
        assert_eq!(single.submitted, quad.submitted);
        assert!(
            quad.completed >= single.completed,
            "4 slots completed {} < 1 slot's {}",
            quad.completed,
            single.completed
        );
    }

    #[test]
    fn multi_core_nodes_run_tasks_concurrently() {
        // On a single four-slot node, several ready tasks must occupy slots at once at some
        // point: with 2 workflows of 2–4 tasks each on one node, the engine's executed count
        // matches dispatches and the run finishes far faster than serially.
        let mut cfg = GridConfig::small(1).with_seed(14).with_slots_per_node(4);
        cfg.workflows_per_node = 3;
        cfg.capacity = CapacityModel::Uniform(4.0);
        cfg.workflow.tasks = 4..=6;
        cfg.horizon = SimDuration::from_hours(30);
        let quad = simulate(cfg.clone(), Algorithm::Dsmf).run();
        let mut single_cfg = cfg;
        single_cfg.resource = crate::config::ResourceModel::single_cpu();
        let single = simulate(single_cfg, Algorithm::Dsmf).run();
        assert!(quad.completed >= single.completed);
        if quad.completed == single.completed && quad.completed > 0 {
            assert!(
                quad.act_secs() <= single.act_secs(),
                "4 slots must not be slower: {} vs {}",
                quad.act_secs(),
                single.act_secs()
            );
        }
    }

    #[test]
    fn heterogeneous_slot_distributions_run_deterministically() {
        use crate::config::{ResourceModel, SlotClass};
        let resource = || {
            ResourceModel::heterogeneous(vec![
                SlotClass {
                    slots: 1,
                    weight: 0.8,
                },
                SlotClass {
                    slots: 16,
                    weight: 0.2,
                },
            ])
        };
        let run = || simulate(tiny_config(15).with_resource(resource()), Algorithm::Dsmf).run();
        let a = run();
        let b = run();
        assert!(a.completed > 0, "heterogeneous grid must make progress");
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.act_secs().to_bits(), b.act_secs().to_bits());

        // The slot sampling draws from its own RNG stream: capacities, workflows and gossip
        // are untouched, so a uniform single-slot run still matches the plain paper config.
        let plain = simulate(tiny_config(15), Algorithm::Dsmf).run();
        let uniform = simulate(
            tiny_config(15).with_resource(crate::config::ResourceModel::single_cpu()),
            Algorithm::Dsmf,
        )
        .run();
        assert_eq!(plain.completed, uniform.completed);
        assert_eq!(plain.act_secs().to_bits(), uniform.act_secs().to_bits());
    }

    #[test]
    fn preemptive_substrate_restarts_displaced_tasks() {
        // A contended single-slot grid under DSMF: successors of short-makespan workflows
        // arrive while long-workflow tasks hold the CPU, so the time-sliced policy must
        // preempt at least once — observable as more task starts than dispatches.
        let preempt = |seed: u64| {
            let mut cfg = tiny_config(seed);
            cfg.workflows_per_node = 2;
            cfg.resource = crate::config::ResourceModel::single_cpu().preemptive();
            run_session(cfg, AlgorithmConfig::paper_default(Algorithm::Dsmf))
        };
        let preempted_somewhere = (20..26).any(|seed| {
            let state = preempt(seed);
            state.executed_tasks > state.dispatched_tasks
        });
        assert!(
            preempted_somewhere,
            "no seed in the band ever triggered a preemption"
        );
        // Preempted-and-resumed tasks must still complete their workflows consistently.
        let state = preempt(21);
        for w in &state.workflows {
            if w.completed {
                assert!(w.progress.is_complete());
                assert!(w.task_location.iter().all(|l| l.is_some()));
            }
        }
    }

    #[test]
    fn preemptive_runs_are_deterministic_and_account_consistently() {
        let run = || {
            let cfg = tiny_config(17)
                .with_resource(crate::config::ResourceModel::multi_core(2).preemptive());
            simulate(cfg, Algorithm::Dsmf).run()
        };
        let a = run();
        let b = run();
        assert!(a.completed > 0);
        assert!(a.completed + a.failed <= a.submitted);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.act_secs().to_bits(), b.act_secs().to_bits());
    }

    #[test]
    fn custom_scheduler_plugs_into_the_engine() {
        // The Scheduler seam: a greedy "random-ish but deterministic" policy that was never one
        // of the paper's eight — round-robin dispatch over candidates, FCFS ready sets.
        struct RoundRobin;
        impl crate::scheduler::Scheduler for RoundRobin {
            fn label(&self) -> String {
                "round-robin".to_string()
            }
            fn plan_dispatch(
                &self,
                tasks: &[DispatchCandidateTask],
                candidates: &mut [CandidateNode],
                _estimator: &FinishTimeEstimator<'_>,
            ) -> Vec<crate::policy::first_phase::DispatchDecision> {
                tasks
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let c = &mut candidates[i % candidates.len()];
                        c.add_load(t.load_mi);
                        crate::policy::first_phase::DispatchDecision {
                            workflow: t.workflow,
                            task: t.task,
                            target: c.node,
                            estimated_finish_secs: 0.0,
                            sufferage_secs: 0.0,
                        }
                    })
                    .collect()
            }
            fn ready_key(&self, task: &ReadyTaskView) -> crate::policy::second_phase::ReadyKey {
                crate::policy::second_phase::ready_key(SecondPhase::Fcfs, task)
            }
        }
        let report = Scenario::build(tiny_config(13))
            .unwrap()
            .simulate(Box::new(RoundRobin))
            .run();
        assert_eq!(report.algorithm, "round-robin");
        assert_eq!(report.submitted, 12);
        assert!(
            report.completed > 0,
            "a custom scheduler must still make progress"
        );
    }
}
