//! The grid engine: a sharded, conservative time-window event loop driving one end-to-end
//! P2P-grid simulation.
//!
//! One engine run reproduces the paper's experimental procedure:
//!
//! 1. A Waxman WAN topology is generated and its pairwise bottleneck bandwidths computed
//!    (the ground truth on which [`transfer::TransferModel`] times migrations).
//! 2. Every node receives a capacity from Table I's {1, 2, 4, 8, 16} MIPS set — and, through
//!    the [`ResourceModel`](crate::config::ResourceModel) seam, a number of execution slots —
//!    and the home nodes receive their workflows at time zero.
//! 3. The **mixed gossip protocol** runs every five minutes, giving every node a bounded `RSS`
//!    of peer states and estimates of the average capacity / bandwidth.
//! 4. The **first scheduling phase** runs every fifteen minutes on every home node: schedule
//!    points are prioritised and dispatched per the configured [`Scheduler`] (Algorithm 1 for
//!    DSMF), program images and dependent data start flowing to the chosen resource nodes.
//! 5. The **second scheduling phase** runs on every resource node whenever an execution slot
//!    frees up: the data-complete ready task with the smallest scheduler
//!    [`ReadyKey`](crate::policy::second_phase::ReadyKey) is popped from the node's indexed
//!    [`node::ReadySet`] and executed for `load / capacity` seconds.
//! 6. Under churn, a `df` fraction of the churnable population leaves and (re-)joins every
//!    scheduling interval; tasks resident on departed nodes are lost and their workflows fail
//!    (or are re-scheduled if the future-work flag is enabled).
//! 7. Throughput, ACT and AE are sampled hourly, exactly like the paper's figures.
//!
//! # The sharded event loop
//!
//! Instead of one global event queue, [`ShardedEngine`] partitions the nodes over `S` shards
//! (a deterministic hash of the node id — see [`ShardSpec`](crate::config::ShardSpec)), each
//! with its own queue and RNG stream, and advances all shards in lockstep **conservative time
//! windows** of width [`Scenario::lookahead`] — the minimum cross-node interaction delay,
//! known at build time from the topology's smallest pairwise latency and the gossip cadence.
//! Within a window, every shard-local event (data arrivals, task completions, slot refills) is
//! independent of every other shard by construction: nodes interact only through dispatches,
//! which originate at the serial scheduling cadence and arrive no earlier than one lookahead
//! away.  Shards therefore execute their windows concurrently on the worker pool, and the
//! result is *identical* to serial execution — parallelism is a pure performance knob.
//!
//! At each window barrier the engine, serially and in canonical order (see `barrier.rs`):
//!
//! 1. applies the shards' buffered completion notices to workflow state and metrics, sorted by
//!    `(time, workflow, task)` so floating-point accumulation never depends on the partition;
//! 2. replays the shards' buffered observer callbacks, merged by `(time, node, emission seq)`,
//!    splicing `on_workflow_completed` right after the matching exit-task finish;
//! 3. pops the grid-wide cadence events (gossip, scheduling, metrics) due exactly at the
//!    window's end — windows always close *at* the next cadence instant, so the serial phases
//!    observe every node in a settled state.
//!
//! Reports are byte-identical for every shard count and pool size; only wall-clock changes.
//!
//! Steps 1–2 (and every other seed-derived sample) live in
//! [`Scenario::build`](crate::scenario::Scenario::build) so a sweep pays for them once; the
//! window loop itself runs inside a crate-private session type, which the public
//! [`Simulation`](crate::simulation::Simulation) handle drives one window at a time.  Every
//! externally meaningful transition is mirrored to the session's registered
//! [`Observer`](crate::observer)s — [`node`] (the indexed ready set and slot
//! runtime) and [`transfer`] are exported for benches and tooling; everything else stays
//! crate-private.

pub mod node;
pub mod transfer;
pub(crate) mod workflow;

mod barrier;
mod shard;

pub use shard::ShardStats;

use crate::config::GridConfig;
use crate::estimate::{CandidateNode, FinishTimeEstimator, PredecessorData};
use crate::fullahead::PlanInput;
use crate::observer::{GridSample, Observer};
use crate::policy::first_phase::DispatchCandidateTask;
use crate::policy::second_phase::ReadyTaskView;
use crate::report::SimulationReport;
use crate::scenario::Scenario;
use crate::scheduler::Scheduler;
use crate::NodeId;
use barrier::{
    sort_arrivals, sort_notices, sort_observations, ArrivalNotice, BufferedEvent, BufferedKind,
    CompletionNotice,
};
use node::{NodeRuntime, ReadyEntry};
use p2pgrid_gossip::{LocalNodeState, MixedGossip};
use p2pgrid_metrics::{WorkflowMetrics, WorkflowOutcome, WorkflowRecord};
use p2pgrid_sim::{EventQueue, SimDuration, SimRng, SimTime};
use p2pgrid_topology::LandmarkEstimator;
use p2pgrid_workflow::{ExpectedCosts, TaskId, WorkflowAnalysis};
use shard::{run_shards, Shard, ShardEvent, ShardMap, WindowCtx};
use std::collections::HashSet;
use std::sync::Arc;
use transfer::TransferModel;
use workflow::WorkflowRuntime;

/// Grid-wide cadence events.  These are the only events on the engine's serial queue; all
/// node-local traffic lives on the per-shard queues as [`ShardEvent`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GridEvent {
    /// Run one mixed-gossip cycle on every alive node.
    GossipCycle,
    /// Run the churn step and the first scheduling phase on every home node.
    SchedulingCycle,
    /// Sample throughput / ACT / AE.
    MetricsSample,
}

/// The observers registered on one session, passed down the engine call tree so every hook
/// fires at the exact transition it describes.  Observers only ever receive `&mut self`
/// callbacks with copied event data — they cannot reach engine state, so a run with observers
/// attached stays byte-identical to the same run without them.
pub(crate) struct Observers<'a, 'obs>(pub(crate) &'a mut [&'obs mut dyn Observer]);

impl Observers<'_, '_> {
    /// True when no observer is registered — callers on hot paths skip building event payloads
    /// entirely (the observer fast path; pinned by the `observer_overhead` bench).
    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn emit(&mut self, mut f: impl FnMut(&mut dyn Observer)) {
        if self.0.is_empty() {
            return;
        }
        for o in self.0.iter_mut() {
            f(&mut **o);
        }
    }
}

/// The sharded event loop of one simulation run.
///
/// Owns the node partition (one `Shard` per partition class with its own event queue and RNG
/// stream), the serial grid-wide cadence queue, and all cross-shard state (workflows, metrics,
/// gossip).  Advanced one conservative time window at a time by the crate-private session /
/// [`Simulation`](crate::simulation::Simulation) machinery; the public surface of this type is
/// read-only statistics plus the per-shard RNG seam.
///
/// See the [module docs](self) for the window/barrier protocol and its determinism argument.
pub struct ShardedEngine {
    config: GridConfig,
    scheduler: Box<dyn Scheduler>,
    transfer: Arc<TransferModel>,
    landmarks: Arc<LandmarkEstimator>,
    gossip: MixedGossip,
    gossip_rng: SimRng,
    churn_rng: SimRng,
    /// Reused gossip-state scratch buffer (filled in global node order every cycle), so the
    /// five-minute cadence stops allocating a fresh vector per cycle.
    gossip_scratch: Vec<LocalNodeState>,
    shards: Vec<Shard>,
    map: ShardMap,
    workflows: Vec<WorkflowRuntime>,
    home_of: Arc<Vec<Vec<usize>>>,
    metrics: WorkflowMetrics,
    globals: EventQueue<GridEvent>,
    lookahead: SimDuration,
    now: SimTime,
    horizon: SimTime,
    next_seq: u64,
    dispatched_tasks: u64,
    windows: u64,
    max_window_width: SimDuration,
    cross_shard_events: u64,
    min_cross_shard_delay: Option<SimDuration>,
    /// Barrier scratch: merged workflow arrivals of the current window.
    arrivals: Vec<ArrivalNotice>,
    /// Barrier scratch: merged completion notices of the current window.
    notices: Vec<CompletionNotice>,
    /// Barrier scratch: merged buffered observations of the current window.
    observations: Vec<BufferedEvent>,
    /// Barrier scratch: exit tasks that completed their workflow this window, so the
    /// observation replay can splice `on_workflow_completed` after the matching finish.
    completed_markers: HashSet<(usize, TaskId)>,
}

impl ShardedEngine {
    /// Clone the scenario's mutable runtime state into a fresh engine — partitioning the nodes
    /// into shards per the config's [`ShardSpec`](crate::config::ShardSpec) — and run the
    /// scheduler's full-ahead planning pass (HEFT / SMF plan centrally before execution).
    pub(crate) fn from_scenario(scenario: &Scenario, scheduler: Box<dyn Scheduler>) -> Self {
        let world = scenario.world();
        let mut workflows = (*world.workflows).clone();
        let horizon = SimTime::ZERO + world.config.horizon;
        // Workflows arriving at time zero (all of them under the paper's batch model) are
        // counted as submitted right away, exactly as the pre-arrival engine did.  Later
        // arrivals are counted when their `WorkflowArrival` event applies at a window
        // barrier; arrivals beyond the horizon never enter the system at all.
        let mut metrics = WorkflowMetrics::new(scheduler.label());
        for w in &workflows {
            if w.arrived {
                metrics.record_submission();
            }
        }

        {
            let inputs: Vec<PlanInput<'_>> = workflows
                .iter()
                .map(|w| PlanInput {
                    home: w.home,
                    workflow: &w.workflow,
                })
                .collect();
            let candidates: Vec<CandidateNode> = world
                .nodes
                .iter()
                .enumerate()
                .map(|(i, nd)| CandidateNode {
                    node: i,
                    capacity_mips: nd.advertised_capacity_mips(),
                    slots: nd.slots,
                    total_load_mi: 0.0,
                })
                .collect();
            let transfer = &world.transfer;
            let bw = |a: NodeId, b: NodeId| transfer.bandwidth_mbps(a, b);
            if let Some(plans) =
                scheduler.plan_full_ahead(&inputs, &candidates, world.true_costs, &bw)
            {
                assert_eq!(
                    plans.len(),
                    workflows.len(),
                    "full-ahead scheduler must plan every workflow"
                );
                for (w, plan) in workflows.iter_mut().zip(plans) {
                    assert_eq!(
                        plan.len(),
                        w.workflow.task_count(),
                        "full-ahead plan must place every task"
                    );
                    w.plan = Some(plan);
                }
            }
        }

        let shard_count = world.config.shards.resolve(world.nodes.len());
        let (map, members) = ShardMap::new(world.nodes.len(), shard_count);
        let mut shards: Vec<Shard> = members
            .into_iter()
            .enumerate()
            .map(|(id, node_ids)| {
                let nodes = node_ids.iter().map(|&n| world.nodes[n].clone()).collect();
                Shard::new(id, node_ids, nodes, world.config.seed)
            })
            .collect();

        // Schedule the deferred arrivals into their home nodes' shard queues, in workflow
        // order.  This runs before any window, so every arrival is among the first insertions
        // of its shard's queue and per-node event order stays shard-count independent.
        // Arrivals beyond the horizon are dropped here — those workflows never enter the
        // system and are never counted as submitted.
        for (wf, w) in workflows.iter().enumerate() {
            if !w.arrived && w.submitted_at <= horizon {
                let shard = map.shard_of[w.home];
                let local = map.local_of[w.home];
                shards[shard]
                    .queue
                    .schedule(w.submitted_at, ShardEvent::WorkflowArrival { local, wf });
            }
        }

        ShardedEngine {
            config: world.config.clone(),
            scheduler,
            transfer: Arc::clone(&world.transfer),
            landmarks: Arc::clone(&world.landmarks),
            gossip: world.gossip.clone(),
            gossip_rng: world.gossip_rng.clone(),
            churn_rng: world.churn_rng.clone(),
            gossip_scratch: Vec::with_capacity(map.len()),
            shards,
            map,
            workflows,
            home_of: Arc::clone(&world.home_of),
            metrics,
            globals: EventQueue::new(),
            lookahead: world.lookahead,
            now: SimTime::ZERO,
            horizon,
            next_seq: 0,
            dispatched_tasks: 0,
            windows: 0,
            max_window_width: SimDuration::ZERO,
            cross_shard_events: 0,
            min_cross_shard_delay: None,
            arrivals: Vec::new(),
            notices: Vec::new(),
            observations: Vec::new(),
            completed_markers: HashSet::new(),
        }
    }

    // ----- public read-only surface --------------------------------------------------------

    /// Aggregate counters of the sharded run so far: window count and widths, per-shard event
    /// totals and cross-shard traffic.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            shards: self.shards.len(),
            windows: self.windows,
            max_window_width: self.max_window_width,
            events: self.shards.iter().map(|s| s.events_processed).sum(),
            cross_shard_events: self.cross_shard_events,
            min_cross_shard_delay: self.min_cross_shard_delay,
        }
    }

    /// Number of shards the node population is partitioned into (the resolved
    /// [`ShardSpec`](crate::config::ShardSpec)).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The conservative time-window width: no cross-shard event can arrive sooner than this,
    /// so shards within a window are independent.  See [`Scenario::lookahead`].
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Mutable access to one shard's dedicated RNG stream.
    ///
    /// The stream is split deterministically from the master seed by shard index, so draws in
    /// one shard never perturb any other shard (or any other component).  The engine itself
    /// draws nothing from it today; it is the seam for stochastic *in-shard* models — e.g.
    /// per-node failure injection — that future substrates can consume without threading a new
    /// RNG through the partition.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn shard_rng_mut(&mut self, shard: usize) -> &mut SimRng {
        &mut self.shards[shard].rng
    }

    /// Task executions started so far, summed over the per-shard counters.  Can exceed
    /// [`ShardedEngine::dispatched_tasks`] on preemptive substrates, where displaced tasks
    /// restart from scratch.
    pub fn executed_tasks(&self) -> u64 {
        self.shards.iter().map(|s| s.executed).sum()
    }

    /// Tasks dispatched by the first scheduling phase so far.
    pub fn dispatched_tasks(&self) -> u64 {
        self.dispatched_tasks
    }

    // ----- helpers -------------------------------------------------------------------------

    fn node(&self, id: NodeId) -> &NodeRuntime {
        &self.shards[self.map.shard_of[id]].nodes[self.map.local_of[id]]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut NodeRuntime {
        &mut self.shards[self.map.shard_of[id]].nodes[self.map.local_of[id]]
    }

    /// Refill the reusable gossip-state buffer, iterating nodes in *global* id order so the
    /// gossip protocol (and its floating-point averages) never see the shard partition.
    fn fill_gossip_scratch(&mut self, now: SimTime) {
        let Self {
            shards,
            map,
            gossip_scratch,
            ..
        } = self;
        gossip_scratch.clear();
        for id in 0..map.len() {
            let nd = &shards[map.shard_of[id]].nodes[map.local_of[id]];
            gossip_scratch.push(LocalNodeState {
                alive: nd.alive,
                capacity_mips: nd.advertised_capacity_mips(),
                slots: nd.slots,
                total_load_mi: nd.total_load_mi(now),
                local_avg_bandwidth_mbps: nd.local_avg_bandwidth_mbps,
            });
        }
    }

    /// One aggregate snapshot over the alive population, built from the per-node `O(1)`
    /// accessors in global node order — `O(nodes)` total, no heap walks.
    fn grid_sample(&self) -> GridSample {
        let mut sample = GridSample {
            alive_nodes: 0,
            ready_tasks: 0,
            selectable_tasks: 0,
            running_tasks: 0,
            queued_load_mi: 0.0,
        };
        for id in 0..self.map.len() {
            let nd = self.node(id);
            if !nd.alive {
                continue;
            }
            sample.alive_nodes += 1;
            sample.ready_tasks += nd.ready.len();
            sample.selectable_tasks += nd.ready.selectable_len();
            sample.running_tasks += nd.running.len();
            sample.queued_load_mi += nd.ready.queued_load_mi();
        }
        sample
    }

    fn fail_workflow(&mut self, wf: usize, now: SimTime, obs: &mut Observers<'_, '_>) {
        let w = &mut self.workflows[wf];
        if !w.is_active() {
            return;
        }
        w.failed = true;
        self.metrics.record_failure(WorkflowRecord {
            submitted_at: w.submitted_at,
            completed_at: now,
            expected_finish_secs: w.eft_secs,
            outcome: WorkflowOutcome::Failed,
        });
        obs.emit(|o| o.on_workflow_failed(now, wf));
    }

    /// A node departs.  Tasks that were merely *waiting* in its ready set (or still receiving
    /// their input data) have not executed anything yet, so their home nodes simply observe the
    /// failed migration and turn them back into schedule points — no checkpointing is needed
    /// for that.  A task that was *running* loses its computation; without the
    /// checkpointing/rescheduling extension (the paper's future work) its workflow can no
    /// longer finish and is recorded as failed.
    fn handle_departure(&mut self, node: NodeId, now: SimTime, obs: &mut Observers<'_, '_>) {
        if !self.node(node).alive {
            return;
        }
        let (waiting, running) = self.node_mut(node).depart();
        for (wf, task) in waiting {
            if self.workflows[wf].is_active() {
                self.workflows[wf].progress.unmark_dispatched(task);
            }
        }
        for (wf, task) in running {
            if self.workflows[wf].is_active() {
                if self.config.churn.reschedule_lost_tasks {
                    self.workflows[wf].progress.unmark_dispatched(task);
                } else {
                    self.fail_workflow(wf, now, obs);
                }
            }
        }
        self.gossip.forget_node(node);
        obs.emit(|o| o.on_node_departed(now, node));
    }

    fn handle_join(&mut self, node: NodeId, now: SimTime, obs: &mut Observers<'_, '_>) {
        if !self.node(node).alive {
            self.node_mut(node).join();
            obs.emit(|o| o.on_node_joined(now, node));
        }
    }

    fn churn_step(&mut self, now: SimTime, obs: &mut Observers<'_, '_>) {
        let df = self.config.churn.dynamic_factor;
        if df <= 0.0 {
            return;
        }
        let total = self.map.len();
        let churn_count = ((total as f64) * df).round() as usize;
        if churn_count == 0 {
            return;
        }
        let alive_churnable: Vec<NodeId> = (0..total)
            .filter(|&i| {
                let nd = self.node(i);
                nd.churnable && nd.alive
            })
            .collect();
        let dead_churnable: Vec<NodeId> = (0..total)
            .filter(|&i| {
                let nd = self.node(i);
                nd.churnable && !nd.alive
            })
            .collect();
        let leaving: Vec<NodeId> = self
            .churn_rng
            .choose_multiple(&alive_churnable, churn_count)
            .into_iter()
            .copied()
            .collect();
        let joining: Vec<NodeId> = self
            .churn_rng
            .choose_multiple(&dead_churnable, churn_count)
            .into_iter()
            .copied()
            .collect();
        for node in leaving {
            self.handle_departure(node, now, obs);
        }
        for node in joining {
            self.handle_join(node, now, obs);
        }
    }

    // ----- first phase ---------------------------------------------------------------------

    fn scheduling_phase_one(&mut self, now: SimTime, obs: &mut Observers<'_, '_>) {
        let home_nodes: Vec<NodeId> = (0..self.map.len())
            .filter(|&i| self.node(i).alive && !self.home_of[i].is_empty())
            .collect();
        for home in home_nodes {
            if self.workflows[self.home_of[home][0]].plan.is_some() {
                self.dispatch_full_ahead(home, now, obs);
            } else {
                self.dispatch_just_in_time(home, now, obs);
            }
        }
    }

    /// Dispatch every current schedule point of a full-ahead plan to its pre-planned node
    /// (falling back to the home node if the planned node has churned away).
    fn dispatch_full_ahead(&mut self, home: NodeId, now: SimTime, obs: &mut Observers<'_, '_>) {
        let wf_indices = self.home_of[home].clone();
        for wf in wf_indices {
            if !self.workflows[wf].is_active() {
                continue;
            }
            let sps = {
                let w = &self.workflows[wf];
                w.progress.schedule_points(&w.workflow)
            };
            for task in sps {
                let planned =
                    self.workflows[wf].plan.as_ref().expect("full-ahead plan")[task.index()];
                let target = if self.node(planned).alive {
                    planned
                } else {
                    home
                };
                let (rpm, ms, sufferage) = {
                    let w = &self.workflows[wf];
                    (w.static_rpm[task.index()], w.static_ms_secs, 0.0)
                };
                self.dispatch_task(home, wf, task, target, rpm, ms, sufferage, now, obs);
            }
        }
    }

    /// Algorithm 1 (and its competitor orderings) at one home node.
    fn dispatch_just_in_time(&mut self, home: NodeId, now: SimTime, obs: &mut Observers<'_, '_>) {
        // The home node's estimates of the system-wide averages come from the aggregation
        // gossip; its candidate set comes from the epidemic gossip's RSS.
        let (avg_cap, avg_bw) = self.gossip.expected_costs(home);
        let costs = ExpectedCosts::new(avg_cap, avg_bw);

        let mut candidate_tasks: Vec<DispatchCandidateTask> = Vec::new();
        let wf_indices = self.home_of[home].clone();
        for &wf in &wf_indices {
            let w = &self.workflows[wf];
            if !w.is_active() {
                continue;
            }
            let sps = w.progress.schedule_points(&w.workflow);
            if sps.is_empty() {
                continue;
            }
            let analysis = WorkflowAnalysis::new(&w.workflow, costs);
            let ms = sps
                .iter()
                .map(|&t| analysis.rpm_secs(t))
                .fold(0.0f64, f64::max);
            for t in sps {
                let predecessors: Vec<PredecessorData> = w
                    .workflow
                    .precedents(t)
                    .iter()
                    .map(|e| PredecessorData {
                        location: w.output_location(e.task),
                        data_mb: e.data_mb,
                    })
                    .collect();
                candidate_tasks.push(DispatchCandidateTask {
                    workflow: wf,
                    task: t,
                    load_mi: w.workflow.task(t).load_mi,
                    image_size_mb: w.workflow.task(t).image_size_mb,
                    rpm_secs: analysis.rpm_secs(t),
                    workflow_ms_secs: ms,
                    predecessors,
                });
            }
        }
        if candidate_tasks.is_empty() {
            return;
        }

        // Candidate resource nodes: the home node's RSS (always contains itself once gossip has
        // run; fall back to the home node before that), restricted to currently alive nodes.
        let mut candidates: Vec<CandidateNode> = self
            .gossip
            .rss(home)
            .records()
            .filter(|r| self.node(r.node).alive)
            .map(|r| CandidateNode {
                node: r.node,
                capacity_mips: r.capacity_mips,
                slots: r.slots,
                total_load_mi: r.total_load_mi,
            })
            .collect();
        if candidates.is_empty() {
            candidates.push(CandidateNode {
                node: home,
                capacity_mips: self.node(home).advertised_capacity_mips(),
                slots: self.node(home).slots,
                total_load_mi: self.node(home).total_load_mi(now),
            });
        }

        let landmarks = &self.landmarks;
        let bw_estimate =
            move |a: NodeId, b: NodeId| -> f64 { landmarks.estimate_bandwidth_mbps(a, b) };
        let estimator = FinishTimeEstimator::new(home, &bw_estimate);
        let decisions = self
            .scheduler
            .plan_dispatch(&candidate_tasks, &mut candidates, &estimator);
        let lookup: std::collections::HashMap<(usize, TaskId), (f64, f64)> = candidate_tasks
            .iter()
            .map(|t| ((t.workflow, t.task), (t.rpm_secs, t.workflow_ms_secs)))
            .collect();
        for d in decisions {
            let (rpm, ms) = lookup[&(d.workflow, d.task)];
            self.dispatch_task(
                home,
                d.workflow,
                d.task,
                d.target,
                rpm,
                ms,
                d.sufferage_secs,
                now,
                obs,
            );
        }
    }

    /// Migrate a task to its chosen resource node: mark it dispatched, enqueue it in the ready
    /// set and schedule the completion of its (true) data transfers into the target's shard.
    ///
    /// This is the **only** place events enter a shard queue from outside the shard, and it
    /// runs at window barriers (the scheduling cadence).  For a cross-shard dispatch the
    /// transfer delay includes at least one network hop's latency, which lower-bounds it by
    /// the engine's lookahead — the conservative-PDES soundness invariant tracked in
    /// [`ShardStats::min_cross_shard_delay`].
    #[allow(clippy::too_many_arguments)]
    fn dispatch_task(
        &mut self,
        home: NodeId,
        wf: usize,
        task: TaskId,
        target: NodeId,
        rpm_secs: f64,
        ms_secs: f64,
        sufferage_secs: f64,
        now: SimTime,
        obs: &mut Observers<'_, '_>,
    ) {
        if !self.node(target).alive {
            // A stale RSS record pointed at a node that just churned away; the migration fails
            // before any computation happens, so the task simply stays a schedule point and is
            // retried at the next scheduling cycle.
            return;
        }
        let (load_mi, image_mb, inputs): (f64, f64, Vec<(NodeId, f64)>) = {
            let w = &self.workflows[wf];
            let t = w.workflow.task(task);
            let inputs = w
                .workflow
                .precedents(task)
                .iter()
                .map(|e| (w.output_location(e.task), e.data_mb))
                .collect();
            (t.load_mi, t.image_size_mb, inputs)
        };
        self.workflows[wf].progress.mark_dispatched(task);
        self.dispatched_tasks += 1;

        // True transfer times on the ground-truth network: program image from the home node
        // plus dependent data from every precedent's execution site, all in parallel.
        let transfer_secs = self
            .transfer
            .arrival_delay_secs(home, target, image_mb, &inputs);
        let view = ReadyTaskView {
            workflow_ms_secs: ms_secs,
            rpm_secs,
            exec_secs: self.node(target).execution_secs(load_mi),
            sufferage_secs,
            enqueued_seq: self.next_seq,
        };
        self.next_seq += 1;
        let key = self.scheduler.ready_key(&view);
        let target_shard = self.map.shard_of[target];
        let local = self.map.local_of[target];
        self.shards[target_shard].nodes[local]
            .ready
            .insert(ReadyEntry {
                wf,
                task,
                load_mi,
                key,
                view,
                data_ready: false,
            });
        obs.emit(|o| o.on_task_dispatched(now, wf, task, target));
        let delay = SimDuration::from_secs_f64(transfer_secs);
        if self.map.shard_of[home] != target_shard {
            self.cross_shard_events += 1;
            self.min_cross_shard_delay = Some(match self.min_cross_shard_delay {
                Some(d) if d <= delay => d,
                _ => delay,
            });
        }
        let epoch = self.shards[target_shard].nodes[local].epoch;
        self.shards[target_shard].queue.schedule(
            now + delay,
            ShardEvent::DataReady {
                local,
                epoch,
                wf,
                task,
            },
        );
    }

    // ----- the window loop -------------------------------------------------------------------

    /// Bounds of the next conservative window: `start` is the earliest pending event anywhere,
    /// `end` caps it at one lookahead, clipped to the next grid-wide cadence instant and the
    /// horizon.  `None` when the run is over (no pending event at or before the horizon).
    fn next_window(&self) -> Option<(SimTime, SimTime)> {
        let local_min = self.shards.iter().filter_map(|s| s.queue.peek_time()).min();
        let global_min = self.globals.peek_time();
        let start = match (local_min, global_min) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        if start > self.horizon {
            return None;
        }
        let mut end = start + self.lookahead;
        if let Some(g) = global_min {
            end = end.min(g);
        }
        end = end.min(self.horizon);
        Some((start, end))
    }

    /// Execute one conservative time window: run every shard (in parallel when the pool and the
    /// partition allow), then run the barrier — apply completion notices, replay observations,
    /// handle the grid-wide cadences due at the window's end.  Returns the window's end, or
    /// `None` when the run is over.
    fn advance_window(&mut self, observers: &mut [&mut dyn Observer]) -> Option<SimTime> {
        let (start, end) = self.next_window()?;
        {
            let Self {
                shards,
                scheduler,
                config,
                ..
            } = self;
            let ctx = WindowCtx {
                scheduler: &**scheduler,
                preemptive: config.resource.is_preemptive(),
                observing: !observers.is_empty(),
            };
            run_shards(shards, end, &ctx);
        }
        self.now = end;
        self.windows += 1;
        let width = end.saturating_duration_since(start);
        if width > self.max_window_width {
            self.max_window_width = width;
        }
        self.apply_arrivals();
        self.apply_notices();
        self.flush_observations(observers);
        self.handle_globals(end, observers);
        Some(end)
    }

    /// Barrier step 0: merge the shards' workflow arrivals, sort them canonically by
    /// `(time, workflow)` and apply them — the workflow becomes visible to scheduling (its
    /// next chance is the scheduling cadence) and the submission is counted.  Runs before
    /// [`ShardedEngine::apply_notices`]: nothing can complete before it arrives.
    fn apply_arrivals(&mut self) {
        let Self {
            shards,
            arrivals,
            workflows,
            metrics,
            ..
        } = self;
        arrivals.clear();
        for s in shards.iter_mut() {
            arrivals.append(&mut s.arrivals);
        }
        if arrivals.is_empty() {
            return;
        }
        sort_arrivals(arrivals);
        for a in arrivals.iter() {
            workflows[a.wf].arrived = true;
            metrics.record_submission();
        }
    }

    /// Barrier step 1: merge the shards' completion notices, sort them canonically and apply
    /// them to workflow state and metrics.  Runs unconditionally — workflow progress is engine
    /// state, not an observation.
    fn apply_notices(&mut self) {
        let Self {
            shards,
            notices,
            workflows,
            metrics,
            completed_markers,
            ..
        } = self;
        notices.clear();
        completed_markers.clear();
        for s in shards.iter_mut() {
            notices.append(&mut s.outbox);
        }
        if notices.is_empty() {
            return;
        }
        sort_notices(notices);
        for n in notices.iter() {
            let w = &mut workflows[n.wf];
            if !w.is_active() {
                continue;
            }
            if w.apply_completion(n.task, n.node) {
                w.completed = true;
                metrics.record_completion(WorkflowRecord {
                    submitted_at: w.submitted_at,
                    completed_at: n.time,
                    expected_finish_secs: w.eft_secs,
                    outcome: WorkflowOutcome::Completed,
                });
                completed_markers.insert((n.wf, n.task));
            }
        }
    }

    /// Barrier step 2: merge the shards' buffered observer callbacks and replay them in the
    /// canonical `(time, node, seq)` order, splicing `on_workflow_completed` right after the
    /// exit task's finish — exactly where the monolithic loop emitted it.
    fn flush_observations(&mut self, observers: &mut [&mut dyn Observer]) {
        if observers.is_empty() {
            return;
        }
        let Self {
            shards,
            observations,
            completed_markers,
            ..
        } = self;
        observations.clear();
        for s in shards.iter_mut() {
            observations.append(&mut s.obs_buf);
        }
        sort_observations(observations);
        let mut obs = Observers(observers);
        for e in observations.iter() {
            match e.kind {
                BufferedKind::Started { wf, task } => {
                    obs.emit(|o| o.on_task_started(e.time, wf, task, e.node));
                }
                BufferedKind::Displaced { wf, task } => {
                    obs.emit(|o| o.on_task_displaced(e.time, wf, task, e.node));
                }
                BufferedKind::Finished { wf, task } => {
                    obs.emit(|o| o.on_task_finished(e.time, wf, task, e.node));
                    if completed_markers.remove(&(wf, task)) {
                        obs.emit(|o| o.on_workflow_completed(e.time, wf));
                    }
                }
                BufferedKind::Submitted { wf } => {
                    obs.emit(|o| o.on_workflow_submitted(e.time, wf, e.node));
                }
            }
        }
    }

    /// Barrier step 3: pop and handle every grid-wide cadence event due at the window's end.
    /// Windows always close at the next cadence instant, so by construction these fire exactly
    /// at `end`, over a fully settled grid.
    fn handle_globals(&mut self, end: SimTime, observers: &mut [&mut dyn Observer]) {
        while self.globals.peek_time().is_some_and(|t| t <= end) {
            let ev = self.globals.pop().expect("peeked event must pop");
            debug_assert_eq!(ev.time, end, "cadence events fire only at window barriers");
            match ev.event {
                GridEvent::GossipCycle => {
                    let cycle = self.gossip.stats().cycles;
                    self.fill_gossip_scratch(end);
                    {
                        // Disjoint-field borrows: the protocol reads the scratch states while
                        // advancing its own RNG stream in place (no clone-and-store-back).
                        let Self {
                            gossip,
                            gossip_scratch,
                            gossip_rng,
                            ..
                        } = self;
                        gossip.run_cycle(end, gossip_scratch, gossip_rng);
                    }
                    Observers(observers).emit(|o| o.on_gossip_cycle(end, cycle));
                    self.globals
                        .schedule(end + self.config.gossip_interval, GridEvent::GossipCycle);
                }
                GridEvent::SchedulingCycle => {
                    self.churn_step(end, &mut Observers(observers));
                    self.scheduling_phase_one(end, &mut Observers(observers));
                    self.globals.schedule(
                        end + self.config.scheduling_interval,
                        GridEvent::SchedulingCycle,
                    );
                }
                GridEvent::MetricsSample => {
                    self.metrics.sample(end);
                    let sample = self.grid_sample();
                    Observers(observers).emit(|o| o.on_sample(end, &sample));
                    self.globals
                        .schedule(end + self.config.metrics_interval, GridEvent::MetricsSample);
                }
            }
        }
    }

    fn finish(mut self, end_time: SimTime) -> SimulationReport {
        self.metrics.sample(end_time);
        self.fill_gossip_scratch(end_time);
        let avg_rss_size = self.gossip.average_rss_size(&self.gossip_scratch);
        SimulationReport {
            algorithm: self.scheduler.label(),
            gossip_stats: self.gossip.stats(),
            avg_rss_size,
            end_time,
            nodes: self.config.nodes,
            submitted: self.metrics.submitted(),
            completed: self.metrics.throughput(),
            failed: self.metrics.failed(),
            metrics: self.metrics,
        }
    }
}

/// One in-flight run: the sharded engine stepped one conservative window at a time.
/// The public face of this type is [`Simulation`](crate::simulation::Simulation), which owns
/// the observer list; the session only borrows observers per step so the engine stays free of
/// observer lifetimes.
pub(crate) struct EngineSession {
    state: ShardedEngine,
}

impl EngineSession {
    pub(crate) fn new(scenario: &Scenario, scheduler: Box<dyn Scheduler>) -> Self {
        let mut state = ShardedEngine::from_scenario(scenario, scheduler);
        state
            .globals
            .schedule(SimTime::ZERO, GridEvent::GossipCycle);
        state
            .globals
            .schedule(SimTime::ZERO, GridEvent::MetricsSample);
        state
            .globals
            .schedule(SimTime::ZERO, GridEvent::SchedulingCycle);
        EngineSession { state }
    }

    /// Announce the time-zero workflow submissions (fires once, before the first window).
    /// Workflows with later arrival times are announced when their `WorkflowArrival` event
    /// replays at a window barrier instead.
    pub(crate) fn announce_submissions(&self, observers: &mut [&mut dyn Observer]) {
        let mut obs = Observers(observers);
        if obs.is_empty() {
            return;
        }
        for (wf, w) in self.state.workflows.iter().enumerate() {
            if !w.arrived {
                continue;
            }
            let home = w.home;
            obs.emit(|o| o.on_workflow_submitted(SimTime::ZERO, wf, home));
        }
    }

    /// Execute exactly one conservative time window and return its end instant, or `None` when
    /// the run is over (queues drained or every remaining event lies beyond the horizon).
    pub(crate) fn step(&mut self, observers: &mut [&mut dyn Observer]) -> Option<SimTime> {
        self.state.advance_window(observers)
    }

    /// Start instant of the window [`EngineSession::step`] would execute next.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.state.next_window().map(|(start, _)| start)
    }

    /// Current virtual time (the end of the last executed window).
    pub(crate) fn now(&self) -> SimTime {
        self.state.now
    }

    pub(crate) fn horizon(&self) -> SimTime {
        self.state.horizon
    }

    pub(crate) fn grid_sample(&self) -> GridSample {
        self.state.grid_sample()
    }

    pub(crate) fn label(&self) -> String {
        self.state.scheduler.label()
    }

    pub(crate) fn shard_stats(&self) -> ShardStats {
        self.state.stats()
    }

    /// Close the session: take the final metrics sample (at the horizon if the run completed,
    /// at the current time if it was cut short), mirror it to the observers, and build the
    /// report.  A fully-stepped session produces a report byte-identical to the one-shot run.
    pub(crate) fn finish(self, observers: &mut [&mut dyn Observer]) -> SimulationReport {
        let end_time = if self.peek_time().is_none() {
            self.state.horizon
        } else {
            self.state.now
        };
        let sample = self.state.grid_sample();
        Observers(observers).emit(|o| o.on_sample(end_time, &sample));
        self.state.finish(end_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Algorithm, AlgorithmConfig, SecondPhase};
    use crate::config::{CapacityModel, ChurnConfig};
    use crate::scenario::Scenario;
    use crate::simulation::Simulation;

    fn tiny_config(seed: u64) -> GridConfig {
        let mut cfg = GridConfig::small(12).with_seed(seed);
        cfg.workflows_per_node = 1;
        cfg.workload.generator_mut().tasks = 2..=6;
        cfg.horizon = SimDuration::from_hours(20);
        cfg
    }

    fn simulate(cfg: GridConfig, algorithm: Algorithm) -> Simulation<'static> {
        Scenario::build(cfg)
            .expect("test config is valid")
            .simulate_algorithm(algorithm)
    }

    /// Run a session to the horizon and hand back the internal engine, for white-box tests
    /// asserting on dispatch/execution counters.
    fn run_session(cfg: GridConfig, algo: AlgorithmConfig) -> ShardedEngine {
        let scenario = Scenario::build(cfg).expect("test config is valid");
        let mut session = EngineSession::new(&scenario, Box::new(algo));
        while session.step(&mut []).is_some() {}
        session.state
    }

    #[test]
    fn dsmf_run_completes_workflows_and_reports_metrics() {
        let report = simulate(tiny_config(1), Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 12);
        assert!(
            report.completed > 0,
            "no workflow completed within the horizon"
        );
        assert!(report.act_secs() > 0.0);
        assert!(report.average_efficiency() > 0.0);
        assert!(report.avg_rss_size >= 1.0);
        assert!(report.gossip_stats.cycles > 0);
        assert_eq!(report.algorithm, "DSMF");
        // The throughput series is sampled hourly plus the final sample.
        assert!(report.metrics.throughput_series().len() >= 20);
    }

    #[test]
    fn every_algorithm_runs_on_the_same_shared_scenario() {
        let scenario = Scenario::build(tiny_config(2)).unwrap();
        for alg in Algorithm::ALL {
            let report = scenario.simulate_algorithm(alg).run();
            assert!(
                report.completed > 0,
                "{alg}: no workflow completed within the horizon"
            );
            assert!(report.completed <= report.submitted);
            assert!(report.average_efficiency() > 0.0, "{alg}: zero efficiency");
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed_and_across_scenario_reuse() {
        let scenario = Scenario::build(tiny_config(3)).unwrap();
        let a = scenario.simulate_algorithm(Algorithm::Dsmf).run();
        let b = scenario.simulate_algorithm(Algorithm::Dsmf).run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.act_secs(), b.act_secs());
        assert_eq!(a.average_efficiency(), b.average_efficiency());
        let c = simulate(tiny_config(4), Algorithm::Dsmf).run();
        // A different seed gives a different workload, so at least one headline number differs.
        assert!(
            a.completed != c.completed || a.act_secs() != c.act_secs(),
            "different seeds should produce different runs"
        );
    }

    #[test]
    fn shard_count_never_changes_results() {
        let run_at = |shards: usize, seed: u64| {
            let cfg = tiny_config(seed).with_shards(shards);
            let scenario = Scenario::build(cfg).unwrap();
            let r = scenario.simulate_algorithm(Algorithm::Dsmf).run();
            (
                r.completed,
                r.failed,
                r.act_secs().to_bits(),
                r.average_efficiency().to_bits(),
                r.avg_rss_size.to_bits(),
            )
        };
        for seed in [1, 3] {
            let base = run_at(1, seed);
            for shards in [2, 4, 8] {
                assert_eq!(
                    run_at(shards, seed),
                    base,
                    "seed {seed}: {shards} shards diverged from the single-shard run"
                );
            }
        }
    }

    #[test]
    fn window_invariants_hold_over_a_full_run() {
        let cfg = tiny_config(1).with_shards(4);
        let scenario = Scenario::build(cfg).unwrap();
        let lookahead = scenario.lookahead();
        let mut session = EngineSession::new(
            &scenario,
            Box::new(AlgorithmConfig::paper_default(Algorithm::Dsmf)),
        );
        while session.step(&mut []).is_some() {}
        let stats = session.shard_stats();
        assert_eq!(stats.shards, 4);
        assert!(stats.windows > 0);
        assert!(stats.events > 0);
        assert!(
            stats.max_window_width <= lookahead,
            "window width {} exceeds the lookahead {}",
            stats.max_window_width,
            lookahead
        );
        // Conservative-PDES soundness: nothing ever crossed a shard boundary faster than the
        // lookahead the windows were sized by.
        if let Some(d) = stats.min_cross_shard_delay {
            assert!(
                d >= lookahead,
                "a cross-shard event was delivered after {d}, below the lookahead {lookahead}"
            );
        }
    }

    #[test]
    fn fcfs_ablation_changes_only_the_second_phase() {
        let scenario = Scenario::build(tiny_config(5)).unwrap();
        let paper = scenario
            .simulate_config(AlgorithmConfig::paper_default(Algorithm::MinMin))
            .run();
        let fcfs = scenario
            .simulate_config(AlgorithmConfig::with_fcfs_second_phase(Algorithm::MinMin))
            .run();
        assert_eq!(paper.submitted, fcfs.submitted);
        assert_eq!(fcfs.algorithm, "min-min+FCFS");
        assert!(fcfs.completed > 0);
    }

    #[test]
    fn churn_loses_workflows_but_keeps_the_rest_running() {
        let mut cfg = tiny_config(6).with_churn(ChurnConfig::with_dynamic_factor(0.2));
        cfg.nodes = 20;
        cfg.waxman.nodes = 20;
        let report = simulate(cfg, Algorithm::Dsmf).run();
        // Only stable nodes are home nodes: 50% of 20 = 10 homes, 1 workflow each.
        assert_eq!(report.submitted, 10);
        assert!(report.completed + report.failed <= report.submitted);
        assert!(
            report.completed > 0,
            "churn must not wipe out every workflow"
        );
    }

    #[test]
    fn rescheduling_extension_recovers_lost_tasks() {
        let mut churned = ChurnConfig::with_dynamic_factor(0.3);
        churned.reschedule_lost_tasks = true;
        let mut cfg = tiny_config(7).with_churn(churned);
        cfg.nodes = 20;
        cfg.waxman.nodes = 20;
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(
            report.failed, 0,
            "with rescheduling enabled no workflow should be recorded as failed"
        );
    }

    #[test]
    fn uniform_capacity_single_node_grid_still_finishes() {
        let mut cfg = GridConfig::small(1).with_seed(8);
        cfg.workflows_per_node = 2;
        cfg.capacity = CapacityModel::Uniform(4.0);
        cfg.workload.generator_mut().tasks = 2..=4;
        cfg.horizon = SimDuration::from_hours(30);
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 2);
        assert!(report.completed > 0);
    }

    #[test]
    fn all_tasks_execute_at_most_once() {
        let mut cfg = tiny_config(9);
        cfg.workflows_per_node = 2;
        let state = run_session(cfg, AlgorithmConfig::paper_default(Algorithm::Dsmf));
        let total_tasks: usize = state
            .workflows
            .iter()
            .map(|w| w.workflow.task_count())
            .sum();
        assert!(state.executed_tasks() <= state.dispatched_tasks());
        assert!(state.dispatched_tasks() as usize <= total_tasks);
        // Completed workflows really finished every one of their tasks.
        for w in &state.workflows {
            if w.completed {
                assert!(w.progress.is_complete());
                assert!(w.task_location.iter().all(|l| l.is_some()));
            }
        }
    }

    #[test]
    fn departures_only_fail_workflows_whose_task_was_running() {
        // Under churn, the failure count can never exceed the number of running-task losses:
        // each departure takes down at most one workflow per occupied slot, while queued tasks
        // are silently re-dispatched.  With one workflow per home node and a modest dynamic
        // factor, some workflows must still survive and complete.
        let mut cfg = tiny_config(11).with_churn(ChurnConfig::with_dynamic_factor(0.2));
        cfg.nodes = 30;
        cfg.waxman.nodes = 30;
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 15);
        assert!(report.completed > 0);
        assert!(report.completed + report.failed <= report.submitted);
    }

    #[test]
    fn churn_sweep_baseline_matches_restricted_home_population() {
        // The df = 0 baseline of the churn experiments uses the same stable home population as
        // the churned points, so throughput numbers are directly comparable.
        // tiny_config builds a 12-node grid with one workflow per home node; restricting the
        // home set to the stable half leaves 6 submissions.
        let cfg = tiny_config(16).with_churn(ChurnConfig::with_dynamic_factor(0.0));
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 6);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn second_phase_rule_is_respected_in_reports_label() {
        let report = Scenario::build(tiny_config(10))
            .unwrap()
            .simulate_config(AlgorithmConfig {
                algorithm: Algorithm::Dsmf,
                second_phase: SecondPhase::Fcfs,
            })
            .run();
        assert_eq!(report.algorithm, "DSMF+FCFS");
    }

    #[test]
    fn multi_core_nodes_complete_no_less_than_single_core() {
        // The ResourceModel seam: with the same workload, giving every node four slots (and
        // four times the advertised throughput) must not finish fewer workflows.
        let single = simulate(tiny_config(12), Algorithm::Dsmf).run();
        let quad = simulate(tiny_config(12).with_slots_per_node(4), Algorithm::Dsmf).run();
        assert_eq!(single.submitted, quad.submitted);
        assert!(
            quad.completed >= single.completed,
            "4 slots completed {} < 1 slot's {}",
            quad.completed,
            single.completed
        );
    }

    #[test]
    fn multi_core_nodes_run_tasks_concurrently() {
        // On a single four-slot node, several ready tasks must occupy slots at once at some
        // point: with 2 workflows of 2–4 tasks each on one node, the engine's executed count
        // matches dispatches and the run finishes far faster than serially.
        let mut cfg = GridConfig::small(1).with_seed(14).with_slots_per_node(4);
        cfg.workflows_per_node = 3;
        cfg.capacity = CapacityModel::Uniform(4.0);
        cfg.workload.generator_mut().tasks = 4..=6;
        cfg.horizon = SimDuration::from_hours(30);
        let quad = simulate(cfg.clone(), Algorithm::Dsmf).run();
        let mut single_cfg = cfg;
        single_cfg.resource = crate::config::ResourceModel::single_cpu();
        let single = simulate(single_cfg, Algorithm::Dsmf).run();
        assert!(quad.completed >= single.completed);
        if quad.completed == single.completed && quad.completed > 0 {
            assert!(
                quad.act_secs() <= single.act_secs(),
                "4 slots must not be slower: {} vs {}",
                quad.act_secs(),
                single.act_secs()
            );
        }
    }

    #[test]
    fn heterogeneous_slot_distributions_run_deterministically() {
        use crate::config::{ResourceModel, SlotClass};
        let resource = || {
            ResourceModel::heterogeneous(vec![
                SlotClass {
                    slots: 1,
                    weight: 0.8,
                },
                SlotClass {
                    slots: 16,
                    weight: 0.2,
                },
            ])
        };
        let run = || simulate(tiny_config(15).with_resource(resource()), Algorithm::Dsmf).run();
        let a = run();
        let b = run();
        assert!(a.completed > 0, "heterogeneous grid must make progress");
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.act_secs().to_bits(), b.act_secs().to_bits());

        // The slot sampling draws from its own RNG stream: capacities, workflows and gossip
        // are untouched, so a uniform single-slot run still matches the plain paper config.
        let plain = simulate(tiny_config(15), Algorithm::Dsmf).run();
        let uniform = simulate(
            tiny_config(15).with_resource(crate::config::ResourceModel::single_cpu()),
            Algorithm::Dsmf,
        )
        .run();
        assert_eq!(plain.completed, uniform.completed);
        assert_eq!(plain.act_secs().to_bits(), uniform.act_secs().to_bits());
    }

    #[test]
    fn preemptive_substrate_restarts_displaced_tasks() {
        // A contended single-slot grid under DSMF: successors of short-makespan workflows
        // arrive while long-workflow tasks hold the CPU, so the time-sliced policy must
        // preempt at least once — observable as more task starts than dispatches.
        let preempt = |seed: u64| {
            let mut cfg = tiny_config(seed);
            cfg.workflows_per_node = 2;
            cfg.resource = crate::config::ResourceModel::single_cpu().preemptive();
            run_session(cfg, AlgorithmConfig::paper_default(Algorithm::Dsmf))
        };
        let preempted_somewhere = (20..26).any(|seed| {
            let state = preempt(seed);
            state.executed_tasks() > state.dispatched_tasks()
        });
        assert!(
            preempted_somewhere,
            "no seed in the band ever triggered a preemption"
        );
        // Preempted-and-resumed tasks must still complete their workflows consistently.
        let state = preempt(21);
        for w in &state.workflows {
            if w.completed {
                assert!(w.progress.is_complete());
                assert!(w.task_location.iter().all(|l| l.is_some()));
            }
        }
    }

    #[test]
    fn preemptive_runs_are_deterministic_and_account_consistently() {
        let run = || {
            let cfg = tiny_config(17)
                .with_resource(crate::config::ResourceModel::multi_core(2).preemptive());
            simulate(cfg, Algorithm::Dsmf).run()
        };
        let a = run();
        let b = run();
        assert!(a.completed > 0);
        assert!(a.completed + a.failed <= a.submitted);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.act_secs().to_bits(), b.act_secs().to_bits());
    }

    #[test]
    fn custom_scheduler_plugs_into_the_engine() {
        // The Scheduler seam: a greedy "random-ish but deterministic" policy that was never one
        // of the paper's eight — round-robin dispatch over candidates, FCFS ready sets.
        struct RoundRobin;
        impl crate::scheduler::Scheduler for RoundRobin {
            fn label(&self) -> String {
                "round-robin".to_string()
            }
            fn plan_dispatch(
                &self,
                tasks: &[DispatchCandidateTask],
                candidates: &mut [CandidateNode],
                _estimator: &FinishTimeEstimator<'_>,
            ) -> Vec<crate::policy::first_phase::DispatchDecision> {
                tasks
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let c = &mut candidates[i % candidates.len()];
                        c.add_load(t.load_mi);
                        crate::policy::first_phase::DispatchDecision {
                            workflow: t.workflow,
                            task: t.task,
                            target: c.node,
                            estimated_finish_secs: 0.0,
                            sufferage_secs: 0.0,
                        }
                    })
                    .collect()
            }
            fn ready_key(&self, task: &ReadyTaskView) -> crate::policy::second_phase::ReadyKey {
                crate::policy::second_phase::ready_key(SecondPhase::Fcfs, task)
            }
        }
        let report = Scenario::build(tiny_config(13))
            .unwrap()
            .simulate(Box::new(RoundRobin))
            .run();
        assert_eq!(report.algorithm, "round-robin");
        assert_eq!(report.submitted, 12);
        assert!(
            report.completed > 0,
            "a custom scheduler must still make progress"
        );
    }
}
