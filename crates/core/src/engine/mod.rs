//! The grid engine: a sharded, conservative time-window event loop driving one end-to-end
//! P2P-grid simulation.
//!
//! One engine run reproduces the paper's experimental procedure:
//!
//! 1. A Waxman WAN topology is generated and its pairwise bottleneck bandwidths computed
//!    (the ground truth on which [`transfer::TransferModel`] times migrations).
//! 2. Every node receives a capacity from Table I's {1, 2, 4, 8, 16} MIPS set — and, through
//!    the [`ResourceModel`](crate::config::ResourceModel) seam, a number of execution slots —
//!    and the home nodes receive their workflows at time zero.
//! 3. The **mixed gossip protocol** runs every five minutes, giving every node a bounded `RSS`
//!    of peer states and estimates of the average capacity / bandwidth.
//! 4. The **first scheduling phase** runs every fifteen minutes on every home node: schedule
//!    points are prioritised and dispatched per the configured [`Scheduler`] (Algorithm 1 for
//!    DSMF), program images and dependent data start flowing to the chosen resource nodes.
//! 5. The **second scheduling phase** runs on every resource node whenever an execution slot
//!    frees up: the data-complete ready task with the smallest scheduler
//!    [`ReadyKey`](crate::policy::second_phase::ReadyKey) is popped from the node's indexed
//!    [`node::ReadySet`] and executed for `load / capacity` seconds.
//! 6. Under the configured [`FaultModel`](crate::config::FaultModel), nodes fail: churn takes
//!    a `df` fraction of the churnable population down (and back up) every scheduling
//!    interval, while the stochastic model plays back per-node lifetimes pre-drawn at
//!    scenario build.  Tasks resident on a failed node are lost and handled by the configured
//!    [`RecoveryPolicy`] — fail the workflow (the paper's semantics), retry with budget and
//!    backoff, resume from a checkpoint, or fall back to a replica copy.
//! 7. Throughput, ACT and AE are sampled hourly, exactly like the paper's figures.
//!
//! # The sharded event loop
//!
//! Instead of one global event queue, [`ShardedEngine`] partitions the nodes over `S` shards
//! (a deterministic hash of the node id — see [`ShardSpec`](crate::config::ShardSpec)), each
//! with its own queue and RNG stream, and advances all shards in lockstep **conservative time
//! windows** of width [`Scenario::lookahead`] — the minimum cross-node interaction delay,
//! known at build time from the topology's smallest pairwise latency and the gossip cadence.
//! Within a window, every shard-local event (data arrivals, task completions, slot refills) is
//! independent of every other shard by construction: nodes interact only through dispatches,
//! which originate at the serial scheduling cadence and arrive no earlier than one lookahead
//! away.  Shards therefore execute their windows concurrently on the worker pool, and the
//! result is *identical* to serial execution — parallelism is a pure performance knob.
//!
//! At each window barrier the engine, serially and in canonical order (see `barrier.rs`):
//!
//! 1. applies the shards' buffered completion notices to workflow state and metrics, sorted by
//!    `(time, workflow, task)` so floating-point accumulation never depends on the partition;
//! 2. replays the shards' buffered observer callbacks, merged by `(time, node, emission seq)`,
//!    splicing `on_workflow_completed` right after the matching exit-task finish;
//! 3. applies the shards' fault records, sorted by `(time, node, seq)`, running the recovery
//!    policy and the robustness ledger over them;
//! 4. pops the grid-wide cadence events (gossip, scheduling, metrics) due exactly at the
//!    window's end — windows always close *at* the next cadence instant, so the serial phases
//!    observe every node in a settled state.
//!
//! Reports are byte-identical for every shard count and pool size; only wall-clock changes.
//!
//! Steps 1–2 (and every other seed-derived sample) live in
//! [`Scenario::build`](crate::scenario::Scenario::build) so a sweep pays for them once; the
//! window loop itself runs inside a crate-private session type, which the public
//! [`Simulation`](crate::simulation::Simulation) handle drives one window at a time.  Every
//! externally meaningful transition is mirrored to the session's registered
//! [`Observer`](crate::observer)s — [`node`] (the indexed ready set and slot
//! runtime) and [`transfer`] are exported for benches and tooling; everything else stays
//! crate-private.

pub mod node;
pub mod transfer;
pub(crate) mod workflow;

mod barrier;
mod shard;

pub use shard::ShardStats;

use crate::config::{GridConfig, RecoveryPolicy};
use crate::estimate::{CandidateNode, FinishTimeEstimator, PredecessorData};
use crate::fullahead::PlanInput;
use crate::observer::{GridSample, Observer};
use crate::policy::first_phase::DispatchCandidateTask;
use crate::policy::second_phase::ReadyTaskView;
use crate::report::SimulationReport;
use crate::scenario::Scenario;
use crate::scheduler::Scheduler;
use crate::NodeId;
use barrier::{
    sort_arrivals, sort_faults, sort_notices, sort_observations, ArrivalNotice, BufferedEvent,
    BufferedKind, CompletionNotice, FaultKind, FaultRecord,
};
use node::{NodeRuntime, ReadyEntry};
use p2pgrid_gossip::{LocalNodeState, MixedGossip};
use p2pgrid_metrics::{RobustnessStats, WorkflowMetrics, WorkflowOutcome, WorkflowRecord};
use p2pgrid_sim::{EventQueue, SimDuration, SimRng, SimTime};
use p2pgrid_topology::LandmarkEstimator;
use p2pgrid_workflow::{ExpectedCosts, TaskId, WorkflowAnalysis};
use shard::{run_shards, Shard, ShardEvent, ShardMap, WindowCtx};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use transfer::TransferModel;
use workflow::WorkflowRuntime;

/// Grid-wide cadence events.  These are the only events on the engine's serial queue; all
/// node-local traffic lives on the per-shard queues as [`ShardEvent`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GridEvent {
    /// Run one mixed-gossip cycle on every alive node.
    GossipCycle,
    /// Run the churn step and the first scheduling phase on every home node.
    SchedulingCycle,
    /// Sample throughput / ACT / AE.
    MetricsSample,
}

/// The observers registered on one session, passed down the engine call tree so every hook
/// fires at the exact transition it describes.  Observers only ever receive `&mut self`
/// callbacks with copied event data — they cannot reach engine state, so a run with observers
/// attached stays byte-identical to the same run without them.
pub(crate) struct Observers<'a, 'obs>(pub(crate) &'a mut [&'obs mut dyn Observer]);

impl Observers<'_, '_> {
    /// True when no observer is registered — callers on hot paths skip building event payloads
    /// entirely (the observer fast path; pinned by the `observer_overhead` bench).
    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn emit(&mut self, mut f: impl FnMut(&mut dyn Observer)) {
        if self.0.is_empty() {
            return;
        }
        for o in self.0.iter_mut() {
            f(&mut **o);
        }
    }
}

/// The sharded event loop of one simulation run.
///
/// Owns the node partition (one `Shard` per partition class with its own event queue and RNG
/// stream), the serial grid-wide cadence queue, and all cross-shard state (workflows, metrics,
/// gossip).  Advanced one conservative time window at a time by the crate-private session /
/// [`Simulation`](crate::simulation::Simulation) machinery; the public surface of this type is
/// read-only statistics plus the per-shard RNG seam.
///
/// See the [module docs](self) for the window/barrier protocol and its determinism argument.
pub struct ShardedEngine {
    config: GridConfig,
    scheduler: Box<dyn Scheduler>,
    transfer: Arc<TransferModel>,
    landmarks: Arc<LandmarkEstimator>,
    gossip: MixedGossip,
    gossip_rng: SimRng,
    churn_rng: SimRng,
    /// Reused gossip-state scratch buffer (filled in global node order every cycle), so the
    /// five-minute cadence stops allocating a fresh vector per cycle.
    gossip_scratch: Vec<LocalNodeState>,
    shards: Vec<Shard>,
    map: ShardMap,
    workflows: Vec<WorkflowRuntime>,
    home_of: Arc<Vec<Vec<usize>>>,
    metrics: WorkflowMetrics,
    globals: EventQueue<GridEvent>,
    lookahead: SimDuration,
    now: SimTime,
    horizon: SimTime,
    next_seq: u64,
    dispatched_tasks: u64,
    windows: u64,
    max_window_width: SimDuration,
    cross_shard_events: u64,
    min_cross_shard_delay: Option<SimDuration>,
    /// Barrier scratch: merged workflow arrivals of the current window.
    arrivals: Vec<ArrivalNotice>,
    /// Barrier scratch: merged completion notices of the current window.
    notices: Vec<CompletionNotice>,
    /// Barrier scratch: merged buffered observations of the current window.
    observations: Vec<BufferedEvent>,
    /// Barrier scratch: exit tasks that completed their workflow this window, so the
    /// observation replay can splice `on_workflow_completed` after the matching finish.
    completed_markers: HashSet<(usize, TaskId)>,
    /// Barrier scratch: merged fault records of the current window.
    fault_records: Vec<FaultRecord>,
    /// Fault / recovery accounting, mutated only at window barriers in canonical event order.
    robustness: RobustnessStats,
    /// Per-workflow completed-work accumulator in MI; resolved into `useful_mi` when the
    /// workflow finishes and into `wasted_mi` when it fails.
    wf_completed_mi: Vec<f64>,
    /// Retry counters per lost running task (`RecoveryPolicy::Retry`).  Lookup-only — never
    /// iterated, so the hash order can never leak into results.
    attempts: HashMap<(usize, TaskId), u32>,
    /// Earliest re-dispatch instant per retried task (the retry backoff gate).  Lookup-only.
    retry_after: HashMap<(usize, TaskId), SimTime>,
    /// Residual load in MI of checkpointed tasks awaiting their resumed run.  Lookup-only.
    load_override: HashMap<(usize, TaskId), f64>,
    /// Nodes holding a live copy of each replicated in-flight task.  Lookup-only.
    replica_sites: HashMap<(usize, TaskId), Vec<NodeId>>,
    /// Loss instant of each task awaiting its recovery re-dispatch (for the recovery-latency
    /// metric).  Lookup-only.
    pending_recovery: HashMap<(usize, TaskId), SimTime>,
}

impl ShardedEngine {
    /// Clone the scenario's mutable runtime state into a fresh engine — partitioning the nodes
    /// into shards per the config's [`ShardSpec`](crate::config::ShardSpec) — and run the
    /// scheduler's full-ahead planning pass (HEFT / SMF plan centrally before execution).
    pub(crate) fn from_scenario(scenario: &Scenario, scheduler: Box<dyn Scheduler>) -> Self {
        let world = scenario.world();
        let mut workflows = (*world.workflows).clone();
        let horizon = SimTime::ZERO + world.config.horizon;
        // Workflows arriving at time zero (all of them under the paper's batch model) are
        // counted as submitted right away, exactly as the pre-arrival engine did.  Later
        // arrivals are counted when their `WorkflowArrival` event applies at a window
        // barrier; arrivals beyond the horizon never enter the system at all.
        let mut metrics = WorkflowMetrics::new(scheduler.label());
        for w in &workflows {
            if w.arrived {
                metrics.record_submission();
            }
        }

        {
            let inputs: Vec<PlanInput<'_>> = workflows
                .iter()
                .map(|w| PlanInput {
                    home: w.home,
                    workflow: &w.workflow,
                })
                .collect();
            let candidates: Vec<CandidateNode> = world
                .nodes
                .iter()
                .enumerate()
                .map(|(i, nd)| CandidateNode {
                    node: i,
                    capacity_mips: nd.advertised_capacity_mips(),
                    slots: nd.slots,
                    total_load_mi: 0.0,
                })
                .collect();
            let transfer = &world.transfer;
            let bw = |a: NodeId, b: NodeId| transfer.bandwidth_mbps(a, b);
            if let Some(plans) =
                scheduler.plan_full_ahead(&inputs, &candidates, world.true_costs, &bw)
            {
                assert_eq!(
                    plans.len(),
                    workflows.len(),
                    "full-ahead scheduler must plan every workflow"
                );
                for (w, plan) in workflows.iter_mut().zip(plans) {
                    assert_eq!(
                        plan.len(),
                        w.workflow.task_count(),
                        "full-ahead plan must place every task"
                    );
                    w.plan = Some(plan);
                }
            }
        }

        let shard_count = world.config.shards.resolve(world.nodes.len());
        let (map, members) = ShardMap::new(world.nodes.len(), shard_count);
        let mut shards: Vec<Shard> = members
            .into_iter()
            .enumerate()
            .map(|(id, node_ids)| {
                let nodes = node_ids.iter().map(|&n| world.nodes[n].clone()).collect();
                Shard::new(id, node_ids, nodes, world.config.seed)
            })
            .collect();

        // Schedule the deferred arrivals into their home nodes' shard queues, in workflow
        // order.  This runs before any window, so every arrival is among the first insertions
        // of its shard's queue and per-node event order stays shard-count independent.
        // Arrivals beyond the horizon are dropped here — those workflows never enter the
        // system and are never counted as submitted.
        for (wf, w) in workflows.iter().enumerate() {
            if !w.arrived && w.submitted_at <= horizon {
                let shard = map.shard_of[w.home];
                let local = map.local_of[w.home];
                shards[shard]
                    .queue
                    .schedule(w.submitted_at, ShardEvent::WorkflowArrival { local, wf });
            }
        }

        // Schedule the pre-drawn stochastic fault events into their owning shards' queues, in
        // the schedule's canonical node-major order.  Like the arrivals above this runs before
        // any window, so per-node event order — and with it every report byte — is independent
        // of the shard count.  The schedule is already clipped to the horizon at build.
        for &(node, time, down) in world.faults.iter() {
            let shard = map.shard_of[node];
            let local = map.local_of[node];
            let event = if down {
                ShardEvent::NodeFailure { local }
            } else {
                ShardEvent::NodeRepair { local }
            };
            shards[shard].queue.schedule(time, event);
        }

        ShardedEngine {
            config: world.config.clone(),
            scheduler,
            transfer: Arc::clone(&world.transfer),
            landmarks: Arc::clone(&world.landmarks),
            gossip: world.gossip.clone(),
            gossip_rng: world.gossip_rng.clone(),
            churn_rng: world.churn_rng.clone(),
            gossip_scratch: Vec::with_capacity(map.len()),
            shards,
            map,
            workflows,
            home_of: Arc::clone(&world.home_of),
            metrics,
            globals: EventQueue::new(),
            lookahead: world.lookahead,
            now: SimTime::ZERO,
            horizon,
            next_seq: 0,
            dispatched_tasks: 0,
            windows: 0,
            max_window_width: SimDuration::ZERO,
            cross_shard_events: 0,
            min_cross_shard_delay: None,
            arrivals: Vec::new(),
            notices: Vec::new(),
            observations: Vec::new(),
            completed_markers: HashSet::new(),
            fault_records: Vec::new(),
            robustness: RobustnessStats::new(),
            wf_completed_mi: vec![0.0; world.workflows.len()],
            attempts: HashMap::new(),
            retry_after: HashMap::new(),
            load_override: HashMap::new(),
            replica_sites: HashMap::new(),
            pending_recovery: HashMap::new(),
        }
    }

    // ----- public read-only surface --------------------------------------------------------

    /// Aggregate counters of the sharded run so far: window count and widths, per-shard event
    /// totals and cross-shard traffic.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            shards: self.shards.len(),
            windows: self.windows,
            max_window_width: self.max_window_width,
            events: self.shards.iter().map(|s| s.events_processed).sum(),
            cross_shard_events: self.cross_shard_events,
            min_cross_shard_delay: self.min_cross_shard_delay,
        }
    }

    /// Number of shards the node population is partitioned into (the resolved
    /// [`ShardSpec`](crate::config::ShardSpec)).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The conservative time-window width: no cross-shard event can arrive sooner than this,
    /// so shards within a window are independent.  See [`Scenario::lookahead`].
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Mutable access to one shard's dedicated RNG stream.
    ///
    /// The stream is split deterministically from the master seed by shard index, so draws in
    /// one shard never perturb any other shard (or any other component).  The engine itself
    /// draws nothing from it today; it is the seam for stochastic *in-shard* models — e.g.
    /// per-node failure injection — that future substrates can consume without threading a new
    /// RNG through the partition.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn shard_rng_mut(&mut self, shard: usize) -> &mut SimRng {
        &mut self.shards[shard].rng
    }

    /// Task executions started so far, summed over the per-shard counters.  Can exceed
    /// [`ShardedEngine::dispatched_tasks`] on preemptive substrates, where displaced tasks
    /// restart from scratch.
    pub fn executed_tasks(&self) -> u64 {
        self.shards.iter().map(|s| s.executed).sum()
    }

    /// Tasks dispatched by the first scheduling phase so far.
    pub fn dispatched_tasks(&self) -> u64 {
        self.dispatched_tasks
    }

    // ----- helpers -------------------------------------------------------------------------

    fn node(&self, id: NodeId) -> &NodeRuntime {
        &self.shards[self.map.shard_of[id]].nodes[self.map.local_of[id]]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut NodeRuntime {
        &mut self.shards[self.map.shard_of[id]].nodes[self.map.local_of[id]]
    }

    /// Refill the reusable gossip-state buffer, iterating nodes in *global* id order so the
    /// gossip protocol (and its floating-point averages) never see the shard partition.
    fn fill_gossip_scratch(&mut self, now: SimTime) {
        let Self {
            shards,
            map,
            gossip_scratch,
            ..
        } = self;
        gossip_scratch.clear();
        for id in 0..map.len() {
            let nd = &shards[map.shard_of[id]].nodes[map.local_of[id]];
            gossip_scratch.push(LocalNodeState {
                alive: nd.alive,
                capacity_mips: nd.advertised_capacity_mips(),
                slots: nd.slots,
                total_load_mi: nd.total_load_mi(now),
                local_avg_bandwidth_mbps: nd.local_avg_bandwidth_mbps,
            });
        }
    }

    /// One aggregate snapshot over the alive population, built from the per-node `O(1)`
    /// accessors in global node order — `O(nodes)` total, no heap walks.
    fn grid_sample(&self) -> GridSample {
        let mut sample = GridSample {
            alive_nodes: 0,
            ready_tasks: 0,
            selectable_tasks: 0,
            running_tasks: 0,
            queued_load_mi: 0.0,
        };
        for id in 0..self.map.len() {
            let nd = self.node(id);
            if !nd.alive {
                continue;
            }
            sample.alive_nodes += 1;
            sample.ready_tasks += nd.ready.len();
            sample.selectable_tasks += nd.ready.selectable_len();
            sample.running_tasks += nd.running.len();
            sample.queued_load_mi += nd.ready.queued_load_mi();
        }
        sample
    }

    fn fail_workflow(&mut self, wf: usize, now: SimTime, obs: &mut Observers<'_, '_>) {
        let w = &mut self.workflows[wf];
        if !w.is_active() {
            return;
        }
        w.failed = true;
        self.metrics.record_failure(WorkflowRecord {
            submitted_at: w.submitted_at,
            completed_at: now,
            expected_finish_secs: w.eft_secs,
            outcome: WorkflowOutcome::Failed,
        });
        // Every task the failed workflow had completed is now work the grid executed for
        // nothing.
        self.robustness.wasted_mi += self.wf_completed_mi[wf];
        self.wf_completed_mi[wf] = 0.0;
        obs.emit(|o| o.on_workflow_failed(now, wf));
    }

    /// A node departs (the churn model's barrier-side path).  Every resident task goes
    /// through the configured [`RecoveryPolicy`] — with the paper-default `FailWorkflow`,
    /// waiting tasks requeue for free and running tasks take their workflow down, exactly the
    /// original churn semantics.
    fn handle_departure(&mut self, node: NodeId, now: SimTime, obs: &mut Observers<'_, '_>) {
        if !self.node(node).alive {
            return;
        }
        let rate_mips = self.node(node).capacity_mips;
        let (waiting, running) = self.node_mut(node).depart(now);
        self.robustness.node_failures += 1;
        for (wf, task) in waiting {
            obs.emit(|o| o.on_task_lost(now, node, wf, task));
            self.recover_lost_task(wf, task, node, false, 0.0, 0.0, rate_mips, now, obs);
        }
        for lost in running {
            obs.emit(|o| o.on_task_lost(now, node, lost.wf, lost.task));
            self.recover_lost_task(
                lost.wf,
                lost.task,
                node,
                true,
                lost.total_secs,
                lost.executed_secs,
                rate_mips,
                now,
                obs,
            );
        }
        self.gossip.forget_node(node);
        obs.emit(|o| o.on_node_departed(now, node));
    }

    fn handle_join(&mut self, node: NodeId, now: SimTime, obs: &mut Observers<'_, '_>) {
        if !self.node(node).alive {
            self.node_mut(node).join();
            self.robustness.node_repairs += 1;
            obs.emit(|o| o.on_node_joined(now, node));
        }
    }

    fn churn_step(&mut self, now: SimTime, obs: &mut Observers<'_, '_>) {
        let Some(churn) = self.config.churn() else {
            return;
        };
        let df = churn.dynamic_factor;
        if df <= 0.0 {
            return;
        }
        let total = self.map.len();
        let churn_count = ((total as f64) * df).round() as usize;
        if churn_count == 0 {
            return;
        }
        let alive_churnable: Vec<NodeId> = (0..total)
            .filter(|&i| {
                let nd = self.node(i);
                nd.churnable && nd.alive
            })
            .collect();
        let dead_churnable: Vec<NodeId> = (0..total)
            .filter(|&i| {
                let nd = self.node(i);
                nd.churnable && !nd.alive
            })
            .collect();
        // A large `df` can ask for more departures (or joins) than the respective pool can
        // provide — clamp each draw to its own pool explicitly instead of relying on the
        // sampler's silent truncation.  (The pools may legitimately differ in size: the dead
        // pool is empty on the very first churn step, so the two draws are clamped
        // independently, not to a common minimum.)
        let leave_count = churn_count.min(alive_churnable.len());
        let join_count = churn_count.min(dead_churnable.len());
        let leaving: Vec<NodeId> = self
            .churn_rng
            .choose_multiple(&alive_churnable, leave_count)
            .into_iter()
            .copied()
            .collect();
        let joining: Vec<NodeId> = self
            .churn_rng
            .choose_multiple(&dead_churnable, join_count)
            .into_iter()
            .copied()
            .collect();
        debug_assert_eq!(
            leaving.len(),
            leave_count,
            "departure draw desynchronized from the churnable pool"
        );
        debug_assert_eq!(
            joining.len(),
            join_count,
            "join draw desynchronized from the dead pool"
        );
        for node in leaving {
            self.handle_departure(node, now, obs);
        }
        for node in joining {
            self.handle_join(node, now, obs);
        }
    }

    // ----- recovery ------------------------------------------------------------------------

    /// Apply the configured [`RecoveryPolicy`] to one task that was resident on a failed
    /// node.  Shared by the churn step (barrier-side departures) and the stochastic fault
    /// pass (per-task `Lost` records merged from the shards).  A *waiting* copy never
    /// executed anything, so requeueing it is free under every policy — exactly the original
    /// churn engine's behavior; only *running* losses consume retry budget, cash in
    /// checkpoints, or fail the workflow.
    #[allow(clippy::too_many_arguments)]
    fn recover_lost_task(
        &mut self,
        wf: usize,
        task: TaskId,
        node: NodeId,
        was_running: bool,
        total_secs: f64,
        executed_secs: f64,
        rate_mips: f64,
        now: SimTime,
        obs: &mut Observers<'_, '_>,
    ) {
        self.robustness.tasks_lost += 1;
        if !self.workflows[wf].is_active() {
            self.robustness.wasted_mi += executed_secs * rate_mips;
            return;
        }
        if self.workflows[wf].task_location[task.index()].is_some() {
            // Another replica copy already completed the task; only the twin's progress died.
            self.robustness.wasted_mi += executed_secs * rate_mips;
            if let Some(sites) = self.replica_sites.get_mut(&(wf, task)) {
                sites.retain(|&n| n != node);
            }
            return;
        }
        if let RecoveryPolicy::Replicate { .. } = self.config.recovery {
            let alive_twins = match self.replica_sites.get_mut(&(wf, task)) {
                Some(sites) => {
                    sites.retain(|&n| n != node);
                    !sites.is_empty()
                }
                None => false,
            };
            self.robustness.wasted_mi += executed_secs * rate_mips;
            if alive_twins {
                return; // other copies are still in flight — nothing to reschedule
            }
            // Every copy is gone: requeue like a waiting loss (replication has no budget).
            self.replica_sites.remove(&(wf, task));
            self.requeue(wf, task, now);
            return;
        }
        if !was_running {
            self.requeue(wf, task, now);
            return;
        }
        match self.config.recovery {
            RecoveryPolicy::FailWorkflow => {
                self.robustness.wasted_mi += executed_secs * rate_mips;
                self.fail_workflow(wf, now, obs);
            }
            RecoveryPolicy::Retry { budget, backoff } => {
                let counter = self.attempts.entry((wf, task)).or_insert(0);
                *counter += 1;
                let attempt = *counter;
                self.robustness.wasted_mi += executed_secs * rate_mips;
                if attempt > budget {
                    self.fail_workflow(wf, now, obs);
                    return;
                }
                self.robustness.retries += 1;
                // Linear backoff: the n-th retry waits n backoff periods before it may be
                // re-dispatched.
                let delay = SimDuration::from_secs_f64(backoff.as_secs_f64() * attempt as f64);
                self.retry_after.insert((wf, task), now + delay);
                self.requeue(wf, task, now);
                obs.emit(|o| o.on_task_retried(now, wf, task, attempt));
            }
            RecoveryPolicy::Checkpoint { interval } => {
                // Work up to the last checkpoint boundary survives; everything past it is
                // wasted, and the resumed run only has to execute the residual.
                let interval_secs = interval.as_secs_f64();
                let checkpointed_secs = (executed_secs / interval_secs).floor() * interval_secs;
                self.robustness.wasted_mi += (executed_secs - checkpointed_secs) * rate_mips;
                if checkpointed_secs > 0.0 {
                    let residual_mi = (total_secs - checkpointed_secs) * rate_mips;
                    self.load_override.insert((wf, task), residual_mi);
                }
                self.requeue(wf, task, now);
            }
            RecoveryPolicy::Replicate { .. } => unreachable!("handled above"),
        }
    }

    /// Turn a lost task back into a schedule point and start its recovery-latency clock.
    fn requeue(&mut self, wf: usize, task: TaskId, now: SimTime) {
        self.workflows[wf].progress.unmark_dispatched(task);
        self.pending_recovery.entry((wf, task)).or_insert(now);
    }

    /// True when the task may be dispatched at `now` (its retry backoff, if any, elapsed).
    fn dispatchable(&self, wf: usize, task: TaskId, now: SimTime) -> bool {
        self.retry_after
            .get(&(wf, task))
            .is_none_or(|&after| after <= now)
    }

    /// Cancel one still-in-flight replica copy after another copy completed first: drop a
    /// queued twin outright (it never executed, so nothing is wasted), or remove a running
    /// twin — booking its execution as wasted — and refill the freed slot at the next
    /// window's start.  An in-flight completion event of the cancelled run finds no matching
    /// running entry and goes stale, exactly like after a preemption.
    fn cancel_replica(&mut self, wf: usize, task: TaskId, site: NodeId) {
        let shard = self.map.shard_of[site];
        let local = self.map.local_of[site];
        let now = self.now;
        let wasted_mi = {
            let node = &mut self.shards[shard].nodes[local];
            if node.ready.remove(wf, task).is_some() {
                return;
            }
            match node.cancel_running(wf, task, now) {
                Some(executed_secs) => executed_secs * node.capacity_mips,
                None => return, // already gone (its node failed first)
            }
        };
        self.robustness.wasted_mi += wasted_mi;
        self.shards[shard]
            .queue
            .schedule(now, ShardEvent::SlotFreed { local });
    }

    // ----- first phase ---------------------------------------------------------------------

    fn scheduling_phase_one(&mut self, now: SimTime, obs: &mut Observers<'_, '_>) {
        let home_nodes: Vec<NodeId> = (0..self.map.len())
            .filter(|&i| self.node(i).alive && !self.home_of[i].is_empty())
            .collect();
        for home in home_nodes {
            if self.workflows[self.home_of[home][0]].plan.is_some() {
                self.dispatch_full_ahead(home, now, obs);
            } else {
                self.dispatch_just_in_time(home, now, obs);
            }
        }
    }

    /// Dispatch every current schedule point of a full-ahead plan to its pre-planned node
    /// (falling back to the home node if the planned node has churned away).
    fn dispatch_full_ahead(&mut self, home: NodeId, now: SimTime, obs: &mut Observers<'_, '_>) {
        let wf_indices = self.home_of[home].clone();
        for wf in wf_indices {
            if !self.workflows[wf].is_active() {
                continue;
            }
            let sps = {
                let w = &self.workflows[wf];
                w.progress.schedule_points(&w.workflow)
            };
            for task in sps {
                if !self.dispatchable(wf, task, now) {
                    continue;
                }
                let planned =
                    self.workflows[wf].plan.as_ref().expect("full-ahead plan")[task.index()];
                let target = if self.node(planned).alive {
                    planned
                } else {
                    home
                };
                let (rpm, ms, sufferage) = {
                    let w = &self.workflows[wf];
                    (w.static_rpm[task.index()], w.static_ms_secs, 0.0)
                };
                // Full-ahead plans place exactly one copy per task; `RecoveryPolicy::Replicate`
                // only fans out on the just-in-time path.
                self.dispatch_task(home, wf, task, target, rpm, ms, sufferage, now, obs, false);
            }
        }
    }

    /// Algorithm 1 (and its competitor orderings) at one home node.
    fn dispatch_just_in_time(&mut self, home: NodeId, now: SimTime, obs: &mut Observers<'_, '_>) {
        // The home node's estimates of the system-wide averages come from the aggregation
        // gossip; its candidate set comes from the epidemic gossip's RSS.
        let (avg_cap, avg_bw) = self.gossip.expected_costs(home);
        let costs = ExpectedCosts::new(avg_cap, avg_bw);

        let mut candidate_tasks: Vec<DispatchCandidateTask> = Vec::new();
        let wf_indices = self.home_of[home].clone();
        for &wf in &wf_indices {
            let w = &self.workflows[wf];
            if !w.is_active() {
                continue;
            }
            let sps = w.progress.schedule_points(&w.workflow);
            if sps.is_empty() {
                continue;
            }
            let analysis = WorkflowAnalysis::new(&w.workflow, costs);
            let ms = sps
                .iter()
                .map(|&t| analysis.rpm_secs(t))
                .fold(0.0f64, f64::max);
            for t in sps {
                if !self.dispatchable(wf, t, now) {
                    continue; // still inside its retry backoff
                }
                let predecessors: Vec<PredecessorData> = w
                    .workflow
                    .precedents(t)
                    .iter()
                    .map(|e| PredecessorData {
                        location: w.output_location(e.task),
                        data_mb: e.data_mb,
                    })
                    .collect();
                candidate_tasks.push(DispatchCandidateTask {
                    workflow: wf,
                    task: t,
                    // A checkpointed task only has its residual load left to execute.
                    load_mi: self
                        .load_override
                        .get(&(wf, t))
                        .copied()
                        .unwrap_or(w.workflow.task(t).load_mi),
                    image_size_mb: w.workflow.task(t).image_size_mb,
                    rpm_secs: analysis.rpm_secs(t),
                    workflow_ms_secs: ms,
                    predecessors,
                });
            }
        }
        if candidate_tasks.is_empty() {
            return;
        }

        // Candidate resource nodes: the home node's RSS (always contains itself once gossip has
        // run; fall back to the home node before that), restricted to currently alive nodes.
        let mut candidates: Vec<CandidateNode> = self
            .gossip
            .rss(home)
            .records()
            .filter(|r| self.node(r.node).alive)
            .map(|r| CandidateNode {
                node: r.node,
                capacity_mips: r.capacity_mips,
                slots: r.slots,
                total_load_mi: r.total_load_mi,
            })
            .collect();
        if candidates.is_empty() {
            candidates.push(CandidateNode {
                node: home,
                capacity_mips: self.node(home).advertised_capacity_mips(),
                slots: self.node(home).slots,
                total_load_mi: self.node(home).total_load_mi(now),
            });
        }

        let landmarks = &self.landmarks;
        let bw_estimate =
            move |a: NodeId, b: NodeId| -> f64 { landmarks.estimate_bandwidth_mbps(a, b) };
        let estimator = FinishTimeEstimator::new(home, &bw_estimate);
        let decisions = self
            .scheduler
            .plan_dispatch(&candidate_tasks, &mut candidates, &estimator);
        let lookup: std::collections::HashMap<(usize, TaskId), (f64, f64)> = candidate_tasks
            .iter()
            .map(|t| ((t.workflow, t.task), (t.rpm_secs, t.workflow_ms_secs)))
            .collect();
        let copies = match self.config.recovery {
            RecoveryPolicy::Replicate { copies } => copies,
            _ => 1,
        };
        for d in decisions {
            let (rpm, ms) = lookup[&(d.workflow, d.task)];
            let dispatched = self.dispatch_task(
                home,
                d.workflow,
                d.task,
                d.target,
                rpm,
                ms,
                d.sufferage_secs,
                now,
                obs,
                false,
            );
            if copies <= 1 || !dispatched {
                continue;
            }
            // Replicate: fan the task out to `copies - 1` further alive nodes, taken in the
            // scheduler's post-plan candidate order.  The first copy to complete wins; the
            // barrier cancels the rest.
            let mut extra: Vec<NodeId> = Vec::new();
            for c in candidates.iter() {
                if extra.len() + 1 >= copies {
                    break;
                }
                if c.node != d.target && !extra.contains(&c.node) && self.node(c.node).alive {
                    extra.push(c.node);
                }
            }
            for twin in extra {
                self.dispatch_task(
                    home,
                    d.workflow,
                    d.task,
                    twin,
                    rpm,
                    ms,
                    d.sufferage_secs,
                    now,
                    obs,
                    true,
                );
            }
        }
    }

    /// Migrate a task to its chosen resource node: mark it dispatched, enqueue it in the ready
    /// set and schedule the completion of its (true) data transfers into the target's shard.
    /// A `replica` dispatch (the fan-out copies of `RecoveryPolicy::Replicate`) enqueues and
    /// transfers like the primary but never touches workflow progress or the dispatch
    /// counters — the task is dispatched once, executed possibly many times.
    ///
    /// Returns `false` when the migration failed because the target is dead (the task then
    /// simply stays a schedule point).
    ///
    /// This is the **only** place events enter a shard queue from outside the shard, and it
    /// runs at window barriers (the scheduling cadence).  For a cross-shard dispatch the
    /// transfer delay includes at least one network hop's latency, which lower-bounds it by
    /// the engine's lookahead — the conservative-PDES soundness invariant tracked in
    /// [`ShardStats::min_cross_shard_delay`].
    #[allow(clippy::too_many_arguments)]
    fn dispatch_task(
        &mut self,
        home: NodeId,
        wf: usize,
        task: TaskId,
        target: NodeId,
        rpm_secs: f64,
        ms_secs: f64,
        sufferage_secs: f64,
        now: SimTime,
        obs: &mut Observers<'_, '_>,
        replica: bool,
    ) -> bool {
        if !self.node(target).alive {
            // A stale RSS record pointed at a node that just churned away; the migration fails
            // before any computation happens, so the task simply stays a schedule point and is
            // retried at the next scheduling cycle.
            return false;
        }
        let (load_mi, image_mb, inputs): (f64, f64, Vec<(NodeId, f64)>) = {
            let w = &self.workflows[wf];
            let t = w.workflow.task(task);
            let inputs = w
                .workflow
                .precedents(task)
                .iter()
                .map(|e| (w.output_location(e.task), e.data_mb))
                .collect();
            let load = self
                .load_override
                .get(&(wf, task))
                .copied()
                .unwrap_or(t.load_mi);
            (load, t.image_size_mb, inputs)
        };
        if !replica {
            self.workflows[wf].progress.mark_dispatched(task);
            self.dispatched_tasks += 1;
            self.retry_after.remove(&(wf, task));
            if let Some(lost_at) = self.pending_recovery.remove(&(wf, task)) {
                self.robustness.recovery_latency_secs_sum +=
                    now.saturating_duration_since(lost_at).as_secs_f64();
                self.robustness.recoveries += 1;
            }
        }
        if matches!(self.config.recovery, RecoveryPolicy::Replicate { .. }) {
            self.replica_sites
                .entry((wf, task))
                .or_default()
                .push(target);
        }

        // True transfer times on the ground-truth network: program image from the home node
        // plus dependent data from every precedent's execution site, all in parallel.
        let transfer_secs = self
            .transfer
            .arrival_delay_secs(home, target, image_mb, &inputs);
        let view = ReadyTaskView {
            workflow_ms_secs: ms_secs,
            rpm_secs,
            exec_secs: self.node(target).execution_secs(load_mi),
            sufferage_secs,
            enqueued_seq: self.next_seq,
        };
        self.next_seq += 1;
        let key = self.scheduler.ready_key(&view);
        let target_shard = self.map.shard_of[target];
        let local = self.map.local_of[target];
        self.shards[target_shard].nodes[local]
            .ready
            .insert(ReadyEntry {
                wf,
                task,
                load_mi,
                key,
                view,
                data_ready: false,
            });
        obs.emit(|o| o.on_task_dispatched(now, wf, task, target));
        let delay = SimDuration::from_secs_f64(transfer_secs);
        if self.map.shard_of[home] != target_shard {
            self.cross_shard_events += 1;
            self.min_cross_shard_delay = Some(match self.min_cross_shard_delay {
                Some(d) if d <= delay => d,
                _ => delay,
            });
        }
        let epoch = self.shards[target_shard].nodes[local].epoch;
        self.shards[target_shard].queue.schedule(
            now + delay,
            ShardEvent::DataReady {
                local,
                epoch,
                wf,
                task,
            },
        );
        true
    }

    // ----- the window loop -------------------------------------------------------------------

    /// Bounds of the next conservative window: `start` is the earliest pending event anywhere,
    /// `end` caps it at one lookahead, clipped to the next grid-wide cadence instant and the
    /// horizon.  `None` when the run is over (no pending event at or before the horizon).
    fn next_window(&self) -> Option<(SimTime, SimTime)> {
        let local_min = self.shards.iter().filter_map(|s| s.queue.peek_time()).min();
        let global_min = self.globals.peek_time();
        let start = match (local_min, global_min) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        if start > self.horizon {
            return None;
        }
        let mut end = start + self.lookahead;
        if let Some(g) = global_min {
            end = end.min(g);
        }
        end = end.min(self.horizon);
        Some((start, end))
    }

    /// Execute one conservative time window: run every shard (in parallel when the pool and the
    /// partition allow), then run the barrier — apply completion notices, replay observations,
    /// handle the grid-wide cadences due at the window's end.  Returns the window's end, or
    /// `None` when the run is over.
    fn advance_window(&mut self, observers: &mut [&mut dyn Observer]) -> Option<SimTime> {
        let (start, end) = self.next_window()?;
        {
            let Self {
                shards,
                scheduler,
                config,
                ..
            } = self;
            let ctx = WindowCtx {
                scheduler: &**scheduler,
                preemptive: config.resource.is_preemptive(),
                observing: !observers.is_empty(),
            };
            run_shards(shards, end, &ctx);
        }
        self.now = end;
        self.windows += 1;
        let width = end.saturating_duration_since(start);
        if width > self.max_window_width {
            self.max_window_width = width;
        }
        self.apply_arrivals();
        self.apply_notices();
        self.flush_observations(observers);
        self.apply_faults(observers);
        self.handle_globals(end, observers);
        Some(end)
    }

    /// Barrier step 0: merge the shards' workflow arrivals, sort them canonically by
    /// `(time, workflow)` and apply them — the workflow becomes visible to scheduling (its
    /// next chance is the scheduling cadence) and the submission is counted.  Runs before
    /// [`ShardedEngine::apply_notices`]: nothing can complete before it arrives.
    fn apply_arrivals(&mut self) {
        let Self {
            shards,
            arrivals,
            workflows,
            metrics,
            ..
        } = self;
        arrivals.clear();
        for s in shards.iter_mut() {
            arrivals.append(&mut s.arrivals);
        }
        if arrivals.is_empty() {
            return;
        }
        sort_arrivals(arrivals);
        for a in arrivals.iter() {
            workflows[a.wf].arrived = true;
            metrics.record_submission();
        }
    }

    /// Barrier step 1: merge the shards' completion notices, sort them canonically and apply
    /// them to workflow state, metrics and the work ledger.  Runs unconditionally — workflow
    /// progress is engine state, not an observation.
    fn apply_notices(&mut self) {
        let mut notices = std::mem::take(&mut self.notices);
        notices.clear();
        self.completed_markers.clear();
        for s in self.shards.iter_mut() {
            notices.append(&mut s.outbox);
        }
        if !notices.is_empty() {
            sort_notices(&mut notices);
            for n in notices.iter() {
                self.apply_one_notice(n);
            }
        }
        self.notices = notices;
    }

    /// Apply one canonical-order completion notice: record the executed work, resolve replica
    /// twins (first completion wins) and advance workflow state.
    fn apply_one_notice(&mut self, n: &CompletionNotice) {
        let wf = n.wf;
        if !self.workflows[wf].is_active() {
            // The run finished after its workflow already failed: pure waste.
            self.robustness.wasted_mi += n.load_mi;
            return;
        }
        if self.workflows[wf].task_location[n.task.index()].is_some() {
            // A replica twin finished a task another copy completed earlier: pure waste.
            self.robustness.wasted_mi += n.load_mi;
            return;
        }
        self.wf_completed_mi[wf] += n.load_mi;
        // First completion wins — cancel every remaining replica copy.
        if let Some(sites) = self.replica_sites.remove(&(wf, n.task)) {
            for site in sites {
                if site != n.node {
                    self.cancel_replica(wf, n.task, site);
                }
            }
        }
        self.load_override.remove(&(wf, n.task));
        self.attempts.remove(&(wf, n.task));
        let w = &mut self.workflows[wf];
        if w.apply_completion(n.task, n.node) {
            w.completed = true;
            let record = WorkflowRecord {
                submitted_at: w.submitted_at,
                completed_at: n.time,
                expected_finish_secs: w.eft_secs,
                outcome: WorkflowOutcome::Completed,
            };
            self.metrics.record_completion(record);
            self.completed_markers.insert((wf, n.task));
            // Every task the workflow completed is retroactively useful work.
            self.robustness.useful_mi += self.wf_completed_mi[wf];
            self.wf_completed_mi[wf] = 0.0;
        }
    }

    /// Barrier step 3 (after the observation replay): merge the shards' fault records, sort
    /// them canonically by `(time, node, seq)` and run the recovery policy over them — so the
    /// gossip forget / recovery decisions and their floating-point accounting never depend on
    /// the partition.  The `on_node_departed` / `on_node_joined` / `on_task_lost` callbacks
    /// for these faults are *not* emitted here: the shards buffered them, and the observation
    /// replay already delivered them interleaved with the task events in canonical order.
    fn apply_faults(&mut self, observers: &mut [&mut dyn Observer]) {
        let mut records = std::mem::take(&mut self.fault_records);
        records.clear();
        for s in self.shards.iter_mut() {
            records.append(&mut s.faults);
        }
        if !records.is_empty() {
            sort_faults(&mut records);
            let mut obs = Observers(observers);
            for r in records.iter() {
                match r.kind {
                    FaultKind::Down => {
                        self.robustness.node_failures += 1;
                        self.gossip.forget_node(r.node);
                    }
                    FaultKind::Up => {
                        self.robustness.node_repairs += 1;
                    }
                    FaultKind::Lost {
                        wf,
                        task,
                        running,
                        total_secs,
                        executed_secs,
                        rate_mips,
                    } => {
                        self.recover_lost_task(
                            wf,
                            task,
                            r.node,
                            running,
                            total_secs,
                            executed_secs,
                            rate_mips,
                            r.time,
                            &mut obs,
                        );
                    }
                }
            }
        }
        self.fault_records = records;
    }

    /// Barrier step 2: merge the shards' buffered observer callbacks and replay them in the
    /// canonical `(time, node, seq)` order, splicing `on_workflow_completed` right after the
    /// exit task's finish — exactly where the monolithic loop emitted it.
    fn flush_observations(&mut self, observers: &mut [&mut dyn Observer]) {
        if observers.is_empty() {
            return;
        }
        let Self {
            shards,
            observations,
            completed_markers,
            ..
        } = self;
        observations.clear();
        for s in shards.iter_mut() {
            observations.append(&mut s.obs_buf);
        }
        sort_observations(observations);
        let mut obs = Observers(observers);
        for e in observations.iter() {
            match e.kind {
                BufferedKind::Started { wf, task } => {
                    obs.emit(|o| o.on_task_started(e.time, wf, task, e.node));
                }
                BufferedKind::Displaced { wf, task } => {
                    obs.emit(|o| o.on_task_displaced(e.time, wf, task, e.node));
                }
                BufferedKind::Finished { wf, task } => {
                    obs.emit(|o| o.on_task_finished(e.time, wf, task, e.node));
                    if completed_markers.remove(&(wf, task)) {
                        obs.emit(|o| o.on_workflow_completed(e.time, wf));
                    }
                }
                BufferedKind::Submitted { wf } => {
                    obs.emit(|o| o.on_workflow_submitted(e.time, wf, e.node));
                }
                BufferedKind::Lost { wf, task } => {
                    obs.emit(|o| o.on_task_lost(e.time, e.node, wf, task));
                }
                BufferedKind::Departed => {
                    obs.emit(|o| o.on_node_departed(e.time, e.node));
                }
                BufferedKind::Joined => {
                    obs.emit(|o| o.on_node_joined(e.time, e.node));
                }
            }
        }
    }

    /// Barrier step 4: pop and handle every grid-wide cadence event due at the window's end.
    /// Windows always close at the next cadence instant, so by construction these fire exactly
    /// at `end`, over a fully settled grid.
    fn handle_globals(&mut self, end: SimTime, observers: &mut [&mut dyn Observer]) {
        while self.globals.peek_time().is_some_and(|t| t <= end) {
            let ev = self.globals.pop().expect("peeked event must pop");
            debug_assert_eq!(ev.time, end, "cadence events fire only at window barriers");
            match ev.event {
                GridEvent::GossipCycle => {
                    let cycle = self.gossip.stats().cycles;
                    self.fill_gossip_scratch(end);
                    {
                        // Disjoint-field borrows: the protocol reads the scratch states while
                        // advancing its own RNG stream in place (no clone-and-store-back).
                        let Self {
                            gossip,
                            gossip_scratch,
                            gossip_rng,
                            ..
                        } = self;
                        gossip.run_cycle(end, gossip_scratch, gossip_rng);
                    }
                    Observers(observers).emit(|o| o.on_gossip_cycle(end, cycle));
                    self.globals
                        .schedule(end + self.config.gossip_interval, GridEvent::GossipCycle);
                }
                GridEvent::SchedulingCycle => {
                    self.churn_step(end, &mut Observers(observers));
                    self.scheduling_phase_one(end, &mut Observers(observers));
                    self.globals.schedule(
                        end + self.config.scheduling_interval,
                        GridEvent::SchedulingCycle,
                    );
                }
                GridEvent::MetricsSample => {
                    self.metrics.sample(end);
                    let sample = self.grid_sample();
                    Observers(observers).emit(|o| o.on_sample(end, &sample));
                    self.globals
                        .schedule(end + self.config.metrics_interval, GridEvent::MetricsSample);
                }
            }
        }
    }

    fn finish(mut self, end_time: SimTime) -> SimulationReport {
        self.metrics.sample(end_time);
        self.fill_gossip_scratch(end_time);
        let avg_rss_size = self.gossip.average_rss_size(&self.gossip_scratch);
        SimulationReport {
            algorithm: self.scheduler.label(),
            gossip_stats: self.gossip.stats(),
            avg_rss_size,
            end_time,
            nodes: self.config.nodes,
            submitted: self.metrics.submitted(),
            completed: self.metrics.throughput(),
            failed: self.metrics.failed(),
            robustness: self.robustness,
            metrics: self.metrics,
        }
    }
}

/// One in-flight run: the sharded engine stepped one conservative window at a time.
/// The public face of this type is [`Simulation`](crate::simulation::Simulation), which owns
/// the observer list; the session only borrows observers per step so the engine stays free of
/// observer lifetimes.
pub(crate) struct EngineSession {
    state: ShardedEngine,
}

impl EngineSession {
    pub(crate) fn new(scenario: &Scenario, scheduler: Box<dyn Scheduler>) -> Self {
        let mut state = ShardedEngine::from_scenario(scenario, scheduler);
        state
            .globals
            .schedule(SimTime::ZERO, GridEvent::GossipCycle);
        state
            .globals
            .schedule(SimTime::ZERO, GridEvent::MetricsSample);
        state
            .globals
            .schedule(SimTime::ZERO, GridEvent::SchedulingCycle);
        EngineSession { state }
    }

    /// Announce the time-zero workflow submissions (fires once, before the first window).
    /// Workflows with later arrival times are announced when their `WorkflowArrival` event
    /// replays at a window barrier instead.
    pub(crate) fn announce_submissions(&self, observers: &mut [&mut dyn Observer]) {
        let mut obs = Observers(observers);
        if obs.is_empty() {
            return;
        }
        for (wf, w) in self.state.workflows.iter().enumerate() {
            if !w.arrived {
                continue;
            }
            let home = w.home;
            obs.emit(|o| o.on_workflow_submitted(SimTime::ZERO, wf, home));
        }
    }

    /// Execute exactly one conservative time window and return its end instant, or `None` when
    /// the run is over (queues drained or every remaining event lies beyond the horizon).
    pub(crate) fn step(&mut self, observers: &mut [&mut dyn Observer]) -> Option<SimTime> {
        self.state.advance_window(observers)
    }

    /// Start instant of the window [`EngineSession::step`] would execute next.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.state.next_window().map(|(start, _)| start)
    }

    /// Current virtual time (the end of the last executed window).
    pub(crate) fn now(&self) -> SimTime {
        self.state.now
    }

    pub(crate) fn horizon(&self) -> SimTime {
        self.state.horizon
    }

    pub(crate) fn grid_sample(&self) -> GridSample {
        self.state.grid_sample()
    }

    pub(crate) fn label(&self) -> String {
        self.state.scheduler.label()
    }

    pub(crate) fn shard_stats(&self) -> ShardStats {
        self.state.stats()
    }

    /// Close the session: take the final metrics sample (at the horizon if the run completed,
    /// at the current time if it was cut short), mirror it to the observers, and build the
    /// report.  A fully-stepped session produces a report byte-identical to the one-shot run.
    pub(crate) fn finish(self, observers: &mut [&mut dyn Observer]) -> SimulationReport {
        let end_time = if self.peek_time().is_none() {
            self.state.horizon
        } else {
            self.state.now
        };
        let sample = self.state.grid_sample();
        Observers(observers).emit(|o| o.on_sample(end_time, &sample));
        self.state.finish(end_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Algorithm, AlgorithmConfig, SecondPhase};
    use crate::config::{CapacityModel, ChurnConfig};
    use crate::config::{RecoveryPolicy, StochasticFaults};
    use crate::scenario::Scenario;
    use crate::simulation::Simulation;

    fn tiny_config(seed: u64) -> GridConfig {
        let mut cfg = GridConfig::small(12).with_seed(seed);
        cfg.workflows_per_node = 1;
        cfg.workload.generator_mut().tasks = 2..=6;
        cfg.horizon = SimDuration::from_hours(20);
        cfg
    }

    fn simulate(cfg: GridConfig, algorithm: Algorithm) -> Simulation<'static> {
        Scenario::build(cfg)
            .expect("test config is valid")
            .simulate_algorithm(algorithm)
    }

    /// Run a session to the horizon and hand back the internal engine, for white-box tests
    /// asserting on dispatch/execution counters.
    fn run_session(cfg: GridConfig, algo: AlgorithmConfig) -> ShardedEngine {
        let scenario = Scenario::build(cfg).expect("test config is valid");
        let mut session = EngineSession::new(&scenario, Box::new(algo));
        while session.step(&mut []).is_some() {}
        session.state
    }

    #[test]
    fn dsmf_run_completes_workflows_and_reports_metrics() {
        let report = simulate(tiny_config(1), Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 12);
        assert!(
            report.completed > 0,
            "no workflow completed within the horizon"
        );
        assert!(report.act_secs() > 0.0);
        assert!(report.average_efficiency() > 0.0);
        assert!(report.avg_rss_size >= 1.0);
        assert!(report.gossip_stats.cycles > 0);
        assert_eq!(report.algorithm, "DSMF");
        // The throughput series is sampled hourly plus the final sample.
        assert!(report.metrics.throughput_series().len() >= 20);
    }

    #[test]
    fn every_algorithm_runs_on_the_same_shared_scenario() {
        let scenario = Scenario::build(tiny_config(2)).unwrap();
        for alg in Algorithm::ALL {
            let report = scenario.simulate_algorithm(alg).run();
            assert!(
                report.completed > 0,
                "{alg}: no workflow completed within the horizon"
            );
            assert!(report.completed <= report.submitted);
            assert!(report.average_efficiency() > 0.0, "{alg}: zero efficiency");
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed_and_across_scenario_reuse() {
        let scenario = Scenario::build(tiny_config(3)).unwrap();
        let a = scenario.simulate_algorithm(Algorithm::Dsmf).run();
        let b = scenario.simulate_algorithm(Algorithm::Dsmf).run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.act_secs(), b.act_secs());
        assert_eq!(a.average_efficiency(), b.average_efficiency());
        let c = simulate(tiny_config(4), Algorithm::Dsmf).run();
        // A different seed gives a different workload, so at least one headline number differs.
        assert!(
            a.completed != c.completed || a.act_secs() != c.act_secs(),
            "different seeds should produce different runs"
        );
    }

    #[test]
    fn shard_count_never_changes_results() {
        let run_at = |shards: usize, seed: u64| {
            let cfg = tiny_config(seed).with_shards(shards);
            let scenario = Scenario::build(cfg).unwrap();
            let r = scenario.simulate_algorithm(Algorithm::Dsmf).run();
            (
                r.completed,
                r.failed,
                r.act_secs().to_bits(),
                r.average_efficiency().to_bits(),
                r.avg_rss_size.to_bits(),
            )
        };
        for seed in [1, 3] {
            let base = run_at(1, seed);
            for shards in [2, 4, 8] {
                assert_eq!(
                    run_at(shards, seed),
                    base,
                    "seed {seed}: {shards} shards diverged from the single-shard run"
                );
            }
        }
    }

    #[test]
    fn window_invariants_hold_over_a_full_run() {
        let cfg = tiny_config(1).with_shards(4);
        let scenario = Scenario::build(cfg).unwrap();
        let lookahead = scenario.lookahead();
        let mut session = EngineSession::new(
            &scenario,
            Box::new(AlgorithmConfig::paper_default(Algorithm::Dsmf)),
        );
        while session.step(&mut []).is_some() {}
        let stats = session.shard_stats();
        assert_eq!(stats.shards, 4);
        assert!(stats.windows > 0);
        assert!(stats.events > 0);
        assert!(
            stats.max_window_width <= lookahead,
            "window width {} exceeds the lookahead {}",
            stats.max_window_width,
            lookahead
        );
        // Conservative-PDES soundness: nothing ever crossed a shard boundary faster than the
        // lookahead the windows were sized by.
        if let Some(d) = stats.min_cross_shard_delay {
            assert!(
                d >= lookahead,
                "a cross-shard event was delivered after {d}, below the lookahead {lookahead}"
            );
        }
    }

    #[test]
    fn fcfs_ablation_changes_only_the_second_phase() {
        let scenario = Scenario::build(tiny_config(5)).unwrap();
        let paper = scenario
            .simulate_config(AlgorithmConfig::paper_default(Algorithm::MinMin))
            .run();
        let fcfs = scenario
            .simulate_config(AlgorithmConfig::with_fcfs_second_phase(Algorithm::MinMin))
            .run();
        assert_eq!(paper.submitted, fcfs.submitted);
        assert_eq!(fcfs.algorithm, "min-min+FCFS");
        assert!(fcfs.completed > 0);
    }

    #[test]
    fn churn_loses_workflows_but_keeps_the_rest_running() {
        let mut cfg = tiny_config(6).with_churn(ChurnConfig::with_dynamic_factor(0.2));
        cfg.nodes = 20;
        cfg.waxman.nodes = 20;
        let report = simulate(cfg, Algorithm::Dsmf).run();
        // Only stable nodes are home nodes: 50% of 20 = 10 homes, 1 workflow each.
        assert_eq!(report.submitted, 10);
        assert!(report.completed + report.failed <= report.submitted);
        assert!(
            report.completed > 0,
            "churn must not wipe out every workflow"
        );
    }

    #[test]
    fn rescheduling_extension_recovers_lost_tasks() {
        // Seed picked so the df = 0.3 churn actually takes down a node holding a running
        // task — the retry path, not just the free waiting-task requeue, is exercised.
        let mut cfg = tiny_config(9)
            .with_churn(ChurnConfig::with_dynamic_factor(0.3))
            .with_recovery(RecoveryPolicy::unlimited_retry());
        cfg.nodes = 20;
        cfg.waxman.nodes = 20;
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(
            report.failed, 0,
            "with unlimited retries no workflow should be recorded as failed"
        );
        assert!(
            report.robustness.retries > 0,
            "a df = 0.3 run must have retried at least one lost running task"
        );
    }

    #[test]
    fn stochastic_faults_trigger_recovery_and_stay_deterministic() {
        let faults =
            StochasticFaults::new(SimDuration::from_hours(2), SimDuration::from_secs(20 * 60));
        let run = |recovery| {
            let mut cfg = tiny_config(18)
                .with_faults(crate::config::FaultModel::Stochastic(faults))
                .with_recovery(recovery);
            cfg.nodes = 20;
            cfg.waxman.nodes = 20;
            simulate(cfg, Algorithm::Dsmf).run()
        };
        let fail = run(RecoveryPolicy::FailWorkflow);
        assert!(
            fail.robustness.node_failures > 0,
            "a 2 h MTBF over a 20 h horizon must take nodes down"
        );
        assert!(fail.robustness.node_repairs > 0);
        let retry = run(RecoveryPolicy::unlimited_retry());
        assert_eq!(retry.failed, 0, "unlimited retries never fail a workflow");
        let again = run(RecoveryPolicy::unlimited_retry());
        assert_eq!(retry.completed, again.completed);
        assert_eq!(retry.act_secs().to_bits(), again.act_secs().to_bits());
        assert_eq!(retry.robustness, again.robustness);
        // The work ledger is consistent: anything counted must be positive, and goodput is a
        // proper fraction once something was wasted.
        assert!(retry.robustness.useful_mi > 0.0);
        if retry.robustness.wasted_mi > 0.0 {
            assert!(retry.robustness.goodput() < 1.0);
        }
    }

    #[test]
    fn uniform_capacity_single_node_grid_still_finishes() {
        let mut cfg = GridConfig::small(1).with_seed(8);
        cfg.workflows_per_node = 2;
        cfg.capacity = CapacityModel::Uniform(4.0);
        cfg.workload.generator_mut().tasks = 2..=4;
        cfg.horizon = SimDuration::from_hours(30);
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 2);
        assert!(report.completed > 0);
    }

    #[test]
    fn all_tasks_execute_at_most_once() {
        let mut cfg = tiny_config(9);
        cfg.workflows_per_node = 2;
        let state = run_session(cfg, AlgorithmConfig::paper_default(Algorithm::Dsmf));
        let total_tasks: usize = state
            .workflows
            .iter()
            .map(|w| w.workflow.task_count())
            .sum();
        assert!(state.executed_tasks() <= state.dispatched_tasks());
        assert!(state.dispatched_tasks() as usize <= total_tasks);
        // Completed workflows really finished every one of their tasks.
        for w in &state.workflows {
            if w.completed {
                assert!(w.progress.is_complete());
                assert!(w.task_location.iter().all(|l| l.is_some()));
            }
        }
    }

    #[test]
    fn departures_only_fail_workflows_whose_task_was_running() {
        // Under churn, the failure count can never exceed the number of running-task losses:
        // each departure takes down at most one workflow per occupied slot, while queued tasks
        // are silently re-dispatched.  With one workflow per home node and a modest dynamic
        // factor, some workflows must still survive and complete.
        let mut cfg = tiny_config(11).with_churn(ChurnConfig::with_dynamic_factor(0.2));
        cfg.nodes = 30;
        cfg.waxman.nodes = 30;
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 15);
        assert!(report.completed > 0);
        assert!(report.completed + report.failed <= report.submitted);
    }

    #[test]
    fn churn_sweep_baseline_matches_restricted_home_population() {
        // The df = 0 baseline of the churn experiments uses the same stable home population as
        // the churned points, so throughput numbers are directly comparable.
        // tiny_config builds a 12-node grid with one workflow per home node; restricting the
        // home set to the stable half leaves 6 submissions.
        let cfg = tiny_config(16).with_churn(ChurnConfig::with_dynamic_factor(0.0));
        let report = simulate(cfg, Algorithm::Dsmf).run();
        assert_eq!(report.submitted, 6);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn second_phase_rule_is_respected_in_reports_label() {
        let report = Scenario::build(tiny_config(10))
            .unwrap()
            .simulate_config(AlgorithmConfig {
                algorithm: Algorithm::Dsmf,
                second_phase: SecondPhase::Fcfs,
            })
            .run();
        assert_eq!(report.algorithm, "DSMF+FCFS");
    }

    #[test]
    fn multi_core_nodes_complete_no_less_than_single_core() {
        // The ResourceModel seam: with the same workload, giving every node four slots (and
        // four times the advertised throughput) must not finish fewer workflows.
        let single = simulate(tiny_config(12), Algorithm::Dsmf).run();
        let quad = simulate(tiny_config(12).with_slots_per_node(4), Algorithm::Dsmf).run();
        assert_eq!(single.submitted, quad.submitted);
        assert!(
            quad.completed >= single.completed,
            "4 slots completed {} < 1 slot's {}",
            quad.completed,
            single.completed
        );
    }

    #[test]
    fn multi_core_nodes_run_tasks_concurrently() {
        // On a single four-slot node, several ready tasks must occupy slots at once at some
        // point: with 2 workflows of 2–4 tasks each on one node, the engine's executed count
        // matches dispatches and the run finishes far faster than serially.
        let mut cfg = GridConfig::small(1).with_seed(14).with_slots_per_node(4);
        cfg.workflows_per_node = 3;
        cfg.capacity = CapacityModel::Uniform(4.0);
        cfg.workload.generator_mut().tasks = 4..=6;
        cfg.horizon = SimDuration::from_hours(30);
        let quad = simulate(cfg.clone(), Algorithm::Dsmf).run();
        let mut single_cfg = cfg;
        single_cfg.resource = crate::config::ResourceModel::single_cpu();
        let single = simulate(single_cfg, Algorithm::Dsmf).run();
        assert!(quad.completed >= single.completed);
        if quad.completed == single.completed && quad.completed > 0 {
            assert!(
                quad.act_secs() <= single.act_secs(),
                "4 slots must not be slower: {} vs {}",
                quad.act_secs(),
                single.act_secs()
            );
        }
    }

    #[test]
    fn heterogeneous_slot_distributions_run_deterministically() {
        use crate::config::{ResourceModel, SlotClass};
        let resource = || {
            ResourceModel::heterogeneous(vec![
                SlotClass {
                    slots: 1,
                    weight: 0.8,
                },
                SlotClass {
                    slots: 16,
                    weight: 0.2,
                },
            ])
        };
        let run = || simulate(tiny_config(15).with_resource(resource()), Algorithm::Dsmf).run();
        let a = run();
        let b = run();
        assert!(a.completed > 0, "heterogeneous grid must make progress");
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.act_secs().to_bits(), b.act_secs().to_bits());

        // The slot sampling draws from its own RNG stream: capacities, workflows and gossip
        // are untouched, so a uniform single-slot run still matches the plain paper config.
        let plain = simulate(tiny_config(15), Algorithm::Dsmf).run();
        let uniform = simulate(
            tiny_config(15).with_resource(crate::config::ResourceModel::single_cpu()),
            Algorithm::Dsmf,
        )
        .run();
        assert_eq!(plain.completed, uniform.completed);
        assert_eq!(plain.act_secs().to_bits(), uniform.act_secs().to_bits());
    }

    #[test]
    fn preemptive_substrate_restarts_displaced_tasks() {
        // A contended single-slot grid under DSMF: successors of short-makespan workflows
        // arrive while long-workflow tasks hold the CPU, so the time-sliced policy must
        // preempt at least once — observable as more task starts than dispatches.
        let preempt = |seed: u64| {
            let mut cfg = tiny_config(seed);
            cfg.workflows_per_node = 2;
            cfg.resource = crate::config::ResourceModel::single_cpu().preemptive();
            run_session(cfg, AlgorithmConfig::paper_default(Algorithm::Dsmf))
        };
        let preempted_somewhere = (20..26).any(|seed| {
            let state = preempt(seed);
            state.executed_tasks() > state.dispatched_tasks()
        });
        assert!(
            preempted_somewhere,
            "no seed in the band ever triggered a preemption"
        );
        // Preempted-and-resumed tasks must still complete their workflows consistently.
        let state = preempt(21);
        for w in &state.workflows {
            if w.completed {
                assert!(w.progress.is_complete());
                assert!(w.task_location.iter().all(|l| l.is_some()));
            }
        }
    }

    #[test]
    fn preemptive_runs_are_deterministic_and_account_consistently() {
        let run = || {
            let cfg = tiny_config(17)
                .with_resource(crate::config::ResourceModel::multi_core(2).preemptive());
            simulate(cfg, Algorithm::Dsmf).run()
        };
        let a = run();
        let b = run();
        assert!(a.completed > 0);
        assert!(a.completed + a.failed <= a.submitted);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.act_secs().to_bits(), b.act_secs().to_bits());
    }

    #[test]
    fn custom_scheduler_plugs_into_the_engine() {
        // The Scheduler seam: a greedy "random-ish but deterministic" policy that was never one
        // of the paper's eight — round-robin dispatch over candidates, FCFS ready sets.
        struct RoundRobin;
        impl crate::scheduler::Scheduler for RoundRobin {
            fn label(&self) -> String {
                "round-robin".to_string()
            }
            fn plan_dispatch(
                &self,
                tasks: &[DispatchCandidateTask],
                candidates: &mut [CandidateNode],
                _estimator: &FinishTimeEstimator<'_>,
            ) -> Vec<crate::policy::first_phase::DispatchDecision> {
                tasks
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let c = &mut candidates[i % candidates.len()];
                        c.add_load(t.load_mi);
                        crate::policy::first_phase::DispatchDecision {
                            workflow: t.workflow,
                            task: t.task,
                            target: c.node,
                            estimated_finish_secs: 0.0,
                            sufferage_secs: 0.0,
                        }
                    })
                    .collect()
            }
            fn ready_key(&self, task: &ReadyTaskView) -> crate::policy::second_phase::ReadyKey {
                crate::policy::second_phase::ready_key(SecondPhase::Fcfs, task)
            }
        }
        let report = Scenario::build(tiny_config(13))
            .unwrap()
            .simulate(Box::new(RoundRobin))
            .run();
        assert_eq!(report.algorithm, "round-robin");
        assert_eq!(report.submitted, 12);
        assert!(
            report.completed > 0,
            "a custom scheduler must still make progress"
        );
    }
}
