//! The ground-truth transfer timing model.
//!
//! Scheduling decisions *estimate* transfer times from gossip and landmark data; the engine
//! then times the actual migrations on the ground-truth network (the all-pairs bottleneck
//! bandwidths of the generated Waxman topology).  This module owns that ground truth: a
//! migrated task's inputs — its program image from the home node plus one dependent-data
//! transfer per finished precedent — all flow concurrently, so the task becomes data-complete
//! after the *slowest* individual transfer.
//!
//! These transfer times are also what makes the sharded event loop sound.  A remote dispatch
//! is the only way one node schedules work on another, and [`TransferModel::arrival_delay_secs`]
//! charges every remote migration at least one traversal of a topology link — so no
//! cross-node (hence cross-shard) event can arrive earlier than the topology's smallest
//! pairwise latency, which is exactly the engine lookahead computed at
//! [`Scenario::build`](crate::scenario::Scenario) (clamped by the gossip cadence).  Local
//! dispatches can be instantaneous, but they stay within the node's own shard.

use crate::NodeId;
use p2pgrid_topology::PairwiseMetrics;

/// Ground-truth transfer timing over the generated topology.
#[derive(Debug, Clone)]
pub struct TransferModel {
    metrics: PairwiseMetrics,
}

impl TransferModel {
    /// Wrap the precomputed all-pairs metrics of the run's topology.
    pub fn new(metrics: PairwiseMetrics) -> Self {
        TransferModel { metrics }
    }

    /// The underlying all-pairs metrics.
    pub fn metrics(&self) -> &PairwiseMetrics {
        &self.metrics
    }

    /// True bottleneck bandwidth between two nodes, Mb/s.
    pub fn bandwidth_mbps(&self, a: NodeId, b: NodeId) -> f64 {
        self.metrics.bandwidth_mbps(a, b)
    }

    /// Average pairwise bandwidth of the whole topology, Mb/s.
    pub fn average_bandwidth_mbps(&self) -> f64 {
        self.metrics.average_bandwidth_mbps()
    }

    /// Seconds to move `data_mb` megabits from `from` to `to` (zero for local transfers).
    pub fn transfer_secs(&self, from: NodeId, to: NodeId, data_mb: f64) -> f64 {
        self.metrics.transfer_secs(from, to, data_mb)
    }

    /// Seconds until a task dispatched to `target` is data-complete: its program image flows
    /// from `home` while every `(location, data_mb)` dependency flows from its precedent's
    /// execution site, all in parallel — the slowest transfer gates the task.
    pub fn arrival_delay_secs(
        &self,
        home: NodeId,
        target: NodeId,
        image_size_mb: f64,
        inputs: &[(NodeId, f64)],
    ) -> f64 {
        let image = self.transfer_secs(home, target, image_size_mb);
        inputs
            .iter()
            .map(|&(from, data_mb)| self.transfer_secs(from, target, data_mb))
            .fold(image, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pgrid_sim::SimRng;
    use p2pgrid_topology::{WaxmanConfig, WaxmanGenerator};

    fn model(nodes: usize) -> TransferModel {
        let mut rng = SimRng::seed_from_u64(5);
        let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(nodes)).generate(&mut rng);
        TransferModel::new(PairwiseMetrics::compute(&topo))
    }

    #[test]
    fn arrival_delay_is_the_slowest_concurrent_transfer() {
        let m = model(12);
        let image = m.transfer_secs(0, 5, 40.0);
        let dep_a = m.transfer_secs(1, 5, 200.0);
        let dep_b = m.transfer_secs(2, 5, 10.0);
        let delay = m.arrival_delay_secs(0, 5, 40.0, &[(1, 200.0), (2, 10.0)]);
        assert_eq!(delay, image.max(dep_a).max(dep_b));
        // Data already on the target contributes nothing.
        assert_eq!(m.transfer_secs(5, 5, 1000.0), 0.0);
        assert_eq!(m.arrival_delay_secs(5, 5, 1000.0, &[(5, 1000.0)]), 0.0);
    }

    #[test]
    fn local_dispatch_with_local_inputs_is_instantaneous() {
        let m = model(8);
        assert_eq!(m.arrival_delay_secs(3, 3, 25.0, &[]), 0.0);
    }
}
