//! Per-node runtime state: the indexed ready set, the execution slots and churn bookkeeping.
//!
//! Two hot paths of the old monolithic simulation live here in indexed form:
//!
//! * **ready-set selection** — the monolith kept each node's ready tasks in a `Vec`, re-scanned
//!   it for data-complete entries and re-ranked all of them on every CPU-idle event
//!   (`O(ready²)` over a busy node's backlog).  [`ReadySet`] keeps data-complete tasks in a
//!   priority heap ordered by the scheduler's static [`ReadyKey`], so selection is
//!   `O(log ready)` and marking a transfer complete is `O(1)` instead of a linear scan;
//! * **load accounting** — the queued load (`l_r` in the paper, gossiped every cycle) is
//!   maintained incrementally instead of being re-summed over the ready `Vec`.
//!
//! The execution substrate is the [`ResourceModel`](crate::config::ResourceModel) seam: a node
//! owns `slots` independent execution slots (the paper's single non-preemptive CPU is
//! `slots == 1`) and runs up to that many data-complete tasks concurrently.

use crate::policy::second_phase::{ReadyKey, ReadyTaskView};
use p2pgrid_sim::SimTime;
use p2pgrid_workflow::TaskId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A task waiting (or still receiving its input data) in a resource node's ready set.
#[derive(Debug, Clone, Copy)]
pub struct ReadyEntry {
    /// Global workflow index of the task.
    pub wf: usize,
    /// Task id within its workflow.
    pub task: TaskId,
    /// Computational load in MI (counted into the node's gossiped total load).
    pub load_mi: f64,
    /// The second-phase attributes captured at dispatch time.
    pub view: ReadyTaskView,
    /// The scheduler's static priority key (smallest runs first).
    pub key: ReadyKey,
    /// True once every input transfer has arrived.
    pub data_ready: bool,
}

/// One heap item: `(key, seq)` ascending, resolving to a map entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapItem {
    key: ReadyKey,
    seq: u64,
    wf: usize,
    task: TaskId,
}

/// A resource node's ready set, indexed two ways: by `(workflow, task)` for `O(1)`
/// transfer-completion updates, and by scheduler priority for `O(log n)` selection of the next
/// task to execute.
#[derive(Debug, Clone, Default)]
pub struct ReadySet {
    entries: HashMap<(usize, TaskId), ReadyEntry>,
    /// Data-complete tasks only, smallest `(key, seq)` first.
    ready_heap: BinaryHeap<Reverse<HeapItem>>,
    queued_load_mi: f64,
    /// Number of data-complete entries, maintained incrementally.  The heap length is *not*
    /// that number (it may carry stale residue), so observers get their own `O(1)` counter
    /// instead of walking the heap.
    selectable: usize,
}

impl ReadySet {
    /// Create an empty ready set.
    pub fn new() -> Self {
        ReadySet::default()
    }

    /// Number of queued tasks (transferring + data-complete).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of data-complete (selectable) tasks, maintained incrementally — the `O(1)`
    /// accessor the time-series probe samples instead of walking the heap.
    pub fn selectable_len(&self) -> usize {
        self.selectable
    }

    /// True when no task is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total queued computational load in MI (the `l_r` component gossiped as part of the
    /// node's state record), maintained incrementally.
    pub fn queued_load_mi(&self) -> f64 {
        self.queued_load_mi
    }

    /// Enqueue a migrated task.  Tasks arriving with `data_ready` already set (zero-transfer
    /// dispatches) become immediately selectable.
    ///
    /// A `(workflow, task)` pair must be queued at most once: the engine guarantees this
    /// through `ProgressTracker::mark_dispatched`, and external callers must uphold it too —
    /// a duplicate insert would double-count the queued load and leave a stale heap item.
    pub fn insert(&mut self, entry: ReadyEntry) {
        debug_assert!(
            !self.entries.contains_key(&(entry.wf, entry.task)),
            "task ({}, {:?}) is already queued in this ready set",
            entry.wf,
            entry.task
        );
        self.queued_load_mi += entry.load_mi;
        if entry.data_ready {
            self.push_ready(&entry);
        }
        self.entries.insert((entry.wf, entry.task), entry);
    }

    /// Mark a task's input transfers complete, making it selectable.  Returns `false` when the
    /// task is no longer queued here (e.g. the node churned away and rejoined in between).
    pub fn mark_data_ready(&mut self, wf: usize, task: TaskId) -> bool {
        let Some(entry) = self.entries.get_mut(&(wf, task)) else {
            return false;
        };
        if entry.data_ready {
            return true;
        }
        entry.data_ready = true;
        let entry = *entry;
        self.push_ready(&entry);
        true
    }

    /// Remove and return the data-complete task with the smallest `(key, seq)` — the task the
    /// second phase executes next — or `None` if nothing is selectable.
    pub fn pop_next(&mut self) -> Option<ReadyEntry> {
        while let Some(Reverse(item)) = self.ready_heap.pop() {
            if let Some(entry) = self.entries.remove(&(item.wf, item.task)) {
                self.selectable -= 1;
                self.queued_load_mi -= entry.load_mi;
                // Clamp away f64 increment/decrement drift after *every* subtraction — not
                // only when the set empties — so a busy node can never gossip a slightly
                // negative queued load.
                if self.entries.is_empty() || self.queued_load_mi < 0.0 {
                    self.queued_load_mi = 0.0;
                }
                return Some(entry);
            }
        }
        None
    }

    /// The `(key, seq)` of the task [`ReadySet::pop_next`] would return, without removing it.
    /// Stale heap residue is discarded along the way (hence `&mut self`).
    pub fn peek_next(&mut self) -> Option<(ReadyKey, u64)> {
        while let Some(Reverse(item)) = self.ready_heap.peek().copied() {
            if self.entries.contains_key(&(item.wf, item.task)) {
                return Some((item.key, item.seq));
            }
            self.ready_heap.pop();
        }
        None
    }

    /// Remove one queued task by identity (a replica twin cancelled because another copy
    /// completed first).  The heap may keep a stale item for it; [`ReadySet::pop_next`] /
    /// [`ReadySet::peek_next`] skip such residue, exactly as after a preemption re-key.
    pub fn remove(&mut self, wf: usize, task: TaskId) -> Option<ReadyEntry> {
        let entry = self.entries.remove(&(wf, task))?;
        if entry.data_ready {
            self.selectable -= 1;
        }
        self.queued_load_mi -= entry.load_mi;
        if self.entries.is_empty() || self.queued_load_mi < 0.0 {
            self.queued_load_mi = 0.0;
        }
        Some(entry)
    }

    /// Drain every queued task (a node departure), in arrival order for determinism.
    pub fn drain(&mut self) -> Vec<ReadyEntry> {
        let mut all: Vec<ReadyEntry> = self.entries.drain().map(|(_, e)| e).collect();
        all.sort_by_key(|e| e.view.enqueued_seq);
        self.ready_heap.clear();
        self.queued_load_mi = 0.0;
        self.selectable = 0;
        all
    }

    /// Called exactly when an entry transitions to data-complete, so `selectable` counts
    /// entries, not heap items.
    fn push_ready(&mut self, entry: &ReadyEntry) {
        self.selectable += 1;
        self.ready_heap.push(Reverse(HeapItem {
            key: entry.key,
            seq: entry.view.enqueued_seq,
            wf: entry.wf,
            task: entry.task,
        }));
    }
}

/// A `(workflow index, task id)` pair identifying one in-flight task.
pub type TaskRef = (usize, TaskId);

/// A running task surrendered by a departing node, with the execution timing the recovery
/// policy needs: the full run length on this node and how much of it had already executed.
/// Multiplying either by the node's per-slot rate converts seconds to MI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LostRun {
    /// Global workflow index.
    pub wf: usize,
    /// Task id within its workflow.
    pub task: TaskId,
    /// Full execution time of the run on this node, seconds.
    pub total_secs: f64,
    /// Execution time already spent when the node died, seconds.
    pub executed_secs: f64,
}

/// A task occupying one of a resource node's execution slots.
#[derive(Debug, Clone, Copy)]
pub struct RunningTask {
    /// Global workflow index.
    pub wf: usize,
    /// Task id within its workflow.
    pub task: TaskId,
    /// Virtual time at which execution completes (if it is not preempted first).
    pub finish_at: SimTime,
    /// Monotonic run generation: each (re-)start of a task gets a fresh id, so a completion
    /// event raced by a preemption of the same task is recognisably stale.
    pub run: u64,
    /// The scheduler's static priority key, kept for preemption comparisons.
    pub key: ReadyKey,
    /// The second-phase attributes, kept so a preempted task can be re-enqueued.
    pub view: ReadyTaskView,
}

/// Runtime state of one peer node.
#[derive(Debug, Clone)]
pub(crate) struct NodeRuntime {
    /// False once the node has churned away.
    pub alive: bool,
    /// True for the non-stable population that may join/leave under churn.
    pub churnable: bool,
    /// Capacity of one execution slot in MIPS (Table I's value).
    pub capacity_mips: f64,
    /// Number of execution slots (the `ResourceModel` seam; paper: 1).
    pub slots: usize,
    /// Incremented every time the node departs; pending events carrying an older epoch are
    /// ignored, which models the loss of everything in flight.
    pub epoch: u64,
    /// Queued tasks (transferring + data-complete).
    pub ready: ReadySet,
    /// Currently executing tasks, at most `slots` of them.
    pub running: Vec<RunningTask>,
    /// The node's locally measured average bandwidth towards its landmarks, Mb/s.
    pub local_avg_bandwidth_mbps: f64,
}

impl NodeRuntime {
    /// The throughput this node advertises through gossip: all slots combined.  With the
    /// paper's single CPU this is exactly the Table I capacity.
    pub fn advertised_capacity_mips(&self) -> f64 {
        self.capacity_mips * self.slots as f64
    }

    /// True when at least one execution slot is free.
    pub fn has_free_slot(&self) -> bool {
        self.running.len() < self.slots
    }

    /// True when the node is alive in the given churn epoch — the guard every in-flight event
    /// (data arrival, task completion) passes before touching node state.  An event carrying an
    /// older epoch raced a departure: everything it refers to was lost with the node.
    pub fn accepts(&self, epoch: u64) -> bool {
        self.alive && self.epoch == epoch
    }

    /// Execution time of `load_mi` on one slot of this node, seconds.
    pub fn execution_secs(&self, load_mi: f64) -> f64 {
        load_mi / self.capacity_mips
    }

    /// The node's current total load in MI (queued work plus the remaining work of every
    /// occupied slot) — `l_r` in the paper, gossiped every cycle.
    pub fn total_load_mi(&self, now: SimTime) -> f64 {
        let mut load = self.ready.queued_load_mi();
        for run in &self.running {
            let remaining_secs = run.finish_at.saturating_duration_since(now).as_secs_f64();
            load += remaining_secs * self.capacity_mips;
        }
        load
    }

    /// Occupy a slot with `entry` starting at `now` under run generation `run`; returns the
    /// completion instant.  Panics if no slot is free (the engine checks
    /// [`NodeRuntime::has_free_slot`] first).
    pub fn start(&mut self, entry: &ReadyEntry, now: SimTime, run: u64) -> SimTime {
        assert!(self.has_free_slot(), "no free execution slot");
        let finish_at = now + p2pgrid_sim::SimDuration::from_secs_f64(entry.view.exec_secs);
        self.running.push(RunningTask {
            wf: entry.wf,
            task: entry.task,
            finish_at,
            run,
            key: entry.key,
            view: entry.view,
        });
        finish_at
    }

    /// Release the slot occupied by `(wf, task)` for run generation `run`.  Returns `false`
    /// when no slot holds that exact run (a stale completion event from before a churn epoch,
    /// or from before the task was preempted and restarted).
    pub fn complete(&mut self, wf: usize, task: TaskId, run: u64) -> bool {
        match self
            .running
            .iter()
            .position(|r| r.wf == wf && r.task == task && r.run == run)
        {
            Some(i) => {
                self.running.remove(i);
                true
            }
            None => false,
        }
    }

    /// Time-sliced preemption: if a ready task with `key` outranks the lowest-priority running
    /// task (*strictly* smaller key; equal keys never preempt, so FCFS — whose key is constant
    /// — degenerates to the non-preemptive behaviour by construction), displace that running
    /// task and return it as a re-enqueueable [`ReadyEntry`] carrying its *remaining* load —
    /// completed work is kept, only the residue is re-queued.  The returned entry still holds
    /// the key the task started with; the engine re-keys it against the updated view before
    /// re-inserting (this type is scheduler-agnostic).  Returns `None` when every slot is
    /// either free, higher-priority, or about to complete at `now`.
    pub fn preempt_lowest_priority(&mut self, key: ReadyKey, now: SimTime) -> Option<ReadyEntry> {
        let (idx, victim) = self
            .running
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.key
                    .cmp(&b.key)
                    .then(a.view.enqueued_seq.cmp(&b.view.enqueued_seq))
            })
            .map(|(i, r)| (i, *r))?;
        if key >= victim.key {
            return None;
        }
        let remaining_secs = victim
            .finish_at
            .saturating_duration_since(now)
            .as_secs_f64();
        if remaining_secs <= 0.0 {
            // The victim completes at this very instant; its completion event is already in
            // flight, so displacing it would only redo finished work.
            return None;
        }
        self.running.remove(idx);
        let mut view = victim.view;
        view.exec_secs = remaining_secs;
        Some(ReadyEntry {
            wf: victim.wf,
            task: victim.task,
            load_mi: remaining_secs * self.capacity_mips,
            view,
            key: victim.key,
            data_ready: true,
        })
    }

    /// Cancel one running task (a replica twin whose other copy completed first): free its
    /// slot and return the execution time already spent on it.  The cancelled run's in-flight
    /// completion event finds no matching running entry and goes stale, exactly like after a
    /// preemption; the freed slot is refilled by a barrier-scheduled `SlotFreed` event.
    pub fn cancel_running(&mut self, wf: usize, task: TaskId, now: SimTime) -> Option<f64> {
        let pos = self
            .running
            .iter()
            .position(|r| r.wf == wf && r.task == task)?;
        let r = self.running.remove(pos);
        let remaining = r.finish_at.saturating_duration_since(now).as_secs_f64();
        Some((r.view.exec_secs - remaining).max(0.0))
    }

    /// The node departs at `now`: bump the epoch and surrender everything in flight.  Returns
    /// the queued tasks (which never executed and simply become schedule points again) and the
    /// running tasks with their execution timing (how much of each run was already done —
    /// what the recovery policy needs to book wasted work and checkpoint residues).
    pub fn depart(&mut self, now: SimTime) -> (Vec<TaskRef>, Vec<LostRun>) {
        self.alive = false;
        self.epoch += 1;
        let waiting = self
            .ready
            .drain()
            .into_iter()
            .map(|e| (e.wf, e.task))
            .collect();
        let running = self
            .running
            .drain(..)
            .map(|r| {
                let remaining = r.finish_at.saturating_duration_since(now).as_secs_f64();
                LostRun {
                    wf: r.wf,
                    task: r.task,
                    total_secs: r.view.exec_secs,
                    executed_secs: (r.view.exec_secs - remaining).max(0.0),
                }
            })
            .collect();
        (waiting, running)
    }

    /// The node (re-)joins with empty queues.
    pub fn join(&mut self) {
        self.alive = true;
        self.ready = ReadySet::new();
        self.running.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::SecondPhase;
    use crate::policy::second_phase::ready_key;

    fn entry(wf: usize, ms: f64, rpm: f64, seq: u64, data_ready: bool) -> ReadyEntry {
        let view = ReadyTaskView {
            workflow_ms_secs: ms,
            rpm_secs: rpm,
            exec_secs: 10.0,
            sufferage_secs: 0.0,
            enqueued_seq: seq,
        };
        ReadyEntry {
            wf,
            task: TaskId(0),
            load_mi: 100.0,
            view,
            key: ready_key(SecondPhase::ShortestWorkflowMakespan, &view),
            data_ready,
        }
    }

    #[test]
    fn pop_follows_the_scheduler_key_and_ignores_transferring_tasks() {
        let mut rs = ReadySet::new();
        rs.insert(entry(0, 300.0, 10.0, 0, true));
        rs.insert(entry(1, 100.0, 10.0, 1, true));
        rs.insert(entry(2, 50.0, 10.0, 2, false)); // still transferring
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.queued_load_mi(), 300.0);
        // Workflow 1 has the shortest makespan among data-complete tasks.
        assert_eq!(rs.pop_next().unwrap().wf, 1);
        // Workflow 2 becomes selectable once its data arrives, and wins.
        assert!(rs.mark_data_ready(2, TaskId(0)));
        assert_eq!(rs.pop_next().unwrap().wf, 2);
        assert_eq!(rs.pop_next().unwrap().wf, 0);
        assert!(rs.pop_next().is_none());
        assert!(rs.is_empty());
        assert_eq!(rs.queued_load_mi(), 0.0);
    }

    #[test]
    fn ties_break_by_arrival_order() {
        let mut rs = ReadySet::new();
        rs.insert(entry(7, 100.0, 10.0, 5, true));
        rs.insert(entry(8, 100.0, 10.0, 2, true));
        assert_eq!(
            rs.pop_next().unwrap().wf,
            8,
            "earlier arrival must win ties"
        );
    }

    #[test]
    fn drain_returns_everything_in_arrival_order() {
        let mut rs = ReadySet::new();
        rs.insert(entry(3, 10.0, 1.0, 9, true));
        rs.insert(entry(4, 20.0, 1.0, 1, false));
        let drained = rs.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].wf, 4);
        assert_eq!(drained[1].wf, 3);
        assert!(rs.pop_next().is_none());
        assert_eq!(rs.queued_load_mi(), 0.0);
    }

    #[test]
    fn mark_data_ready_on_unknown_task_reports_false() {
        let mut rs = ReadySet::new();
        assert!(!rs.mark_data_ready(0, TaskId(3)));
    }

    #[test]
    fn remove_cancels_one_entry_and_leaves_only_heap_residue() {
        let mut rs = ReadySet::new();
        rs.insert(entry(0, 300.0, 10.0, 0, true));
        rs.insert(entry(1, 100.0, 10.0, 1, true));
        rs.insert(entry(2, 50.0, 10.0, 2, false)); // still transferring
        assert!(rs.remove(9, TaskId(0)).is_none(), "unknown task");
        let removed = rs.remove(1, TaskId(0)).expect("entry is queued");
        assert_eq!(removed.wf, 1);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.selectable_len(), 1);
        assert_eq!(rs.queued_load_mi(), 200.0);
        // The heap's stale item for workflow 1 must be skipped, not popped.
        assert_eq!(rs.pop_next().unwrap().wf, 0);
        // Removing a not-yet-transferred entry must not touch the selectable count.
        assert!(rs.remove(2, TaskId(0)).is_some());
        assert_eq!(rs.selectable_len(), 0);
        assert!(rs.is_empty());
        assert_eq!(rs.queued_load_mi(), 0.0);
    }

    #[test]
    fn selectable_len_tracks_data_complete_entries_only() {
        let mut rs = ReadySet::new();
        assert_eq!(rs.selectable_len(), 0);
        rs.insert(entry(0, 100.0, 10.0, 0, true));
        rs.insert(entry(1, 200.0, 10.0, 1, false)); // still transferring
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.selectable_len(), 1);
        // Marking data-ready twice must not double count.
        assert!(rs.mark_data_ready(1, TaskId(0)));
        assert!(rs.mark_data_ready(1, TaskId(0)));
        assert_eq!(rs.selectable_len(), 2);
        rs.pop_next();
        assert_eq!(rs.selectable_len(), 1);
        rs.drain();
        assert_eq!(rs.selectable_len(), 0);
    }

    #[test]
    fn node_runtime_slots_and_load_accounting() {
        let mut node = NodeRuntime {
            alive: true,
            churnable: false,
            capacity_mips: 2.0,
            slots: 2,
            epoch: 0,
            ready: ReadySet::new(),
            running: Vec::new(),
            local_avg_bandwidth_mbps: 1.0,
        };
        assert_eq!(node.advertised_capacity_mips(), 4.0);
        assert_eq!(node.execution_secs(100.0), 50.0);
        assert!(node.has_free_slot());

        let e0 = entry(0, 10.0, 1.0, 0, true);
        let e1 = entry(1, 20.0, 1.0, 1, true);
        let now = SimTime::ZERO;
        let f0 = node.start(&e0, now, 0);
        assert!(node.has_free_slot(), "second slot still free");
        node.start(&e1, now, 1);
        assert!(!node.has_free_slot());
        assert_eq!(f0, SimTime::from_secs(10));
        // Remaining work of both slots: 2 tasks × 10 s × 2 MIPS = 40 MI.
        assert_eq!(node.total_load_mi(now), 40.0);

        assert!(node.complete(0, TaskId(0), 0));
        assert!(
            !node.complete(0, TaskId(0), 0),
            "double completion is rejected"
        );
        assert!(node.has_free_slot());

        // Depart 4 s into the remaining run: the lost run reports its elapsed execution.
        let (waiting, running) = node.depart(SimTime::from_secs(4));
        assert!(waiting.is_empty());
        assert_eq!(
            running,
            vec![LostRun {
                wf: 1,
                task: TaskId(0),
                total_secs: 10.0,
                executed_secs: 4.0,
            }]
        );
        assert_eq!(node.epoch, 1);
        node.join();
        assert!(node.alive && node.running.is_empty());
    }

    #[test]
    fn queued_load_never_goes_negative_while_tasks_remain() {
        // Loads whose running f64 sum drifts: after popping some (but not all) entries the
        // incremental total must be clamped at zero, not gossiped as a tiny negative value.
        let mut rs = ReadySet::new();
        for (i, load) in [0.1, 0.7, 0.2].iter().enumerate() {
            let mut e = entry(i, 100.0 + i as f64, 10.0, i as u64, true);
            e.load_mi = *load;
            rs.insert(e);
        }
        while rs.pop_next().is_some() {
            assert!(
                rs.queued_load_mi() >= 0.0,
                "queued load went negative mid-drain: {}",
                rs.queued_load_mi()
            );
        }
        assert_eq!(rs.queued_load_mi(), 0.0);
    }

    #[test]
    fn peek_next_matches_pop_next_without_removing() {
        let mut rs = ReadySet::new();
        assert!(rs.peek_next().is_none());
        rs.insert(entry(0, 300.0, 10.0, 0, true));
        rs.insert(entry(1, 100.0, 10.0, 1, true));
        let peeked = rs.peek_next().unwrap();
        assert_eq!(rs.len(), 2, "peek must not remove entries");
        let popped = rs.pop_next().unwrap();
        assert_eq!(peeked, (popped.key, popped.view.enqueued_seq));
        assert_eq!(popped.wf, 1);
    }

    #[test]
    fn preemption_displaces_the_lowest_priority_running_task() {
        let mut node = NodeRuntime {
            alive: true,
            churnable: false,
            capacity_mips: 2.0,
            slots: 1,
            epoch: 0,
            ready: ReadySet::new(),
            running: Vec::new(),
            local_avg_bandwidth_mbps: 1.0,
        };
        // A long low-priority task (workflow makespan 500) starts at t = 0...
        let mut low = entry(0, 500.0, 10.0, 0, true);
        low.view.exec_secs = 100.0;
        low.load_mi = 200.0;
        node.start(&low, SimTime::ZERO, 0);
        assert!(!node.has_free_slot());

        // ...and at t = 40 a higher-priority arrival (makespan 100) claims the slot.
        let high = entry(1, 100.0, 10.0, 1, true);
        let now = SimTime::from_secs(40);
        let displaced = node
            .preempt_lowest_priority(high.key, now)
            .expect("the running task must be displaced");
        assert!(node.has_free_slot());
        assert_eq!(displaced.wf, 0);
        assert!(displaced.data_ready, "a displaced task needs no transfers");
        // 60 of 100 seconds remain, at 2 MIPS that is 120 MI of residual load.
        assert_eq!(displaced.view.exec_secs, 60.0);
        assert_eq!(displaced.load_mi, 120.0);

        // An equal-priority arrival must NOT preempt (ties keep the running task) — even one
        // with an *earlier* arrival sequence, so constant-key rules like FCFS can never
        // preempt at all.
        node.start(&high, now, 1);
        let equal_later = entry(2, 100.0, 10.0, 2, true);
        assert!(node.preempt_lowest_priority(equal_later.key, now).is_none());
        let equal_earlier = entry(2, 100.0, 10.0, 0, true);
        assert!(node
            .preempt_lowest_priority(equal_earlier.key, now)
            .is_none());
        // Nor may a lower-priority arrival.
        let lower = entry(3, 900.0, 10.0, 3, true);
        assert!(node.preempt_lowest_priority(lower.key, now).is_none());
    }

    #[test]
    fn stale_run_generations_do_not_complete() {
        let mut node = NodeRuntime {
            alive: true,
            churnable: false,
            capacity_mips: 1.0,
            slots: 1,
            epoch: 0,
            ready: ReadySet::new(),
            running: Vec::new(),
            local_avg_bandwidth_mbps: 1.0,
        };
        let e = entry(0, 100.0, 10.0, 0, true);
        node.start(&e, SimTime::ZERO, 7);
        assert!(
            !node.complete(0, TaskId(0), 6),
            "a completion event from a previous run generation is stale"
        );
        assert!(node.complete(0, TaskId(0), 7));
    }
}
