//! One shard of the sharded event loop: a node partition with its own event queue, RNG stream
//! and run counters.
//!
//! The engine partitions the grid's nodes over `S` shards by a deterministic hash of the node
//! id (so the assignment is independent of scenario content and stable across runs).  Within a
//! conservative time window every shard drains its own queue independently — node state lives
//! *inside* its shard, so shards can execute on the worker pool without sharing anything
//! mutable.  Whatever must cross the shard boundary (workflow-state updates, observer
//! callbacks) is buffered into the per-shard [`CompletionNotice`] outbox and observation
//! buffer and merged canonically at the window barrier (see [`super::barrier`]).

use super::barrier::{
    ArrivalNotice, BufferedEvent, BufferedKind, CompletionNotice, FaultKind, FaultRecord,
};
use super::node::NodeRuntime;
use crate::scheduler::Scheduler;
use crate::NodeId;
use p2pgrid_sim::{EventQueue, SimDuration, SimRng, SimTime};
use p2pgrid_workflow::TaskId;

/// Deterministic node → shard assignment: a splitmix64-style avalanche of the node id, reduced
/// modulo the shard count.  Content-independent, so deriving a scenario or changing the
/// workload never re-partitions the grid.
pub(crate) fn shard_of_node(node: NodeId, shards: usize) -> usize {
    let mut z = (node as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// The global-id ↔ shard-local index mapping, precomputed at engine construction.
#[derive(Debug, Clone)]
pub(crate) struct ShardMap {
    /// `shard_of[node]` — which shard owns the node.
    pub shard_of: Vec<usize>,
    /// `local_of[node]` — the node's index inside its shard's `nodes` vector.
    pub local_of: Vec<usize>,
}

impl ShardMap {
    /// Build the assignment for `nodes` nodes over `shards` shards; also returns each shard's
    /// member list in ascending global-id order (which is exactly the shard-local index order).
    pub fn new(nodes: usize, shards: usize) -> (Self, Vec<Vec<NodeId>>) {
        let mut shard_of = vec![0usize; nodes];
        let mut local_of = vec![0usize; nodes];
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
        for id in 0..nodes {
            let s = shard_of_node(id, shards);
            shard_of[id] = s;
            local_of[id] = members[s].len();
            members[s].push(id);
        }
        (Self { shard_of, local_of }, members)
    }

    /// Total number of nodes in the grid.
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }
}

/// Shard-local events: everything that happens *at* one resource node.
///
/// Both variants carry the node's global id (for notices and observations) and its shard-local
/// index (so handlers never need a lookup).  The grid-wide cadences (gossip, scheduling,
/// metrics) are *not* shard events — they run serially at window barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardEvent {
    /// All input data of a dispatched task has arrived at its resource node.
    DataReady {
        /// Shard-local node index.
        local: usize,
        /// Churn epoch the dispatch belongs to.
        epoch: u64,
        /// Global workflow index.
        wf: usize,
        /// The task whose inputs arrived.
        task: TaskId,
    },
    /// A running task finished on its resource node.
    TaskCompleted {
        /// Shard-local node index.
        local: usize,
        /// Churn epoch the execution belongs to.
        epoch: u64,
        /// Global workflow index.
        wf: usize,
        /// The finished task.
        task: TaskId,
        /// Run generation the completion belongs to; a preemption of the same task bumps the
        /// generation, turning the displaced run's in-flight completion event stale.
        run: u64,
    },
    /// A workflow with a nonzero submission time arrives at its home node.  Scheduled once at
    /// engine construction (before any window runs, so conservative-window soundness is not
    /// in play); the shard buffers an [`ArrivalNotice`] for the barrier, which flips the
    /// workflow's `arrived` flag and counts the submission.  Home nodes are always stable
    /// (never churn), so no epoch guard is needed.
    WorkflowArrival {
        /// Shard-local index of the home node.
        local: usize,
        /// Global workflow index.
        wf: usize,
    },
    /// The node fails (its pre-drawn stochastic lifetime expired).  Scheduled once at engine
    /// construction from the scenario's fault schedule, like [`ShardEvent::WorkflowArrival`],
    /// so conservative-window soundness is not in play.  The shard surrenders everything in
    /// flight on the node and records [`FaultRecord`]s for the barrier's recovery pass.
    NodeFailure {
        /// Shard-local index of the failing node.
        local: usize,
    },
    /// The node comes back after its pre-drawn repair time, empty.
    NodeRepair {
        /// Shard-local index of the repaired node.
        local: usize,
    },
    /// One execution slot was freed *at the barrier* (a running replica twin was cancelled
    /// after another copy completed first).  Scheduled at the window's end instant, which the
    /// next window drains first — the node then refills the slot from its ready queue at the
    /// correct virtual time.
    SlotFreed {
        /// Shard-local index of the node with the freed slot.
        local: usize,
    },
}

/// The read-only context a shard needs while executing a window: the scheduler (consulted,
/// never mutated — hence the `Send + Sync` supertrait on [`Scheduler`]), the substrate's
/// preemption flag and whether any observer is attached (when not, shards skip building
/// observation records entirely — the observer fast path).
pub(crate) struct WindowCtx<'a> {
    /// The scheduler, for re-keying ready tasks.
    pub scheduler: &'a dyn Scheduler,
    /// True under the time-sliced preemptive substrate.
    pub preemptive: bool,
    /// True when at least one observer is registered on the session.
    pub observing: bool,
}

/// One shard: a partition of the grid's nodes plus everything needed to advance them through a
/// time window without touching any other shard.
#[derive(Debug)]
pub(crate) struct Shard {
    /// Global ids of the member nodes, ascending; `node_ids[local]` is the global id.
    pub node_ids: Vec<NodeId>,
    /// Member node runtimes, indexed shard-locally.
    pub nodes: Vec<NodeRuntime>,
    /// The shard's own event queue (`(time, seq)` min-order).
    pub queue: EventQueue<ShardEvent>,
    /// The shard's dedicated RNG stream, split deterministically from the master seed.
    /// Reserved for stochastic in-shard models (exposed through
    /// [`ShardedEngine::shard_rng_mut`](super::ShardedEngine::shard_rng_mut)).
    pub rng: SimRng,
    /// Workflow arrivals recorded this window, drained at the barrier.
    pub arrivals: Vec<ArrivalNotice>,
    /// Completions recorded this window, drained at the barrier.
    pub outbox: Vec<CompletionNotice>,
    /// Observer callbacks recorded this window, drained at the barrier.
    pub obs_buf: Vec<BufferedEvent>,
    /// Fault records (node down / up, tasks lost) this window, drained at the barrier's
    /// recovery pass.  Unlike `obs_buf` these are engine state, produced whether or not an
    /// observer is attached.
    pub faults: Vec<FaultRecord>,
    /// Monotone fault-record counter (the per-node order key in the barrier's fault merge).
    /// Dedicated — never shared with `emit_seq`, which only advances while observing.
    fault_seq: u64,
    /// Monotone run-generation counter; unique per shard, hence per node.
    next_run: u64,
    /// Monotone observation-emission counter (the per-node order key in the barrier merge).
    emit_seq: u64,
    /// Task executions started on this shard (the engine's `executed_tasks` contribution).
    pub executed: u64,
    /// Events popped from this shard's queue over the whole run.
    pub events_processed: u64,
}

impl Shard {
    /// Create shard `id` over the given member nodes.  The RNG stream is split from the master
    /// `seed` by shard index, so shard `i`'s draws are identical for every shard count in which
    /// shard `i` exists — and adding draws in one shard never perturbs another.
    pub fn new(id: usize, node_ids: Vec<NodeId>, nodes: Vec<NodeRuntime>, seed: u64) -> Self {
        Shard {
            node_ids,
            nodes,
            queue: EventQueue::new(),
            rng: SimRng::seed_from_u64(seed).derive_indexed("shard", id as u64),
            arrivals: Vec::new(),
            outbox: Vec::new(),
            obs_buf: Vec::new(),
            faults: Vec::new(),
            fault_seq: 0,
            next_run: 0,
            emit_seq: 0,
            executed: 0,
            events_processed: 0,
        }
    }

    /// Drain and handle every queued event with a timestamp `<= end` (the window's inclusive
    /// upper bound).  Events scheduled *during* the window at instants still `<= end` — e.g. a
    /// zero-length execution's completion — are drained too, exactly like the monolithic loop.
    pub fn run_window(&mut self, end: SimTime, ctx: &WindowCtx<'_>) {
        while self.queue.peek_time().is_some_and(|t| t <= end) {
            let ev = self.queue.pop().expect("peeked event must pop");
            self.events_processed += 1;
            match ev.event {
                ShardEvent::DataReady {
                    local,
                    epoch,
                    wf,
                    task,
                } => self.on_data_ready(local, epoch, wf, task, ev.time, ctx),
                ShardEvent::TaskCompleted {
                    local,
                    epoch,
                    wf,
                    task,
                    run,
                } => self.on_task_completed(local, epoch, wf, task, run, ev.time, ctx),
                ShardEvent::WorkflowArrival { local, wf } => {
                    self.arrivals.push(ArrivalNotice { time: ev.time, wf });
                    self.buffer(ev.time, local, BufferedKind::Submitted { wf }, ctx);
                }
                ShardEvent::NodeFailure { local } => self.on_node_failure(local, ev.time, ctx),
                ShardEvent::NodeRepair { local } => self.on_node_repair(local, ev.time, ctx),
                ShardEvent::SlotFreed { local } => self.try_start_tasks(local, ev.time, ctx),
            }
        }
    }

    /// Record one fault event for the barrier's recovery pass.
    fn record_fault(&mut self, time: SimTime, local: usize, kind: FaultKind) {
        self.faults.push(FaultRecord {
            time,
            node: self.node_ids[local],
            seq: self.fault_seq,
            kind,
        });
        self.fault_seq += 1;
    }

    /// The node's pre-drawn lifetime expired: surrender everything resident on it and record
    /// what was lost.  The `Down` record precedes the per-task `Lost` records so the barrier
    /// forgets the node before re-planning its tasks.
    fn on_node_failure(&mut self, local: usize, now: SimTime, ctx: &WindowCtx<'_>) {
        if !self.nodes[local].alive {
            return;
        }
        let rate_mips = self.nodes[local].capacity_mips;
        let (waiting, running) = self.nodes[local].depart(now);
        self.record_fault(now, local, FaultKind::Down);
        for (wf, task) in waiting {
            self.record_fault(
                now,
                local,
                FaultKind::Lost {
                    wf,
                    task,
                    running: false,
                    total_secs: 0.0,
                    executed_secs: 0.0,
                    rate_mips,
                },
            );
            self.buffer(now, local, BufferedKind::Lost { wf, task }, ctx);
        }
        for lost in running {
            self.record_fault(
                now,
                local,
                FaultKind::Lost {
                    wf: lost.wf,
                    task: lost.task,
                    running: true,
                    total_secs: lost.total_secs,
                    executed_secs: lost.executed_secs,
                    rate_mips,
                },
            );
            self.buffer(
                now,
                local,
                BufferedKind::Lost {
                    wf: lost.wf,
                    task: lost.task,
                },
                ctx,
            );
        }
        self.buffer(now, local, BufferedKind::Departed, ctx);
    }

    /// The node's pre-drawn repair completed: it rejoins empty.
    fn on_node_repair(&mut self, local: usize, now: SimTime, ctx: &WindowCtx<'_>) {
        if self.nodes[local].alive {
            return;
        }
        self.nodes[local].join();
        self.record_fault(now, local, FaultKind::Up);
        self.buffer(now, local, BufferedKind::Joined, ctx);
    }

    /// Record one observer callback (skipped entirely when no observer is attached).
    fn buffer(&mut self, time: SimTime, local: usize, kind: BufferedKind, ctx: &WindowCtx<'_>) {
        if !ctx.observing {
            return;
        }
        self.obs_buf.push(BufferedEvent {
            time,
            node: self.node_ids[local],
            seq: self.emit_seq,
            kind,
        });
        self.emit_seq += 1;
    }

    fn on_data_ready(
        &mut self,
        local: usize,
        epoch: u64,
        wf: usize,
        task: TaskId,
        now: SimTime,
        ctx: &WindowCtx<'_>,
    ) {
        if !self.nodes[local].accepts(epoch) {
            return;
        }
        self.nodes[local].ready.mark_data_ready(wf, task);
        self.try_start_tasks(local, now, ctx);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_task_completed(
        &mut self,
        local: usize,
        epoch: u64,
        wf: usize,
        task: TaskId,
        run: u64,
        now: SimTime,
        ctx: &WindowCtx<'_>,
    ) {
        if !self.nodes[local].accepts(epoch) {
            return;
        }
        // The executed work (for the barrier's useful/wasted ledger) must be read before
        // `complete()` removes the running entry.
        let Some(load_mi) = self.nodes[local]
            .running
            .iter()
            .find(|r| r.wf == wf && r.task == task && r.run == run)
            .map(|r| r.view.exec_secs * self.nodes[local].capacity_mips)
        else {
            return;
        };
        let completed = self.nodes[local].complete(wf, task, run);
        debug_assert!(completed, "the entry located above must complete");
        self.buffer(now, local, BufferedKind::Finished { wf, task }, ctx);
        self.outbox.push(CompletionNotice {
            time: now,
            wf,
            task,
            node: self.node_ids[local],
            load_mi,
        });
        self.try_start_tasks(local, now, ctx);
    }

    /// Occupy one slot of the node with `chosen` and schedule its completion — always into
    /// this shard's own queue, so no within-window event ever crosses a shard boundary.
    fn start_task(
        &mut self,
        local: usize,
        chosen: &super::node::ReadyEntry,
        now: SimTime,
        ctx: &WindowCtx<'_>,
    ) {
        let run = self.next_run;
        self.next_run += 1;
        let finish_at = self.nodes[local].start(chosen, now, run);
        self.executed += 1;
        self.buffer(
            now,
            local,
            BufferedKind::Started {
                wf: chosen.wf,
                task: chosen.task,
            },
            ctx,
        );
        self.queue.schedule(
            finish_at,
            ShardEvent::TaskCompleted {
                local,
                epoch: self.nodes[local].epoch,
                wf: chosen.wf,
                task: chosen.task,
                run,
            },
        );
    }

    /// Algorithm 2: while the node has free execution slots, pick the next data-complete ready
    /// task (smallest scheduler key) and run it.  Under the time-sliced preemptive substrate a
    /// remaining ready task that outranks the lowest-priority running task then displaces it —
    /// the victim re-enters the ready heap with its residual load and resumes later.
    fn try_start_tasks(&mut self, local: usize, now: SimTime, ctx: &WindowCtx<'_>) {
        if !self.nodes[local].alive {
            return;
        }
        while self.nodes[local].has_free_slot() {
            let Some(chosen) = self.nodes[local].ready.pop_next() else {
                break;
            };
            self.start_task(local, &chosen, now, ctx);
        }
        if !ctx.preemptive {
            return;
        }
        // Each round swaps a strictly higher-priority ready task into a slot, so the worst
        // running key strictly improves and the loop terminates.
        while let Some((key, _seq)) = self.nodes[local].ready.peek_next() {
            let Some(mut displaced) = self.nodes[local].preempt_lowest_priority(key, now) else {
                break;
            };
            let chosen = self.nodes[local]
                .ready
                .pop_next()
                .expect("peeked entry must still be queued");
            self.buffer(
                now,
                local,
                BufferedKind::Displaced {
                    wf: displaced.wf,
                    task: displaced.task,
                },
                ctx,
            );
            // Re-key the displaced task against its updated view: rules keyed on exec time
            // now see the *remaining* time (shortest-remaining-time semantics), while
            // ms/rpm-based rules and FCFS recompute the same key as before.
            displaced.key = ctx.scheduler.ready_key(&displaced.view);
            self.nodes[local].ready.insert(displaced);
            self.start_task(local, &chosen, now, ctx);
        }
    }
}

/// Run every shard through the window ending at `end` — on the worker pool when both the shard
/// count and the pool size allow it, serially otherwise.  Shards share nothing mutable, so the
/// parallel execution is *result-identical* to the serial one; only wall-clock changes.
pub(crate) fn run_shards(shards: &mut [Shard], end: SimTime, ctx: &WindowCtx<'_>) {
    if shards.len() <= 1 || rayon::current_num_threads() <= 1 {
        for shard in shards.iter_mut() {
            shard.run_window(end, ctx);
        }
        return;
    }
    let mid = shards.len() / 2;
    let (a, b) = shards.split_at_mut(mid);
    rayon::join(|| run_shards(a, end, ctx), || run_shards(b, end, ctx));
}

/// Aggregate counters of one sharded run, exposed through
/// [`Simulation::shard_stats`](crate::simulation::Simulation::shard_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards the event loop ran with.
    pub shards: usize,
    /// Conservative time windows executed.
    pub windows: u64,
    /// Width of the widest window (bounded above by the scenario's lookahead).
    pub max_window_width: SimDuration,
    /// Shard-local events processed, summed over all shards.
    pub events: u64,
    /// Events scheduled across a shard boundary (dispatches whose home and resource node live
    /// in different shards).
    pub cross_shard_events: u64,
    /// The smallest delivery delay of any cross-shard event — conservative-PDES soundness
    /// requires this to be at least the scenario's lookahead.  `None` until the first
    /// cross-shard event.
    pub min_cross_shard_delay: Option<SimDuration>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_assignment_is_deterministic_and_total() {
        let (map, members) = ShardMap::new(100, 4);
        assert_eq!(map.len(), 100);
        assert_eq!(members.len(), 4);
        assert_eq!(members.iter().map(Vec::len).sum::<usize>(), 100);
        for (s, list) in members.iter().enumerate() {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "members ascend");
            for (local, &id) in list.iter().enumerate() {
                assert_eq!(map.shard_of[id], s);
                assert_eq!(map.local_of[id], local);
            }
        }
        // The hash is a pure function of the node id: a second build agrees.
        let (map2, _) = ShardMap::new(100, 4);
        assert_eq!(map.shard_of, map2.shard_of);
        // Single shard degenerates to the identity partition.
        let (map1, members1) = ShardMap::new(10, 1);
        assert!(map1.shard_of.iter().all(|&s| s == 0));
        assert_eq!(members1[0], (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn hash_spreads_nodes_reasonably() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for id in 0..10_000 {
            counts[shard_of_node(id, shards)] += 1;
        }
        // splitmix64 avalanche: every shard should land near 10_000/8 = 1250.
        for &c in &counts {
            assert!((1000..1500).contains(&c), "skewed shard population: {c}");
        }
    }
}
