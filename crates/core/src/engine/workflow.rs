//! Per-workflow runtime state: progress, task locations and (for full-ahead baselines) plans.

use crate::NodeId;
use p2pgrid_sim::SimTime;
use p2pgrid_workflow::{ProgressTracker, TaskId, Workflow};

/// Runtime state of one submitted workflow instance.
#[derive(Debug, Clone)]
pub(crate) struct WorkflowRuntime {
    /// The home (submission) node.
    pub home: NodeId,
    /// The workflow DAG.
    pub workflow: Workflow,
    /// Dispatch / completion state of every task.
    pub progress: ProgressTracker,
    /// Expected finish time under the true system-wide averages (Eq. 1) — the efficiency
    /// baseline `eft(f)`.
    pub eft_secs: f64,
    /// Execution site of every finished task (`None` until it completes).
    pub task_location: Vec<Option<NodeId>>,
    /// True once a churn loss made the workflow unfinishable.
    pub failed: bool,
    /// True once the exit task finished.
    pub completed: bool,
    /// Submission instant.  Zero for the paper's batch model; later under a staggered
    /// arrival process or a trace workload with explicit arrival times.
    pub submitted_at: SimTime,
    /// True once the workflow has entered the system.  Workflows submitted at time zero
    /// start arrived; later arrivals flip this when their `WorkflowArrival` event fires, and
    /// until then the workflow is invisible to scheduling and metrics.
    pub arrived: bool,
    /// Full-ahead plan (task index → node id), present only for HEFT / SMF.
    pub plan: Option<Vec<NodeId>>,
    /// RPM under the true averages, used by the full-ahead baselines' ready-set metadata.
    pub static_rpm: Vec<f64>,
    /// Expected makespan under the true averages, ditto.
    pub static_ms_secs: f64,
}

impl WorkflowRuntime {
    /// True while the workflow can make progress: it has arrived in the system and is
    /// neither finished nor failed.
    pub fn is_active(&self) -> bool {
        self.arrived && !self.completed && !self.failed
    }

    /// Where a finished task's output lives: its execution site, or the home node for data
    /// that never left (e.g. the entry task's inputs).
    pub fn output_location(&self, task: TaskId) -> NodeId {
        self.task_location[task.index()].unwrap_or(self.home)
    }

    /// Apply one barrier-delivered completion notice: record the execution site and mark the
    /// task finished.  Returns `true` when the completion was the exit task — the caller then
    /// flags the workflow completed and records the metric.  Callers check
    /// [`WorkflowRuntime::is_active`] first; notices for failed workflows are dropped.
    pub fn apply_completion(&mut self, task: TaskId, node: NodeId) -> bool {
        self.task_location[task.index()] = Some(node);
        self.progress.mark_finished(&self.workflow, task);
        task == self.workflow.exit()
    }
}
