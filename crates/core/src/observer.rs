//! The observer seam: tap the engine's event stream without touching engine state.
//!
//! An [`Observer`] registers on a [`Simulation`](crate::simulation::Simulation) session before
//! the first step and receives a callback for every externally meaningful engine event — task
//! dispatch / start / finish / displacement, workflow submit / complete / fail, node join /
//! leave, gossip cycles and the periodic metrics sample.  Observers borrow into the session
//! (`&mut`), so their recorded data stays owned by the caller and is available after
//! [`Simulation::run`](crate::simulation::Simulation::run) consumes the session:
//!
//! ```
//! use p2pgrid_core::observer::TimeSeriesProbe;
//! use p2pgrid_core::scenario::Scenario;
//! use p2pgrid_core::{Algorithm, GridConfig};
//!
//! let scenario = Scenario::build(GridConfig::small(12).with_seed(7)).unwrap();
//! let mut probe = TimeSeriesProbe::new();
//! let report = scenario
//!     .simulate_algorithm(Algorithm::Dsmf)
//!     .observe(&mut probe)
//!     .run();
//! assert_eq!(probe.samples().len(), report.metrics.throughput_series().len());
//! ```
//!
//! Observers never mutate engine state, so a run with observers attached produces a report
//! byte-identical to the same run without them.
//!
//! # Ordering under the sharded event loop
//!
//! Observers always run serially on the driving thread, never inside a shard: events raised
//! while a conservative time window executes (task starts, finishes, displacements) are
//! buffered per shard and replayed at the window barrier through an ordered merge keyed by
//! `(time, global node id, per-node emission order)`.  The stream an observer sees is
//! therefore *identical for every shard count and pool width* — same events, same order, same
//! timestamps (pinned by `tests/sharding.rs`).  Within one window the merge orders concurrent
//! events of different nodes by node id; everything a single node emits keeps its causal
//! order.  Grid-wide events (dispatch cadences, churn, gossip, samples) happen at barriers and
//! are emitted directly, after the window's buffered events.
//!
//! With *no* observers registered the engine skips buffering entirely (the observer fast
//! path — shards don't even record events), so observation is strictly pay-for-use.

use crate::NodeId;
use p2pgrid_sim::SimTime;
use p2pgrid_workflow::TaskId;

/// One aggregate snapshot of the grid, handed to [`Observer::on_sample`] every metrics
/// interval.
///
/// All counters come from the engine's `O(1)` per-node accessors
/// ([`ReadySet::len`](crate::engine::node::ReadySet::len) /
/// [`ReadySet::selectable_len`](crate::engine::node::ReadySet::selectable_len) /
/// [`ReadySet::queued_load_mi`](crate::engine::node::ReadySet::queued_load_mi)), so sampling is
/// `O(nodes)` per cadence tick — no heap walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSample {
    /// Nodes currently alive.
    pub alive_nodes: usize,
    /// Queued tasks across alive nodes (transferring + data-complete).
    pub ready_tasks: usize,
    /// Data-complete (selectable) tasks across alive nodes.
    pub selectable_tasks: usize,
    /// Tasks currently occupying execution slots.
    pub running_tasks: usize,
    /// Total queued computational load across alive nodes, MI.
    pub queued_load_mi: f64,
}

/// Callbacks for the engine's event stream.  Every method has an empty default, so an observer
/// implements only the hooks it cares about.
#[allow(unused_variables)]
pub trait Observer {
    /// A workflow was submitted at its home node (fires once per workflow, at time zero).
    fn on_workflow_submitted(&mut self, now: SimTime, wf: usize, home: NodeId) {}

    /// A workflow's exit task finished; the workflow is complete.
    fn on_workflow_completed(&mut self, now: SimTime, wf: usize) {}

    /// A churn loss made the workflow unfinishable.
    fn on_workflow_failed(&mut self, now: SimTime, wf: usize) {}

    /// The first phase dispatched a task from its home node to a resource node.
    fn on_task_dispatched(&mut self, now: SimTime, wf: usize, task: TaskId, target: NodeId) {}

    /// A resource node started executing a data-complete ready task.
    fn on_task_started(&mut self, now: SimTime, wf: usize, task: TaskId, node: NodeId) {}

    /// A task finished executing.
    fn on_task_finished(&mut self, now: SimTime, wf: usize, task: TaskId, node: NodeId) {}

    /// A running task was displaced back into the ready set by a higher-priority arrival
    /// (time-sliced substrates only).
    fn on_task_displaced(&mut self, now: SimTime, wf: usize, task: TaskId, node: NodeId) {}

    /// A queued or running task was lost because its node failed or churned away.  What
    /// happens next is the [`RecoveryPolicy`](crate::config::RecoveryPolicy)'s business.
    fn on_task_lost(&mut self, now: SimTime, node: NodeId, wf: usize, task: TaskId) {}

    /// A lost task re-entered the schedule-point queue under `RecoveryPolicy::Retry`;
    /// `attempt` counts the losses so far (1 on the first retry).
    fn on_task_retried(&mut self, now: SimTime, wf: usize, task: TaskId, attempt: u32) {}

    /// A node churned away.
    fn on_node_departed(&mut self, now: SimTime, node: NodeId) {}

    /// A node (re-)joined the grid.
    fn on_node_joined(&mut self, now: SimTime, node: NodeId) {}

    /// One mixed-gossip cycle ran on every alive node; `cycle` counts from zero.
    fn on_gossip_cycle(&mut self, now: SimTime, cycle: u64) {}

    /// The periodic metrics sample fired (cadence: `GridConfig::metrics_interval`).
    fn on_sample(&mut self, now: SimTime, sample: &GridSample) {}
}

/// A built-in probe recording the [`GridSample`] time series — ready-set depth, queued load
/// and alive-node population on the metrics cadence.  This is the observer behind the
/// ROADMAP's "what does the backlog look like mid-run?" question that the one-shot report
/// could never answer.
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesProbe {
    samples: Vec<(SimTime, GridSample)>,
}

impl TimeSeriesProbe {
    /// An empty probe.
    pub fn new() -> Self {
        TimeSeriesProbe::default()
    }

    /// The recorded `(time, sample)` points, in time order.
    pub fn samples(&self) -> &[(SimTime, GridSample)] {
        &self.samples
    }

    /// The deepest total ready-set backlog observed, `(time, tasks)`.
    pub fn peak_ready_tasks(&self) -> Option<(SimTime, usize)> {
        self.samples
            .iter()
            .max_by_key(|(_, s)| s.ready_tasks)
            .map(|&(t, s)| (t, s.ready_tasks))
    }

    /// The largest queued computational load observed, `(time, MI)`.
    pub fn peak_queued_load_mi(&self) -> Option<(SimTime, f64)> {
        self.samples
            .iter()
            .max_by(|(_, a), (_, b)| a.queued_load_mi.total_cmp(&b.queued_load_mi))
            .map(|&(t, s)| (t, s.queued_load_mi))
    }
}

impl Observer for TimeSeriesProbe {
    fn on_sample(&mut self, now: SimTime, sample: &GridSample) {
        self.samples.push((now, *sample));
    }
}

/// One recorded engine event (the [`TraceRecorder`]'s unit of storage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Workflow submitted at its home node.
    WorkflowSubmitted {
        /// Workflow index.
        wf: usize,
        /// Home node.
        home: NodeId,
    },
    /// Workflow completed.
    WorkflowCompleted {
        /// Workflow index.
        wf: usize,
    },
    /// Workflow failed (churn loss).
    WorkflowFailed {
        /// Workflow index.
        wf: usize,
    },
    /// Task dispatched to a resource node.
    TaskDispatched {
        /// Workflow index.
        wf: usize,
        /// Task id.
        task: TaskId,
        /// Chosen resource node.
        target: NodeId,
    },
    /// Task started executing.
    TaskStarted {
        /// Workflow index.
        wf: usize,
        /// Task id.
        task: TaskId,
        /// Executing node.
        node: NodeId,
    },
    /// Task finished executing.
    TaskFinished {
        /// Workflow index.
        wf: usize,
        /// Task id.
        task: TaskId,
        /// Executing node.
        node: NodeId,
    },
    /// Task displaced by a higher-priority arrival.
    TaskDisplaced {
        /// Workflow index.
        wf: usize,
        /// Task id.
        task: TaskId,
        /// Node whose slot was reclaimed.
        node: NodeId,
    },
    /// Task lost with its failed / departed node.
    TaskLost {
        /// Workflow index.
        wf: usize,
        /// Task id.
        task: TaskId,
        /// The node that took the task down with it.
        node: NodeId,
    },
    /// Lost task re-queued for another attempt (`RecoveryPolicy::Retry`).
    TaskRetried {
        /// Workflow index.
        wf: usize,
        /// Task id.
        task: TaskId,
        /// Loss count so far (1 on the first retry).
        attempt: u32,
    },
    /// Node departed.
    NodeDeparted {
        /// The departing node.
        node: NodeId,
    },
    /// Node joined.
    NodeJoined {
        /// The joining node.
        node: NodeId,
    },
    /// One gossip cycle completed.
    GossipCycle {
        /// Zero-based cycle counter.
        cycle: u64,
    },
}

/// A built-in observer recording the full `(time, event)` stream — the engine's execution
/// trace.  Tests use it to assert event-level invariants (every started task was dispatched
/// first, displacements only on preemptive substrates, ...) that aggregate reports erase.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<(SimTime, TraceEvent)>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// The recorded `(time, event)` stream, in delivery order.
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Number of recorded events matching `pred`.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    fn push(&mut self, now: SimTime, event: TraceEvent) {
        self.events.push((now, event));
    }
}

impl Observer for TraceRecorder {
    fn on_workflow_submitted(&mut self, now: SimTime, wf: usize, home: NodeId) {
        self.push(now, TraceEvent::WorkflowSubmitted { wf, home });
    }
    fn on_workflow_completed(&mut self, now: SimTime, wf: usize) {
        self.push(now, TraceEvent::WorkflowCompleted { wf });
    }
    fn on_workflow_failed(&mut self, now: SimTime, wf: usize) {
        self.push(now, TraceEvent::WorkflowFailed { wf });
    }
    fn on_task_dispatched(&mut self, now: SimTime, wf: usize, task: TaskId, target: NodeId) {
        self.push(now, TraceEvent::TaskDispatched { wf, task, target });
    }
    fn on_task_started(&mut self, now: SimTime, wf: usize, task: TaskId, node: NodeId) {
        self.push(now, TraceEvent::TaskStarted { wf, task, node });
    }
    fn on_task_finished(&mut self, now: SimTime, wf: usize, task: TaskId, node: NodeId) {
        self.push(now, TraceEvent::TaskFinished { wf, task, node });
    }
    fn on_task_displaced(&mut self, now: SimTime, wf: usize, task: TaskId, node: NodeId) {
        self.push(now, TraceEvent::TaskDisplaced { wf, task, node });
    }
    fn on_task_lost(&mut self, now: SimTime, node: NodeId, wf: usize, task: TaskId) {
        self.push(now, TraceEvent::TaskLost { wf, task, node });
    }
    fn on_task_retried(&mut self, now: SimTime, wf: usize, task: TaskId, attempt: u32) {
        self.push(now, TraceEvent::TaskRetried { wf, task, attempt });
    }
    fn on_node_departed(&mut self, now: SimTime, node: NodeId) {
        self.push(now, TraceEvent::NodeDeparted { node });
    }
    fn on_node_joined(&mut self, now: SimTime, node: NodeId) {
        self.push(now, TraceEvent::NodeJoined { node });
    }
    fn on_gossip_cycle(&mut self, now: SimTime, cycle: u64) {
        self.push(now, TraceEvent::GossipCycle { cycle });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_tracks_peaks() {
        let mut probe = TimeSeriesProbe::new();
        assert!(probe.peak_ready_tasks().is_none());
        let mk = |ready, load| GridSample {
            alive_nodes: 4,
            ready_tasks: ready,
            selectable_tasks: ready,
            running_tasks: 1,
            queued_load_mi: load,
        };
        probe.on_sample(SimTime::from_secs(1), &mk(3, 10.0));
        probe.on_sample(SimTime::from_secs(2), &mk(7, 5.0));
        probe.on_sample(SimTime::from_secs(3), &mk(2, 90.0));
        assert_eq!(probe.samples().len(), 3);
        assert_eq!(probe.peak_ready_tasks(), Some((SimTime::from_secs(2), 7)));
        assert_eq!(
            probe.peak_queued_load_mi(),
            Some((SimTime::from_secs(3), 90.0))
        );
    }

    #[test]
    fn recorder_keeps_delivery_order_and_counts() {
        let mut rec = TraceRecorder::new();
        rec.on_workflow_submitted(SimTime::ZERO, 0, 2);
        rec.on_task_dispatched(SimTime::from_secs(1), 0, TaskId(0), 3);
        rec.on_task_started(SimTime::from_secs(2), 0, TaskId(0), 3);
        rec.on_task_finished(SimTime::from_secs(5), 0, TaskId(0), 3);
        rec.on_workflow_completed(SimTime::from_secs(5), 0);
        assert_eq!(rec.events().len(), 5);
        assert_eq!(
            rec.count(|e| matches!(e, TraceEvent::TaskStarted { .. })),
            1
        );
        assert!(matches!(
            rec.events()[0],
            (
                SimTime::ZERO,
                TraceEvent::WorkflowSubmitted { wf: 0, home: 2 }
            )
        ));
    }
}
