//! Typed configuration errors.
//!
//! [`GridConfig::validate`](crate::config::GridConfig::validate) and
//! [`Scenario::build`](crate::scenario::Scenario::build) report malformed configurations as a
//! [`ConfigError`] instead of panicking, so a sweep runner can fail one configuration point
//! with a message and keep the rest of the experiment alive.

use std::fmt;

/// Why a [`GridConfig`](crate::config::GridConfig) was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The grid has no nodes at all.
    NoNodes,
    /// The Waxman topology's node count disagrees with the grid's node count.
    TopologyMismatch {
        /// Node count of the topology generator.
        topology: usize,
        /// Node count of the grid.
        nodes: usize,
    },
    /// The churn dynamic factor lies outside `[0, 1]`.
    InvalidDynamicFactor(f64),
    /// The stable-population fraction lies outside `[0, 1]`.
    InvalidStableFraction(f64),
    /// A periodic interval (scheduling / gossip / metrics) is zero.
    ZeroInterval(&'static str),
    /// The capacity choice set is empty.
    EmptyCapacitySet,
    /// A capacity value is non-positive or non-finite.
    InvalidCapacity(f64),
    /// A node class would own zero execution slots.
    ZeroSlots,
    /// The weighted slot-distribution has no classes.
    EmptySlotClasses,
    /// A slot-class weight is non-positive or non-finite.
    InvalidSlotWeight(f64),
    /// A fixed shard count of zero was requested.
    ZeroShards,
    /// The workload is invalid: a malformed synthetic-generator range, or a trace workload
    /// whose document failed validation (cycle, duplicate edge, unknown reference, ...).
    InvalidWorkload(String),
    /// An arrival-process parameter is out of range.
    InvalidArrival {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A trace workload entry pins its home to a node id outside the grid.
    TraceHomeOutOfRange {
        /// The requested home node id.
        node: usize,
        /// Number of nodes in the grid.
        nodes: usize,
    },
    /// A trace workload entry pins its home to a churnable node (home nodes must be stable).
    TraceHomeNotStable {
        /// The requested home node id.
        node: usize,
        /// Number of stable nodes (ids `0..stable` are the stable population).
        stable: usize,
    },
    /// The trace workload has workflows but submits none of them.
    EmptyTrace,
    /// A fault-model parameter is out of range.
    InvalidFault {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A recovery-policy parameter is out of range.
    InvalidRecovery {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "at least one node is required"),
            ConfigError::TopologyMismatch { topology, nodes } => write!(
                f,
                "topology node count ({topology}) must match the grid node count ({nodes})"
            ),
            ConfigError::InvalidDynamicFactor(df) => {
                write!(f, "churn dynamic factor must be in [0, 1], got {df}")
            }
            ConfigError::InvalidStableFraction(sf) => {
                write!(f, "churn stable fraction must be in [0, 1], got {sf}")
            }
            ConfigError::ZeroInterval(which) => {
                write!(f, "{which} interval must be positive")
            }
            ConfigError::EmptyCapacitySet => {
                write!(f, "capacity choice set must not be empty")
            }
            ConfigError::InvalidCapacity(c) => {
                write!(f, "node capacities must be positive and finite, got {c}")
            }
            ConfigError::ZeroSlots => {
                write!(f, "every node needs at least one execution slot")
            }
            ConfigError::EmptySlotClasses => {
                write!(f, "slot class set must not be empty")
            }
            ConfigError::InvalidSlotWeight(w) => {
                write!(f, "slot class weights must be positive and finite, got {w}")
            }
            ConfigError::ZeroShards => {
                write!(f, "the event loop needs at least one shard")
            }
            ConfigError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            ConfigError::InvalidArrival { what, value } => {
                write!(
                    f,
                    "invalid arrival process: {what} out of range, got {value}"
                )
            }
            ConfigError::TraceHomeOutOfRange { node, nodes } => write!(
                f,
                "trace entry pins home node {node}, but the grid has only {nodes} nodes"
            ),
            ConfigError::TraceHomeNotStable { node, stable } => write!(
                f,
                "trace entry pins home node {node}, but only nodes 0..{stable} are stable \
                 (home nodes must not churn)"
            ),
            ConfigError::EmptyTrace => {
                write!(f, "trace workload submits no workflow instances")
            }
            ConfigError::InvalidFault { what, value } => {
                write!(f, "invalid fault model: {what} out of range, got {value}")
            }
            ConfigError::InvalidRecovery { what, value } => {
                write!(
                    f,
                    "invalid recovery policy: {what} out of range, got {value}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_value() {
        assert!(ConfigError::InvalidDynamicFactor(1.5)
            .to_string()
            .contains("1.5"));
        assert!(ConfigError::TopologyMismatch {
            topology: 99,
            nodes: 10
        }
        .to_string()
        .contains("99"));
        assert!(ConfigError::ZeroInterval("gossip")
            .to_string()
            .contains("gossip"));
        let boxed: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroSlots);
        assert!(boxed.to_string().contains("execution slot"));
        assert!(ConfigError::ZeroShards.to_string().contains("shard"));
        assert!(ConfigError::InvalidFault {
            what: "mtbf",
            value: -1.0
        }
        .to_string()
        .contains("mtbf"));
        assert!(ConfigError::InvalidRecovery {
            what: "replicate copies",
            value: 1.0
        }
        .to_string()
        .contains("replicate copies"));
    }
}
