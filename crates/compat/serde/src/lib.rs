//! Offline stand-in for the real `serde` crate.
//!
//! The workspace builds without network access, so this shim supplies exactly the surface the
//! codebase uses: the `Serialize` / `Deserialize` *derive macros* (which expand to nothing) and
//! same-named marker traits for bounds.  No value is actually serialized anywhere in the
//! workspace; when the environment gains crates.io access, point the workspace dependency at
//! the real `serde` and nothing else needs to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in this offline shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in this offline shim).
pub trait Deserialize<'de> {}
