//! Offline stand-in for the real `serde` crate.
//!
//! The workspace builds without network access, so this shim supplies exactly the surface the
//! codebase uses: the `Serialize` / `Deserialize` *derive macros* (which expand to nothing),
//! same-named marker traits for bounds, and a minimal [`json`] backend (a self-describing
//! [`json::Value`] tree with a conforming writer) for the machine-readable artifacts the
//! `repro --json` flag emits.  When the environment gains crates.io access, point the
//! workspace dependency at the real `serde` (+`serde_json`) — the hand-rolled
//! `to_json()` builders at the call sites map one-to-one onto `#[derive(Serialize)]`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in this offline shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in this offline shim).
pub trait Deserialize<'de> {}

/// A minimal JSON document model and writer (the `serde_json::Value` analogue).
pub mod json {
    use std::fmt;

    /// A JSON value tree.  Build it with the `From` impls and [`Value::object`] /
    /// [`Value::array`], render it with `Display` (compact) or [`Value::to_string_pretty`].
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null` (also the rendering of non-finite numbers, as in `serde_json`).
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (always carried as `f64`; integral values render without a fraction).
        Number(f64),
        /// A string (escaped on output).
        String(String),
        /// An ordered array.
        Array(Vec<Value>),
        /// An object with insertion-ordered keys.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// An object from `(key, value)` pairs, preserving order.
        pub fn object(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
            Value::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }

        /// An array from anything convertible to values.
        pub fn array(items: impl IntoIterator<Item = impl Into<Value>>) -> Value {
            Value::Array(items.into_iter().map(Into::into).collect())
        }

        /// Look up a field of an object by key (first match; `None` for non-objects).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The number as `f64`, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The number as `u64`, if this is a non-negative integral number.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }

        /// The string slice, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The items, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The `(key, value)` fields, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }

        /// The first non-finite number anywhere in this tree, if any.  `Display` renders
        /// such numbers as `null` (like `serde_json`), which silently loses data — wire
        /// senders use [`Value::to_wire_string`] to reject them instead.
        pub fn find_non_finite(&self) -> Option<f64> {
            match self {
                Value::Number(n) if !n.is_finite() => Some(*n),
                Value::Array(items) => items.iter().find_map(Value::find_non_finite),
                Value::Object(fields) => fields.iter().find_map(|(_, v)| v.find_non_finite()),
                _ => None,
            }
        }

        /// Compact rendering for wire use: identical to `to_string`, but **rejects**
        /// non-finite numbers (which would round-trip as `null`) instead of nulling them.
        /// Everything this emits parses back to an equal tree with [`parse`].
        pub fn to_wire_string(&self) -> Result<String, NonFiniteError> {
            match self.find_non_finite() {
                Some(n) => Err(NonFiniteError(n)),
                None => Ok(self.to_string()),
            }
        }

        /// Render with two-space indentation (the `serde_json::to_string_pretty` analogue).
        pub fn to_string_pretty(&self) -> String {
            let mut out = String::new();
            self.write_pretty(&mut out, 0);
            out
        }

        fn write_pretty(&self, out: &mut String, indent: usize) {
            match self {
                Value::Array(items) if !items.is_empty() => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(if i == 0 { "\n" } else { ",\n" });
                        out.push_str(&"  ".repeat(indent + 1));
                        item.write_pretty(out, indent + 1);
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                    out.push(']');
                }
                Value::Object(fields) if !fields.is_empty() => {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        out.push_str(if i == 0 { "\n" } else { ",\n" });
                        out.push_str(&"  ".repeat(indent + 1));
                        out.push_str(&format!("{}: ", Value::String(k.clone())));
                        v.write_pretty(out, indent + 1);
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                    out.push('}');
                }
                other => {
                    out.push_str(&other.to_string());
                }
            }
        }
    }

    impl From<bool> for Value {
        fn from(b: bool) -> Value {
            Value::Bool(b)
        }
    }
    impl From<f64> for Value {
        fn from(n: f64) -> Value {
            Value::Number(n)
        }
    }
    impl From<u64> for Value {
        fn from(n: u64) -> Value {
            Value::Number(n as f64)
        }
    }
    impl From<usize> for Value {
        fn from(n: usize) -> Value {
            Value::Number(n as f64)
        }
    }
    impl From<&str> for Value {
        fn from(s: &str) -> Value {
            Value::String(s.to_string())
        }
    }
    impl From<String> for Value {
        fn from(s: String) -> Value {
            Value::String(s)
        }
    }
    impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
        fn from((a, b): (A, B)) -> Value {
            Value::Array(vec![a.into(), b.into()])
        }
    }

    impl fmt::Display for Value {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Value::Null => write!(f, "null"),
                Value::Bool(b) => write!(f, "{b}"),
                // JSON has no NaN/Infinity literals; serde_json renders them as null too.
                Value::Number(n) if !n.is_finite() => write!(f, "null"),
                Value::Number(n) => write!(f, "{n}"),
                Value::String(s) => {
                    write!(f, "\"")?;
                    for c in s.chars() {
                        match c {
                            '"' => write!(f, "\\\"")?,
                            '\\' => write!(f, "\\\\")?,
                            '\n' => write!(f, "\\n")?,
                            '\r' => write!(f, "\\r")?,
                            '\t' => write!(f, "\\t")?,
                            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                            c => write!(f, "{c}")?,
                        }
                    }
                    write!(f, "\"")
                }
                Value::Array(items) => {
                    write!(f, "[")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{item}")?;
                    }
                    write!(f, "]")
                }
                Value::Object(fields) => {
                    write!(f, "{{")?;
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}:{v}", Value::String(k.clone()))?;
                    }
                    write!(f, "}}")
                }
            }
        }
    }

    /// A parse failure with the 1-based source position where it happened.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ParseError {
        /// 1-based line of the offending character.
        pub line: usize,
        /// 1-based column (in characters) of the offending character.
        pub column: usize,
        message: String,
    }

    impl fmt::Display for ParseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "{} at line {}, column {}",
                self.message, self.line, self.column
            )
        }
    }

    impl std::error::Error for ParseError {}

    /// A wire write was refused because the value contains a non-finite number (NaN or an
    /// infinity), which JSON cannot represent without data loss.
    #[derive(Debug, Clone, PartialEq)]
    pub struct NonFiniteError(pub f64);

    impl fmt::Display for NonFiniteError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "non-finite number {} cannot be serialized to JSON",
                self.0
            )
        }
    }

    impl std::error::Error for NonFiniteError {}

    /// Streaming newline-delimited JSON writer — the shared codec for the campaign server's
    /// wire protocol and the `repro --json` artifact stream.  Every value is written as one
    /// compact line (wire-strict: non-finite numbers are rejected, see
    /// [`Value::to_wire_string`]) and flushed, so a reader on the other end of a pipe or
    /// socket sees each document as soon as it is complete.
    #[derive(Debug)]
    pub struct NdjsonWriter<W: std::io::Write> {
        inner: W,
    }

    impl<W: std::io::Write> NdjsonWriter<W> {
        /// Wrap a byte sink.
        pub fn new(inner: W) -> Self {
            NdjsonWriter { inner }
        }

        /// Write one value as a single `\n`-terminated compact JSON line and flush.
        pub fn write(&mut self, value: &Value) -> std::io::Result<()> {
            let line = value
                .to_wire_string()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            self.inner.write_all(line.as_bytes())?;
            self.inner.write_all(b"\n")?;
            self.inner.flush()
        }

        /// Unwrap the underlying sink.
        pub fn into_inner(self) -> W {
            self.inner
        }
    }

    /// Read the next newline-delimited JSON value from a buffered reader.
    ///
    /// Returns `Ok(None)` at end of stream; blank lines are skipped; a line that is not a
    /// complete JSON document becomes an `InvalidData` error carrying the parser's
    /// line/column position.
    pub fn read_ndjson_line<R: std::io::BufRead>(reader: &mut R) -> std::io::Result<Option<Value>> {
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            return parse(line.trim_end_matches(['\r', '\n']))
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
    }

    /// Parse a JSON document into a [`Value`] (the `serde_json::from_str` analogue).
    ///
    /// Accepts exactly the grammar the writer emits — `null`, booleans, numbers (parsed as
    /// `f64`), strings with the standard escapes incl. `\uXXXX` surrogate pairs, arrays and
    /// objects — and rejects everything else with a [`ParseError`] carrying the 1-based
    /// line/column of the offending character.  Trailing non-whitespace after the document is
    /// an error; object keys keep their input order (duplicates are preserved verbatim).
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Nesting depth above which [`parse`] bails out instead of risking stack exhaustion.
    const MAX_DEPTH: usize = 128;

    struct Parser<'a> {
        input: &'a str,
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn error(&self, message: impl Into<String>) -> ParseError {
            let consumed = &self.input[..self.pos.min(self.input.len())];
            let line = consumed.bytes().filter(|&b| b == b'\n').count() + 1;
            let column = consumed
                .rsplit_once('\n')
                .map_or(consumed, |(_, tail)| tail)
                .chars()
                .count()
                + 1;
            ParseError {
                line,
                column,
                message: message.into(),
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.error(format!("expected '{}'", byte as char)))
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(self.error(format!("expected '{word}'")))
            }
        }

        fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
            if depth > MAX_DEPTH {
                return Err(self.error("maximum nesting depth exceeded"));
            }
            match self.peek() {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => self.string().map(Value::String),
                Some(b'[') => self.array(depth),
                Some(b'{') => self.object(depth),
                Some(b'-' | b'0'..=b'9') => self.number(),
                Some(_) => Err(self.error("expected a JSON value")),
                None => Err(self.error("unexpected end of input")),
            }
        }

        fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value(depth + 1)?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(self.error("expected ',' or ']' in array")),
                }
            }
        }

        fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                if self.peek() != Some(b'"') {
                    return Err(self.error("expected a string object key"));
                }
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value(depth + 1)?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(self.error("expected ',' or '}' in object")),
                }
            }
        }

        fn string(&mut self) -> Result<String, ParseError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let rest = &self.input[self.pos..];
                let mut chars = rest.char_indices();
                let (_, c) = chars
                    .next()
                    .ok_or_else(|| self.error("unterminated string"))?;
                match c {
                    '"' => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    '\\' => {
                        self.pos += 1;
                        let esc = self
                            .peek()
                            .ok_or_else(|| self.error("unterminated escape sequence"))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{0008}'),
                            b'f' => out.push('\u{000c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hi = self.hex_escape()?;
                                let c = if (0xD800..0xDC00).contains(&hi) {
                                    // High surrogate: a \uXXXX low surrogate must follow.
                                    if self.peek() != Some(b'\\') {
                                        return Err(self.error("unpaired surrogate"));
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.error("unpaired surrogate"));
                                    }
                                    self.pos += 1;
                                    let lo = self.hex_escape()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    char::from_u32(hi)
                                        .ok_or_else(|| self.error("unpaired surrogate"))?
                                };
                                out.push(c);
                            }
                            _ => {
                                self.pos -= 1;
                                return Err(self.error("invalid escape character"));
                            }
                        }
                    }
                    c if (c as u32) < 0x20 => {
                        return Err(self.error("unescaped control character in string"));
                    }
                    c => {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn hex_escape(&mut self) -> Result<u32, ParseError> {
            let end = self.pos + 4;
            let digits = self
                .bytes
                .get(self.pos..end)
                .and_then(|b| std::str::from_utf8(b).ok())
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let code = u32::from_str_radix(digits, 16)
                .map_err(|_| self.error("invalid \\u escape digits"))?;
            self.pos = end;
            Ok(code)
        }

        fn number(&mut self) -> Result<Value, ParseError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            match self.peek() {
                Some(b'0') => self.pos += 1,
                Some(b'1'..=b'9') => {
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.pos += 1;
                    }
                }
                _ => return Err(self.error("expected a digit")),
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                if !matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.error("expected a digit after the decimal point"));
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                if !matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.error("expected a digit in the exponent"));
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            let text = &self.input[start..self.pos];
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| self.error("number out of range"))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn compact_rendering_is_valid_json() {
            let v = Value::object([
                ("id", Value::from("fig4")),
                ("n", Value::from(3usize)),
                ("pi", Value::from(3.5f64)),
                ("nan", Value::from(f64::NAN)),
                ("points", Value::array([(0.0f64, 1.0f64), (1.0, 2.5)])),
                ("quote", Value::from("a\"b\\c\nd")),
                ("empty", Value::Array(Vec::new())),
            ]);
            assert_eq!(
                v.to_string(),
                "{\"id\":\"fig4\",\"n\":3,\"pi\":3.5,\"nan\":null,\
                 \"points\":[[0,1],[1,2.5]],\"quote\":\"a\\\"b\\\\c\\nd\",\"empty\":[]}"
            );
        }

        #[test]
        fn pretty_rendering_indents_nested_structures() {
            let v = Value::object([("xs", Value::array([1u64, 2]))]);
            assert_eq!(
                v.to_string_pretty(),
                "{\n  \"xs\": [\n    1,\n    2\n  ]\n}"
            );
            assert_eq!(Value::Null.to_string_pretty(), "null");
        }

        #[test]
        fn parse_round_trips_writer_output() {
            let v = Value::object([
                ("id", Value::from("fig4")),
                ("n", Value::from(3usize)),
                ("pi", Value::from(3.5f64)),
                ("neg", Value::from(-1.25e-3f64)),
                ("flag", Value::from(true)),
                ("none", Value::Null),
                ("points", Value::array([(0.0f64, 1.0f64), (1.0, 2.5)])),
                ("quote", Value::from("a\"b\\c\nd\ttab \u{1F600} ok")),
                ("empty", Value::Array(Vec::new())),
                ("nested", Value::object([("k", Value::from("v"))])),
            ]);
            assert_eq!(parse(&v.to_string()).unwrap(), v);
            assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
        }

        #[test]
        fn parse_handles_escapes_and_surrogate_pairs() {
            assert_eq!(
                parse(r#""\u0041\u00e9\ud83d\ude00\/""#).unwrap(),
                Value::String("A\u{e9}\u{1F600}/".to_string())
            );
            assert_eq!(parse("  [ 1 , 2.5e2 , -0 ]  ").unwrap(), {
                Value::Array(vec![
                    Value::Number(1.0),
                    Value::Number(250.0),
                    Value::Number(-0.0),
                ])
            });
        }

        #[test]
        fn value_accessors_navigate_trees() {
            let v = Value::object([
                ("name", Value::from("montage")),
                ("n", Value::from(3u64)),
                ("xs", Value::array([1u64, 2])),
            ]);
            assert_eq!(v.get("name").and_then(Value::as_str), Some("montage"));
            assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
            assert_eq!(v.get("n").and_then(Value::as_f64), Some(3.0));
            assert_eq!(
                v.get("xs").and_then(Value::as_array).map(<[Value]>::len),
                Some(2)
            );
            assert_eq!(v.as_object().map(<[(String, Value)]>::len), Some(3));
            assert_eq!(v.get("missing"), None);
            assert_eq!(Value::from(1.5).as_u64(), None);
            assert_eq!(Value::from(-1.0).as_u64(), None);
            assert_eq!(Value::Null.get("k"), None);
        }

        #[test]
        fn wire_writes_reject_non_finite_numbers() {
            let clean = Value::object([("x", Value::from(1.5))]);
            assert_eq!(clean.to_wire_string().unwrap(), "{\"x\":1.5}");
            let dirty = Value::object([
                ("ok", Value::from(1.0)),
                ("bad", Value::array([Value::from(f64::NAN)])),
            ]);
            assert!(dirty.to_wire_string().is_err());
            assert_eq!(
                Value::from(f64::INFINITY).find_non_finite(),
                Some(f64::INFINITY)
            );
            let mut w = NdjsonWriter::new(Vec::new());
            assert!(w.write(&dirty).is_err());
            assert!(w.write(&clean).is_ok());
        }

        #[test]
        fn ndjson_writer_and_reader_round_trip_streams() {
            let docs = [
                Value::object([("seq", Value::from(0u64)), ("msg", Value::from("a\nb"))]),
                Value::array([1u64, 2, 3]),
                Value::Null,
                Value::from(true),
            ];
            let mut w = NdjsonWriter::new(Vec::new());
            for d in &docs {
                w.write(d).unwrap();
            }
            let bytes = w.into_inner();
            // One line per document, each embedded newline escaped.
            assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), docs.len());
            let mut r = std::io::BufReader::new(&bytes[..]);
            let mut back = Vec::new();
            while let Some(v) = read_ndjson_line(&mut r).unwrap() {
                back.push(v);
            }
            assert_eq!(back, docs);

            // Blank lines are skipped; garbage lines carry the parse position.
            let mut r = std::io::BufReader::new(&b"\n  \n{\"k\":1}\nnope\n"[..]);
            assert_eq!(
                read_ndjson_line(&mut r).unwrap(),
                Some(Value::object([("k", Value::from(1u64))]))
            );
            assert!(read_ndjson_line(&mut r).is_err());
        }

        #[test]
        fn parse_reports_error_positions() {
            // Unquoted identifier on line 2, column 8.
            let err = parse("{\n  \"a\": nope\n}").unwrap_err();
            assert_eq!((err.line, err.column), (2, 8));
            assert!(err.to_string().contains("line 2, column 8"));

            let err = parse("[1, 2,]").unwrap_err();
            assert_eq!((err.line, err.column), (1, 7));

            assert!(parse("").is_err());
            assert!(parse("[1] extra").is_err());
            assert!(parse("{\"a\" 1}").is_err());
            assert!(parse("\"unterminated").is_err());
            assert!(parse("01").is_err());
            assert!(parse("1.").is_err());
            assert!(parse("\"\\q\"").is_err());
            assert!(parse("\"\\ud800\"").is_err());
            assert!(parse("nul").is_err());
            let deep = "[".repeat(200) + &"]".repeat(200);
            assert!(parse(&deep).is_err());
        }

        /// Deterministic splitmix64 stream for the round-trip property below.
        struct Mix(u64);

        impl Mix {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            }

            /// An arbitrary *finite* f64 (full bit-pattern space, non-finite re-rolled).
            fn finite_f64(&mut self) -> f64 {
                loop {
                    let f = f64::from_bits(self.next());
                    if f.is_finite() {
                        return f;
                    }
                }
            }

            /// An arbitrary string mixing escapes, control characters and astral planes.
            fn string(&mut self) -> String {
                const POOL: &[char] = &[
                    'a',
                    'Z',
                    '9',
                    '"',
                    '\\',
                    '/',
                    '\n',
                    '\r',
                    '\t',
                    '\u{0008}',
                    '\u{000c}',
                    '\u{0000}',
                    '\u{001f}',
                    'é',
                    '中',
                    '\u{1F600}',
                    ' ',
                ];
                let len = (self.next() % 12) as usize;
                (0..len)
                    .map(|_| POOL[(self.next() % POOL.len() as u64) as usize])
                    .collect()
            }

            /// A random value tree of bounded depth.
            fn value(&mut self, depth: usize) -> Value {
                let scalar_only = depth == 0;
                match self.next() % if scalar_only { 5 } else { 7 } {
                    0 => Value::Null,
                    1 => Value::Bool(self.next().is_multiple_of(2)),
                    2 => Value::Number(self.finite_f64()),
                    3 => Value::Number((self.next() % 1_000_000) as f64),
                    4 => Value::String(self.string()),
                    5 => {
                        let n = (self.next() % 4) as usize;
                        Value::Array((0..n).map(|_| self.value(depth - 1)).collect())
                    }
                    _ => {
                        let n = (self.next() % 4) as usize;
                        Value::Object(
                            (0..n)
                                .map(|_| (self.string(), self.value(depth - 1)))
                                .collect(),
                        )
                    }
                }
            }
        }

        mod properties {
            use super::*;
            use proptest::prelude::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(256))]

                /// Serializer ↔ parser round trip: any finite value tree survives both the
                /// compact and the pretty rendering bit-for-bit, and the wire-strict form
                /// agrees with the compact form.
                #[test]
                fn prop_serializer_parser_round_trip(seed in 0u64..1_000_000_000) {
                    let v = Mix(seed).value(4);
                    let compact = v.to_string();
                    prop_assert_eq!(parse(&compact).unwrap(), v.clone());
                    prop_assert_eq!(parse(&v.to_string_pretty()).unwrap(), v.clone());
                    prop_assert_eq!(v.to_wire_string().unwrap(), compact);
                }

                /// Non-finite numbers anywhere in the tree are rejected by the wire
                /// serializer (the lossy `Display` form would null them).
                #[test]
                fn prop_wire_rejects_injected_non_finite(seed in 0u64..1_000_000_000) {
                    let mut rng = Mix(seed);
                    let bad = match rng.next() % 3 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        _ => f64::NEG_INFINITY,
                    };
                    // Bury the poison value inside a random wrapper tree.
                    let mut v = Value::Number(bad);
                    for _ in 0..rng.next() % 4 {
                        v = match rng.next() % 2 {
                            0 => Value::Array(vec![rng.value(1), v, rng.value(1)]),
                            _ => Value::Object(vec![
                                (rng.string(), rng.value(1)),
                                ("poison".to_string(), v),
                            ]),
                        };
                    }
                    prop_assert!(v.to_wire_string().is_err());
                    prop_assert!(v.find_non_finite().is_some());
                }

                /// Nesting beyond MAX_DEPTH is rejected with an error, never a stack
                /// overflow; nesting at or below it parses fine.
                #[test]
                fn prop_depth_cap_is_enforced(extra in 1usize..64, under in 1usize..100) {
                    let over = MAX_DEPTH + 1 + extra;
                    let deep = "[".repeat(over) + &"]".repeat(over);
                    prop_assert!(parse(&deep).is_err());
                    let ok = "[".repeat(under) + &"]".repeat(under);
                    prop_assert!(parse(&ok).is_ok());
                }
            }
        }
    }
}
