//! Offline stand-in for the real `serde` crate.
//!
//! The workspace builds without network access, so this shim supplies exactly the surface the
//! codebase uses: the `Serialize` / `Deserialize` *derive macros* (which expand to nothing),
//! same-named marker traits for bounds, and a minimal [`json`] backend (a self-describing
//! [`json::Value`] tree with a conforming writer) for the machine-readable artifacts the
//! `repro --json` flag emits.  When the environment gains crates.io access, point the
//! workspace dependency at the real `serde` (+`serde_json`) — the hand-rolled
//! `to_json()` builders at the call sites map one-to-one onto `#[derive(Serialize)]`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in this offline shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in this offline shim).
pub trait Deserialize<'de> {}

/// A minimal JSON document model and writer (the `serde_json::Value` analogue).
pub mod json {
    use std::fmt;

    /// A JSON value tree.  Build it with the `From` impls and [`Value::object`] /
    /// [`Value::array`], render it with `Display` (compact) or [`Value::to_string_pretty`].
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null` (also the rendering of non-finite numbers, as in `serde_json`).
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (always carried as `f64`; integral values render without a fraction).
        Number(f64),
        /// A string (escaped on output).
        String(String),
        /// An ordered array.
        Array(Vec<Value>),
        /// An object with insertion-ordered keys.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// An object from `(key, value)` pairs, preserving order.
        pub fn object(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
            Value::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }

        /// An array from anything convertible to values.
        pub fn array(items: impl IntoIterator<Item = impl Into<Value>>) -> Value {
            Value::Array(items.into_iter().map(Into::into).collect())
        }

        /// Render with two-space indentation (the `serde_json::to_string_pretty` analogue).
        pub fn to_string_pretty(&self) -> String {
            let mut out = String::new();
            self.write_pretty(&mut out, 0);
            out
        }

        fn write_pretty(&self, out: &mut String, indent: usize) {
            match self {
                Value::Array(items) if !items.is_empty() => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(if i == 0 { "\n" } else { ",\n" });
                        out.push_str(&"  ".repeat(indent + 1));
                        item.write_pretty(out, indent + 1);
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                    out.push(']');
                }
                Value::Object(fields) if !fields.is_empty() => {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        out.push_str(if i == 0 { "\n" } else { ",\n" });
                        out.push_str(&"  ".repeat(indent + 1));
                        out.push_str(&format!("{}: ", Value::String(k.clone())));
                        v.write_pretty(out, indent + 1);
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                    out.push('}');
                }
                other => {
                    out.push_str(&other.to_string());
                }
            }
        }
    }

    impl From<bool> for Value {
        fn from(b: bool) -> Value {
            Value::Bool(b)
        }
    }
    impl From<f64> for Value {
        fn from(n: f64) -> Value {
            Value::Number(n)
        }
    }
    impl From<u64> for Value {
        fn from(n: u64) -> Value {
            Value::Number(n as f64)
        }
    }
    impl From<usize> for Value {
        fn from(n: usize) -> Value {
            Value::Number(n as f64)
        }
    }
    impl From<&str> for Value {
        fn from(s: &str) -> Value {
            Value::String(s.to_string())
        }
    }
    impl From<String> for Value {
        fn from(s: String) -> Value {
            Value::String(s)
        }
    }
    impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
        fn from((a, b): (A, B)) -> Value {
            Value::Array(vec![a.into(), b.into()])
        }
    }

    impl fmt::Display for Value {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Value::Null => write!(f, "null"),
                Value::Bool(b) => write!(f, "{b}"),
                // JSON has no NaN/Infinity literals; serde_json renders them as null too.
                Value::Number(n) if !n.is_finite() => write!(f, "null"),
                Value::Number(n) => write!(f, "{n}"),
                Value::String(s) => {
                    write!(f, "\"")?;
                    for c in s.chars() {
                        match c {
                            '"' => write!(f, "\\\"")?,
                            '\\' => write!(f, "\\\\")?,
                            '\n' => write!(f, "\\n")?,
                            '\r' => write!(f, "\\r")?,
                            '\t' => write!(f, "\\t")?,
                            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                            c => write!(f, "{c}")?,
                        }
                    }
                    write!(f, "\"")
                }
                Value::Array(items) => {
                    write!(f, "[")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{item}")?;
                    }
                    write!(f, "]")
                }
                Value::Object(fields) => {
                    write!(f, "{{")?;
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}:{v}", Value::String(k.clone()))?;
                    }
                    write!(f, "}}")
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn compact_rendering_is_valid_json() {
            let v = Value::object([
                ("id", Value::from("fig4")),
                ("n", Value::from(3usize)),
                ("pi", Value::from(3.5f64)),
                ("nan", Value::from(f64::NAN)),
                ("points", Value::array([(0.0f64, 1.0f64), (1.0, 2.5)])),
                ("quote", Value::from("a\"b\\c\nd")),
                ("empty", Value::Array(Vec::new())),
            ]);
            assert_eq!(
                v.to_string(),
                "{\"id\":\"fig4\",\"n\":3,\"pi\":3.5,\"nan\":null,\
                 \"points\":[[0,1],[1,2.5]],\"quote\":\"a\\\"b\\\\c\\nd\",\"empty\":[]}"
            );
        }

        #[test]
        fn pretty_rendering_indents_nested_structures() {
            let v = Value::object([("xs", Value::array([1u64, 2]))]);
            assert_eq!(
                v.to_string_pretty(),
                "{\n  \"xs\": [\n    1,\n    2\n  ]\n}"
            );
            assert_eq!(Value::Null.to_string_pretty(), "null");
        }
    }
}
