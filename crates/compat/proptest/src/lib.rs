//! Offline stand-in for the real `proptest` crate.
//!
//! The workspace builds without network access, so this shim implements the subset of the
//! proptest API its tests use: the [`strategy::Strategy`] trait with range / `Just` /
//! `prop_oneof!` / `collection::vec` / `bool::ANY` strategies, the [`proptest!`] macro, and the
//! `prop_assert*` macros.  Each property runs for a configurable number of cases with inputs
//! drawn from a deterministic per-test RNG (seeded from the test name), so failures are
//! reproducible run to run.  There is no shrinking and no persisted failure corpus; swap the
//! path dependency for the crates.io release to get those, with no call-site changes.

/// Strategies: how input values are drawn.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type (the sampling subset of proptest's trait).
    pub trait Strategy {
        /// The type of value produced.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing one fixed value (proptest's `Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.start + (self.end - self.start) * (rng.next_f64() as $t)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    /// Uniform choice among boxed sub-strategies (what [`prop_oneof!`](crate::prop_oneof)
    /// builds).
    pub struct OneOf<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// Build from a non-empty list of boxed strategies.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing `true` / `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Any boolean value.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `Vec` with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The test runner: per-property configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-property configuration (only the case count in this shim).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to execute.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Run the property for `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 RNG; seeded from the property's name so each test draws a
    /// stable, independent stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a label (the test function name).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::OneOf::new(options)
    }};
}

/// Assert inside a property (plain `assert!` in this shim — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// that runs the body for `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u64> {
        prop_oneof![Just(0u64), Just(2u64), Just(4u64)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0.5f64..1.5, n in 1usize..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn oneof_and_collections(e in small_even(), v in crate::collection::vec(0u64..5, 1..10), b in crate::bool::ANY) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let mut c = crate::test_runner::TestRng::deterministic("u");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
