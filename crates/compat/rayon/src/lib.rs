//! Offline stand-in for the real `rayon` crate.
//!
//! The workspace builds without network access, so this shim implements the slice of the
//! rayon API the codebase uses — `slice.par_iter().map(f).collect()`,
//! `range.into_par_iter().map(f).collect()`, [`join`] and scoped [`ThreadPool`]s — on top of
//! a persistent work-stealing thread pool (see [`mod@self`] internals in `pool.rs`):
//!
//! * a **global pool** is created lazily on first use and reused by every parallel call for
//!   the rest of the process (no more spawn-per-call);
//! * each worker owns a LIFO deque and steals from random victims when idle, so uneven
//!   per-item costs re-balance instead of serialising behind one static chunk per core;
//! * `par_iter` splits work into **dynamic chunks** (several per worker) and writes results
//!   by input index, so output order matches input order exactly as with real rayon;
//! * the `P2PGRID_POOL_THREADS` environment variable overrides the global pool's worker
//!   count (`1` forces fully sequential inline execution — results are identical either
//!   way, which CI pins by running the test suite at `1` and `8`).
//!
//! Swap the path dependency for the crates.io release to get adaptive splitting and the
//! full combinator set; call sites need no changes.

use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

mod pool;

pub use pool::POOL_THREADS_ENV;
use pool::{erase_job, BatchPanic, Latch, PoolState};

/// The import surface (`use rayon::prelude::*`) mirroring rayon's prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads in the current thread pool (the installed pool if inside a
/// [`ThreadPool::install`] scope, otherwise the global pool).
pub fn current_num_threads() -> usize {
    pool::current_pool().worker_count()
}

// ----- core parallel map -----------------------------------------------------------------

/// A raw output cursor that may cross thread boundaries.  Each task writes a disjoint index
/// range, so shared mutable access never overlaps.
struct SendPtr<U>(*mut MaybeUninit<U>);

impl<U> Clone for SendPtr<U> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<U> Copy for SendPtr<U> {}
// Safety: the pointer is only ever written (never read) before the batch latch opens, and
// every task writes a disjoint range of indices.
unsafe impl<U: Send> Send for SendPtr<U> {}
unsafe impl<U: Send> Sync for SendPtr<U> {}

/// Map `f` over `items` on the current pool, preserving input order in the output.
///
/// Work is split into roughly `4 × workers` chunks so that uneven per-item costs re-balance
/// via stealing; every chunk writes its results directly into the output vector at the
/// item's original index.  Panics in `f` are caught, the batch is drained to completion
/// (the latch must open before the stack frame holding the borrows unwinds), and the first
/// panic payload is re-thrown on the calling thread.
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let len = items.len();
    let pool = pool::current_pool();
    if len <= 1 || pool.worker_count() <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Several chunks per worker: small enough to re-balance skewed workloads by stealing,
    // large enough to keep per-chunk overhead negligible.
    let chunk_size = len.div_ceil(pool.worker_count() * 4).max(1);
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(len.div_ceil(chunk_size));
    let mut items = items;
    let mut consumed = 0usize;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        let chunk = std::mem::replace(&mut items, rest);
        let start = consumed;
        consumed += chunk.len();
        chunks.push((start, chunk));
    }

    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(len);
    // Safety: MaybeUninit<U> needs no initialisation, and `out` is only transmuted to
    // Vec<U> after every index has been written (the latch guarantees it).
    unsafe { out.set_len(len) };
    let out_ptr = SendPtr(out.as_mut_ptr());

    let latch = Latch::new(chunks.len());
    let panics = BatchPanic::new();
    let f = &f;
    let latch_ref = &latch;
    let tasks = chunks
        .into_iter()
        .map(|(start, chunk)| {
            let panics = Arc::clone(&panics);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                // Rebind the wrapper so the closure captures `SendPtr` itself — 2021
                // disjoint capture would otherwise grab the raw (non-Send) field.
                let out_ptr = out_ptr;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    for (offset, item) in chunk.into_iter().enumerate() {
                        // Safety: indices [start, start + chunk.len()) are owned by this
                        // task alone and lie inside the `len`-element allocation.
                        unsafe { (*out_ptr.0.add(start + offset)).write(f(item)) };
                    }
                }));
                if let Err(payload) = result {
                    panics.record(payload);
                }
                latch_ref.count_down();
            });
            // Safety: run_batch below blocks this frame until the latch opens, i.e. until
            // every job has finished running, so the erased borrows outlive the jobs.
            unsafe { erase_job(job) }
        })
        .collect();
    pool.run_batch(tasks, &latch);
    // Re-throw a worker panic only after every sibling finished (all borrows are dead, and
    // `out` drops as MaybeUninit — written elements leak, which is safe).
    panics.propagate();

    // Safety: the latch opened with no panic recorded, so all `len` elements are written.
    unsafe {
        let mut out = ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr().cast::<U>(), len, out.capacity())
    }
}

// ----- join ------------------------------------------------------------------------------

/// Run `a` and `b` potentially in parallel and return both results.
///
/// `b` is offered to the current pool while the calling thread runs `a`; the caller then
/// helps execute pool tasks until `b` completes (it runs `b` itself if no worker stole it).
/// On a single-threaded pool this is exactly `(a(), b())`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = pool::current_pool();
    if pool.worker_count() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }

    let latch = Latch::new(1);
    let panics = BatchPanic::new();
    let mut slot_b: Option<RB> = None;
    {
        let slot_b = &mut slot_b;
        let panics_b = Arc::clone(&panics);
        let latch_ref = &latch;
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            match catch_unwind(AssertUnwindSafe(b)) {
                Ok(value) => *slot_b = Some(value),
                Err(payload) => panics_b.record(payload),
            }
            latch_ref.count_down();
        });
        // Safety: help_until below keeps this frame alive until the latch opens, so the
        // borrows of `slot_b`, `panics` and `latch` outlive the job.
        let task = unsafe { erase_job(job) };
        pool.push_task(task);
    }

    let ra = catch_unwind(AssertUnwindSafe(a));
    pool.help_until(&latch);
    let ra = match ra {
        Ok(value) => value,
        Err(payload) => {
            panics.record(payload);
            panics.propagate();
            unreachable!("join: recorded panic must have been propagated")
        }
    };
    panics.propagate();
    (
        ra,
        slot_b.expect("join: closure b completed without panicking"),
    )
}

// ----- thread pools ----------------------------------------------------------------------

/// Error returned by [`ThreadPoolBuilder::build`] (mirrors rayon's opaque error type; this
/// shim's build can only fail if OS thread spawning fails, which panics instead).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an owned [`ThreadPool`], mirroring rayon's `ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count.  `0` (rayon convention) means "use the default", i.e. the
    /// `P2PGRID_POOL_THREADS` override or the machine's available parallelism; `1` builds an
    /// inline pool whose parallel operations run sequentially on the submitting thread.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = (num_threads > 0).then_some(num_threads);
        self
    }

    /// Build the pool and spawn its workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let workers = self.num_threads.unwrap_or_else(pool::default_worker_count);
        let (state, handles) = PoolState::spawn(workers);
        Ok(ThreadPool { state, handles })
    }
}

/// An owned work-stealing thread pool, independent of the global one.
///
/// Unlike real rayon, [`install`](Self::install) runs the closure on the *calling* thread
/// with this pool made current — parallel operations inside route to this pool's workers,
/// which is the observable contract the workspace relies on (e.g. to compare thread counts
/// within one process).  Workers are shut down and joined when the pool is dropped.
pub struct ThreadPool {
    state: Arc<PoolState>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Run `f` with this pool as the current pool for every parallel operation inside.
    pub fn install<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        pool::with_installed(&self.state, f)
    }

    /// Number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.state.worker_count()
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.state.worker_count())
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.state.shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// ----- parallel iterator surface ---------------------------------------------------------

/// A not-yet-mapped parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The subset of rayon's `ParallelIterator` used by this workspace.
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Evaluate the pipeline in parallel and hand the results, in input order, to `C`.
    fn collect<C: FromIterator<Self::Item>>(self) -> C;

    /// Map every item through `f` (evaluated in parallel at `collect` time).
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> Mapped<Self, F> {
        Mapped { inner: self, f }
    }
}

/// A `map` stage stacked on another parallel iterator.
pub struct Mapped<I, F> {
    inner: I,
    f: F,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<I, U, F> ParallelIterator for Mapped<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U;
    fn collect<C: FromIterator<U>>(self) -> C {
        let items: Vec<I::Item> = self.inner.collect();
        parallel_map(items, self.f).into_iter().collect()
    }
}

/// Mirror of rayon's `IntoParallelIterator` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type of the produced iterator.
    type Item: Send;
    /// The produced parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<$t>;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}

impl_range_into_par_iter!(usize, u32, u64, i32, i64);

/// Mirror of rayon's `IntoParallelRefIterator`: `.par_iter()` on slices and arrays.
pub trait IntoParallelRefIterator<'a> {
    /// Item type of the produced iterator (a shared reference).
    type Item: Send;
    /// The produced parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterate the collection by reference, in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, join, ThreadPoolBuilder};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn par_iter_on_slices_and_arrays() {
        let arr = [1u64, 2, 3, 4, 5];
        let doubled: Vec<u64> = arr.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let v = vec![10u32, 20, 30];
        let s: Vec<u32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(s, vec![11, 21, 31]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn join_runs_both_and_orders_results() {
        let (a, b) = join(|| 2 + 2, || "right".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "right");
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let totals: Vec<u64> = (0..16u64)
            .into_par_iter()
            .map(|i| {
                (0..100u64)
                    .into_par_iter()
                    .map(|j| i * j)
                    .collect::<Vec<_>>()
                    .iter()
                    .sum()
            })
            .collect();
        for (i, &total) in totals.iter().enumerate() {
            assert_eq!(total, i as u64 * (99 * 100 / 2));
        }
    }

    #[test]
    fn borrows_of_caller_stack_are_sound() {
        let data: Vec<u64> = (0..500).collect();
        let offset = 17u64;
        let shifted: Vec<u64> = data.par_iter().map(|&x| x + offset).collect();
        assert_eq!(shifted[499], 499 + 17);
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let work = |n: usize| -> Vec<u64> {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            pool.install(|| {
                (0..256u64)
                    .into_par_iter()
                    .map(|x| x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17))
                    .collect()
            })
        };
        let one = work(1);
        let four = work(4);
        let eight = work(8);
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn installed_pool_is_current() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
    }

    #[test]
    fn skewed_workloads_use_multiple_workers() {
        // One item is vastly more expensive than the rest; with dynamic chunks and stealing
        // the cheap items must not all serialise behind it on a single worker.  The
        // expensive item *blocks* (rather than spins) until a cheap item has run on a
        // different thread: blocking yields the CPU, so even on a one-hardware-thread host
        // the pool's other workers get scheduled and the property is deterministic, not a
        // race against the OS scheduler.  The timeout only bounds a genuine failure.
        use std::sync::{Arc, Condvar, Mutex};
        use std::time::Duration;
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let gate: Arc<(Mutex<Vec<std::thread::ThreadId>>, Condvar)> =
            Arc::new((Mutex::new(Vec::new()), Condvar::new()));
        let threads_used = pool.install(|| {
            let ids: Vec<std::thread::ThreadId> = (0..64usize)
                .into_par_iter()
                .map(|i| {
                    let me = std::thread::current().id();
                    let (seen, woken) = &*gate;
                    if i == 0 {
                        // Stay "expensive" until some cheap item finishes elsewhere.
                        let deadline = std::time::Instant::now() + Duration::from_secs(10);
                        let mut seen = seen.lock().unwrap();
                        while !seen.iter().any(|&id| id != me) {
                            let left =
                                deadline.saturating_duration_since(std::time::Instant::now());
                            if left.is_zero() {
                                break;
                            }
                            let (guard, _) = woken.wait_timeout(seen, left).unwrap();
                            seen = guard;
                        }
                    } else {
                        seen.lock().unwrap().push(me);
                        woken.notify_all();
                    }
                    me
                })
                .collect();
            ids.iter().collect::<std::collections::HashSet<_>>().len()
        });
        assert!(
            threads_used >= 2,
            "expected >= 2 distinct worker threads, saw {threads_used}"
        );
    }

    #[test]
    fn panics_propagate_after_batch_completes() {
        static COMPLETED: AtomicUsize = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                let _: Vec<usize> = (0..64usize)
                    .into_par_iter()
                    .map(|i| {
                        if i == 13 {
                            panic!("boom");
                        }
                        COMPLETED.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                    .collect();
            });
        }));
        assert!(outcome.is_err(), "panic in a mapped closure must propagate");
        assert!(COMPLETED.load(Ordering::Relaxed) >= 1);
    }
}
