//! Offline stand-in for the real `rayon` crate.
//!
//! The workspace builds without network access, so this shim implements the small slice of the
//! rayon API the codebase uses — `slice.par_iter().map(f).collect()` and
//! `range.into_par_iter().map(f).collect()` — on top of `std::thread::scope`.  Work is split
//! into one contiguous chunk per available core, each chunk is mapped on its own OS thread, and
//! the per-chunk outputs are concatenated, so result order matches the input order exactly as
//! with real rayon.  Swap the path dependency for the crates.io release to get work stealing,
//! adaptive splitting and the full combinator set; call sites need no changes.

use std::num::NonZeroUsize;

/// The import surface (`use rayon::prelude::*`) mirroring rayon's prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads used for a job of `len` independent items.
fn worker_count(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Map `f` over `items` in parallel, preserving input order in the output.
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let len = items.len();
    if len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = worker_count(len);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    // Split into `workers` contiguous chunks of near-equal size and map each on its own
    // scoped thread; joining in spawn order restores the original ordering.
    let chunk = len.div_ceil(workers);
    let mut slots: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        slots.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = slots
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            out.extend(h.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// A not-yet-mapped parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The subset of rayon's `ParallelIterator` used by this workspace.
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Evaluate the pipeline in parallel and hand the results, in input order, to `C`.
    fn collect<C: FromIterator<Self::Item>>(self) -> C;

    /// Map every item through `f` (evaluated in parallel at `collect` time).
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> Mapped<Self, F> {
        Mapped { inner: self, f }
    }
}

/// A `map` stage stacked on another parallel iterator.
pub struct Mapped<I, F> {
    inner: I,
    f: F,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<I, U, F> ParallelIterator for Mapped<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U;
    fn collect<C: FromIterator<U>>(self) -> C {
        let items: Vec<I::Item> = self.inner.collect();
        parallel_map(items, self.f).into_iter().collect()
    }
}

/// Mirror of rayon's `IntoParallelIterator` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type of the produced iterator.
    type Item: Send;
    /// The produced parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<$t>;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}

impl_range_into_par_iter!(usize, u32, u64, i32, i64);

/// Mirror of rayon's `IntoParallelRefIterator`: `.par_iter()` on slices and arrays.
pub trait IntoParallelRefIterator<'a> {
    /// Item type of the produced iterator (a shared reference).
    type Item: Send;
    /// The produced parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterate the collection by reference, in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn par_iter_on_slices_and_arrays() {
        let arr = [1u64, 2, 3, 4, 5];
        let doubled: Vec<u64> = arr.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let v = vec![10u32, 20, 30];
        let s: Vec<u32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(s, vec![11, 21, 31]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
