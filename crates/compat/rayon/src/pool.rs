//! The persistent work-stealing thread pool behind the shim's parallel operations.
//!
//! One global pool is created lazily on first use and lives for the rest of the process.
//! Every worker owns a LIFO deque: it pushes and pops work at the back (hot, cache-friendly)
//! while idle workers steal from the *front* of a random victim (oldest, largest-grained
//! work first) or from the shared injector queue that external threads submit into.  Callers
//! of a parallel operation never just block: they run tasks of the batch they are waiting on
//! (or any other task of the same pool) until their completion latch opens, which is also
//! what makes nested parallelism deadlock-free — a worker waiting on an inner batch drains
//! its own deque and the deques of its peers while it waits.
//!
//! The queues are plain `Mutex<VecDeque>`s rather than lock-free Chase–Lev deques: every
//! task this workspace submits is coarse (a Dijkstra sweep, a multi-second simulation
//! session, a chunk of a `par_iter`), so queue operations are nowhere near the critical
//! path and the simple implementation is easy to verify.  Swap in the real `rayon` for the
//! lock-free machinery; the public surface is a drop-in subset.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Environment variable overriding the global pool's worker count (`>= 1`; `1` means every
/// parallel operation runs inline on the calling thread, which is the fully deterministic
/// sequential mode the CI matrix pins against `8`).
pub const POOL_THREADS_ENV: &str = "P2PGRID_POOL_THREADS";

/// One queued unit of work.  Jobs are lifetime-erased closures; the safety contract is that
/// the submitting call frame blocks (in [`PoolState::run_batch`]) until every job of its
/// batch has finished running, so the borrows inside never dangle.
pub(crate) struct Task {
    job: Box<dyn FnOnce() + Send + 'static>,
}

impl Task {
    pub(crate) fn run(self) {
        (self.job)();
    }
}

/// Countdown latch a batch submitter waits on while helping to drain the pool.
pub(crate) struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    pub(crate) fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    pub(crate) fn count_down(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    pub(crate) fn is_open(&self) -> bool {
        *self.remaining.lock().expect("latch poisoned") == 0
    }

    /// Wait briefly for the latch to open.  The timeout bounds the staleness window between
    /// "no stealable task found" and "a new task appeared", so the helping loop around this
    /// call never deadlocks on a lost wakeup.
    fn wait_brief(&self) {
        let left = self.remaining.lock().expect("latch poisoned");
        if *left > 0 {
            let _ = self
                .done
                .wait_timeout(left, Duration::from_micros(500))
                .expect("latch poisoned");
        }
    }
}

/// Shared state of one pool: the injector, the per-worker deques and the sleep machinery.
pub struct PoolState {
    /// FIFO queue external (non-worker) threads submit into.
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques: owner pushes/pops at the back, thieves steal from the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Number of tasks sitting in any queue (not yet popped) — a cheap "is there work?"
    /// signal so sleeping workers do not have to scan every queue under lock.
    queued: AtomicUsize,
    /// Sleep support for idle workers.
    sleeper_lock: Mutex<()>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    workers: usize,
}

thread_local! {
    /// The pool context of the current thread: `(pool, worker index)`.  Worker threads set it
    /// once at startup; [`crate::ThreadPool::install`] pushes a scoped entry with no worker
    /// index (submissions go through the injector).
    static CONTEXT: std::cell::RefCell<Vec<(Arc<PoolState>, Option<usize>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The pool the current thread's parallel operations run on: the innermost installed or
/// worker-owned pool, falling back to the lazily-created global pool.
pub(crate) fn current_pool() -> Arc<PoolState> {
    CONTEXT
        .with(|ctx| ctx.borrow().last().map(|(p, _)| Arc::clone(p)))
        .unwrap_or_else(|| Arc::clone(global_pool()))
}

/// Worker index of the current thread *in the given pool*, if it is one of its workers.
fn worker_index_in(pool: &Arc<PoolState>) -> Option<usize> {
    CONTEXT.with(|ctx| {
        ctx.borrow()
            .iter()
            .rev()
            .find(|(p, i)| i.is_some() && Arc::ptr_eq(p, pool))
            .and_then(|(_, i)| *i)
    })
}

/// Run `f` with `pool` installed as the current thread's pool.
pub(crate) fn with_installed<R>(pool: &Arc<PoolState>, f: impl FnOnce() -> R) -> R {
    CONTEXT.with(|ctx| ctx.borrow_mut().push((Arc::clone(pool), None)));
    let result = f();
    CONTEXT.with(|ctx| {
        ctx.borrow_mut().pop();
    });
    result
}

/// The number of workers the global pool uses: `P2PGRID_POOL_THREADS` if set (clamped to at
/// least 1), otherwise the machine's available parallelism.
pub(crate) fn default_worker_count() -> usize {
    if let Ok(value) = std::env::var(POOL_THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process-wide pool, created on first use and never torn down (its workers exit with
/// the process).
pub(crate) fn global_pool() -> &'static Arc<PoolState> {
    static GLOBAL: OnceLock<Arc<PoolState>> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolState::spawn(default_worker_count()).0)
}

/// A tiny per-worker xorshift generator for victim selection.  Steal-order randomness has no
/// bearing on results (outputs are written by index), only on contention.
struct StealRng(u64);

impl StealRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

impl PoolState {
    /// Create the shared state and spawn `workers` OS threads (zero when `workers == 1`:
    /// a single-threaded pool runs everything inline on the submitting thread).  The join
    /// handles let an owned [`crate::ThreadPool`] reap its workers on drop; the global pool
    /// discards them.
    pub(crate) fn spawn(workers: usize) -> (Arc<PoolState>, Vec<std::thread::JoinHandle<()>>) {
        let workers = workers.max(1);
        let threads = if workers == 1 { 0 } else { workers };
        let pool = Arc::new(PoolState {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            sleeper_lock: Mutex::new(()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers,
        });
        let handles = (0..threads)
            .map(|index| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("p2pgrid-pool-{index}"))
                    .spawn(move || worker_loop(pool, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (pool, handles)
    }

    /// Number of worker threads (1 means "inline").
    pub(crate) fn worker_count(&self) -> usize {
        self.workers
    }

    /// Submit one lifetime-erased job.  Called from worker threads (own deque, LIFO) or
    /// external threads (injector, FIFO).
    pub(crate) fn push_task(self: &Arc<Self>, task: Task) {
        match worker_index_in(self) {
            Some(w) => self.deques[w]
                .lock()
                .expect("deque poisoned")
                .push_back(task),
            None => self
                .injector
                .lock()
                .expect("injector poisoned")
                .push_back(task),
        }
        self.queued.fetch_add(1, Ordering::Release);
        self.wakeup.notify_one();
    }

    /// Submit a whole batch at once (one lock round-trip, one wakeup broadcast).
    fn push_batch(self: &Arc<Self>, tasks: Vec<Task>) {
        let count = tasks.len();
        match worker_index_in(self) {
            Some(w) => self.deques[w].lock().expect("deque poisoned").extend(tasks),
            None => self
                .injector
                .lock()
                .expect("injector poisoned")
                .extend(tasks),
        }
        self.queued.fetch_add(count, Ordering::Release);
        self.wakeup.notify_all();
    }

    /// Pop or steal one task: own deque back (LIFO) if `worker` is set, then the injector
    /// front, then the front of every other deque starting from a random victim.
    fn find_task(&self, worker: Option<usize>, rng: &mut StealRng) -> Option<Task> {
        if self.queued.load(Ordering::Acquire) == 0 {
            return None;
        }
        let grab = |task: Option<Task>| {
            if task.is_some() {
                self.queued.fetch_sub(1, Ordering::Release);
            }
            task
        };
        if let Some(w) = worker {
            if let Some(t) = grab(self.deques[w].lock().expect("deque poisoned").pop_back()) {
                return Some(t);
            }
        }
        if let Some(t) = grab(self.injector.lock().expect("injector poisoned").pop_front()) {
            return Some(t);
        }
        let n = self.deques.len();
        if n == 0 {
            return None;
        }
        let start = (rng.next() % n as u64) as usize;
        for i in 0..n {
            let victim = (start + i) % n;
            if Some(victim) == worker {
                continue;
            }
            if let Some(t) = grab(
                self.deques[victim]
                    .lock()
                    .expect("deque poisoned")
                    .pop_front(),
            ) {
                return Some(t);
            }
        }
        None
    }

    /// Submit `tasks` and run tasks of this pool on the calling thread until `latch` opens.
    /// The caller participates instead of blocking, so a worker can submit nested batches
    /// and a single-threaded pool degenerates to inline execution.
    pub(crate) fn run_batch(self: &Arc<Self>, tasks: Vec<Task>, latch: &Latch) {
        if self.deques.is_empty() {
            // Inline pool: no workers to hand the tasks to.
            for task in tasks {
                task.run();
            }
            debug_assert!(latch.is_open());
            return;
        }
        self.push_batch(tasks);
        self.help_until(latch);
    }

    /// Run tasks of this pool on the calling thread until `latch` opens (stealing from the
    /// workers when the caller's own queue is empty).
    pub(crate) fn help_until(self: &Arc<Self>, latch: &Latch) {
        let worker = worker_index_in(self);
        let mut rng = StealRng(0x9e37_79b9_7f4a_7c15 ^ (worker.unwrap_or(usize::MAX) as u64));
        while !latch.is_open() {
            match self.find_task(worker, &mut rng) {
                Some(task) => task.run(),
                None => latch.wait_brief(),
            }
        }
    }

    /// Ask the workers to exit (used by [`crate::ThreadPool`]'s `Drop`; the global pool is
    /// never shut down).
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let _guard = self.sleeper_lock.lock().expect("sleeper lock poisoned");
        self.wakeup.notify_all();
    }
}

fn worker_loop(pool: Arc<PoolState>, index: usize) {
    CONTEXT.with(|ctx| ctx.borrow_mut().push((Arc::clone(&pool), Some(index))));
    let mut rng = StealRng(0x853c_49e6_748f_ea9b ^ ((index as u64 + 1) << 17));
    loop {
        if let Some(task) = pool.find_task(Some(index), &mut rng) {
            task.run();
            continue;
        }
        if pool.shutdown.load(Ordering::Acquire) {
            break;
        }
        let guard = pool.sleeper_lock.lock().expect("sleeper lock poisoned");
        // Re-check under the lock: a submitter that pushed between our scan and this lock
        // has already notified, and the timeout bounds any remaining race.
        if pool.queued.load(Ordering::Acquire) == 0 && !pool.shutdown.load(Ordering::Acquire) {
            let _ = pool
                .wakeup
                .wait_timeout(guard, Duration::from_millis(10))
                .expect("sleeper lock poisoned");
        }
    }
}

// ----- lifetime-erased batch execution ---------------------------------------------------

/// Erase the lifetime of a job closure.
///
/// # Safety
///
/// The caller must not return (or unwind) before every erased job either ran to completion
/// or was dropped — [`run_batch`](PoolState::run_batch) waiting on the batch latch is what
/// guarantees it for every submission in this crate.
pub(crate) unsafe fn erase_job<'env>(job: Box<dyn FnOnce() + Send + 'env>) -> Task {
    let job: Box<dyn FnOnce() + Send + 'static> = std::mem::transmute::<
        Box<dyn FnOnce() + Send + 'env>,
        Box<dyn FnOnce() + Send + 'static>,
    >(job);
    Task { job }
}

/// Panic plumbing shared by one batch: the first payload wins and is re-thrown on the
/// submitting thread once every sibling job has finished.
pub(crate) struct BatchPanic {
    slot: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl BatchPanic {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(BatchPanic {
            slot: Mutex::new(None),
        })
    }

    pub(crate) fn record(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.slot.lock().expect("panic slot poisoned");
        slot.get_or_insert(payload);
    }

    pub(crate) fn propagate(&self) {
        let payload = self.slot.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}
