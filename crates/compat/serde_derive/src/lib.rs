//! Offline stand-in for the real `serde_derive` crate.
//!
//! This workspace builds in a fully offline environment (no crates.io access), so the
//! `#[derive(Serialize, Deserialize)]` markers scattered across the data types are satisfied by
//! these no-op derives instead of the real code generators.  Nothing in the workspace actually
//! serializes values today; the derives exist so the types are ready for a real `serde` the day
//! the build environment gains network access — swap the `[patch]`-free path dependency for the
//! crates.io release and everything keeps compiling.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts any item, emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts any item, emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
