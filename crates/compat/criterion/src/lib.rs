//! Offline stand-in for the real `criterion` crate.
//!
//! The workspace builds without network access, so this shim provides the subset of the
//! criterion API used by the `p2pgrid-bench` targets: `Criterion`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`, `black_box` and the `criterion_group!` / `criterion_main!`
//! macros.  Measurement is a plain wall-clock loop — warm-up iterations followed by
//! `sample_size` timed samples, each sample sized so a benchmark stays within
//! `measurement_time` — and results (mean / min / max per iteration) are printed to stdout.
//! There is no statistical analysis, outlier rejection or HTML report; swap the path dependency
//! for the crates.io release to get those, with no call-site changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (configuration holder in this shim).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Apply command-line overrides (this shim honours a single positional name filter).
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args
            .into_iter()
            .find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run_one(&id.to_string(), &mut f);
    }

    /// Run `f` as the benchmark `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run_one(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
    }

    fn run_one(&self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(r) => println!(
                "bench: {name:<60} {:>12}/iter (min {}, max {}, {} iters)",
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
                r.iterations,
            ),
            None => println!("bench: {name:<60} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// A named group of benchmarks sharing the parent driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a single benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, &mut f);
    }

    /// Run a parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&name, &mut |b: &mut Bencher| f(b, input));
    }

    /// Close the group (a no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier of a parameterised benchmark, rendered as `function/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

struct Report {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iterations: u64,
}

/// Handle passed to benchmark closures; time a routine with [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Measure `routine`: warm up, pick an iteration count per sample that fits the configured
    /// measurement time, then record `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once) and estimate the cost
        // of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so that sample_size samples fit the measurement budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total_iters = 0u64;
        let mut sum_ns = 0.0f64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            sum_ns += ns;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            total_iters += iters_per_sample;
        }
        self.report = Some(Report {
            mean_ns: sum_ns / self.sample_size as f64,
            min_ns,
            max_ns,
            iterations: total_iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Define a benchmark group: either `criterion_group!(name, target, ...)` or the long form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_a_report() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_renders_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("DSMF").to_string(), "DSMF");
    }
}
