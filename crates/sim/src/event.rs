//! Deterministic event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that orders events by timestamp and
//! breaks ties by insertion sequence number, so that two events scheduled for the same instant
//! are always delivered in the order they were scheduled.  This property is what makes whole
//! simulation runs reproducible from a single seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with its delivery time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Monotonically increasing sequence number assigned at scheduling time.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of timestamped events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Remove all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    proptest! {
        /// Events always come out in non-decreasing time order, and events with equal
        /// timestamps come out in scheduling order.
        #[test]
        fn prop_pop_order_is_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::ZERO + SimDuration::from_millis(t), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut last_seq_at_time: Option<usize> = None;
            while let Some(ev) = q.pop() {
                prop_assert!(ev.time >= last_time);
                if ev.time == last_time {
                    if let Some(prev) = last_seq_at_time {
                        prop_assert!(ev.event > prev);
                    }
                } else {
                    last_time = ev.time;
                }
                last_seq_at_time = Some(ev.event);
            }
        }
    }
}
