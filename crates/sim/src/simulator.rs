//! The simulation driver.
//!
//! [`Simulator`] owns the virtual clock and the event queue and repeatedly delivers the
//! earliest pending event to a user-supplied [`EventHandler`].  The handler schedules follow-up
//! events through the [`SimControl`] handle it receives with every event.  The driver supports
//! a hard time horizon and an event budget, both of which the paper's experiments use
//! (36 simulated hours).

use crate::event::{EventQueue, ScheduledEvent};
use crate::time::{SimDuration, SimTime};

/// Handle given to event handlers for scheduling new events and inspecting the clock.
#[derive(Debug)]
pub struct SimControl<E> {
    now: SimTime,
    queue: EventQueue<E>,
    stop_requested: bool,
}

impl<E> SimControl<E> {
    fn new() -> Self {
        SimControl {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            stop_requested: false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedule `event` at an absolute virtual time.
    ///
    /// Events scheduled in the past are delivered "now" (at the current clock value) rather
    /// than rewinding the clock; this mirrors PeerSim's behaviour and keeps time monotonic.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let t = time.max(self.now);
        self.queue.schedule(t, event);
    }

    /// Ask the driver to stop after the current event has been handled.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Total number of events scheduled so far (including already delivered ones).
    pub fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total()
    }
}

/// Trait implemented by simulation models.
pub trait EventHandler<E> {
    /// Handle a single event.  New events are scheduled through `ctl`.
    fn handle(&mut self, ctl: &mut SimControl<E>, event: E);
}

impl<E, F> EventHandler<E> for F
where
    F: FnMut(&mut SimControl<E>, E),
{
    fn handle(&mut self, ctl: &mut SimControl<E>, event: E) {
        self(ctl, event)
    }
}

/// Why a simulation run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    QueueEmpty,
    /// The configured time horizon was reached.
    HorizonReached,
    /// The configured maximum number of delivered events was reached.
    EventBudgetExhausted,
    /// The handler requested a stop.
    StoppedByHandler,
}

/// Summary returned by [`Simulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Virtual time when the run ended.
    pub end_time: SimTime,
    /// Number of events delivered to the handler.
    pub events_delivered: u64,
    /// Why the run ended.
    pub reason: StopReason,
}

/// The discrete-event simulation driver.
#[derive(Debug)]
pub struct Simulator<E> {
    ctl: SimControl<E>,
    horizon: Option<SimTime>,
    max_events: Option<u64>,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Create a simulator with no horizon and no event budget.
    pub fn new() -> Self {
        Simulator {
            ctl: SimControl::new(),
            horizon: None,
            max_events: None,
        }
    }

    /// Stop delivering events whose timestamp is strictly greater than `horizon`.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Stop after delivering at most `max_events` events (a runaway-model backstop).
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctl.now()
    }

    /// Schedule an initial event before the run starts.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        self.ctl.schedule_at(time, event);
    }

    /// Schedule an initial event `delay` after time zero.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.ctl.schedule_in(delay, event);
    }

    /// The timestamp of the next event [`Simulator::step`] would deliver, or `None` when the
    /// queue is drained, the next event lies beyond the horizon, or a stop was requested.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.ctl.stop_requested {
            return None;
        }
        let t = self.ctl.queue.peek_time()?;
        match self.horizon {
            Some(h) if t > h => None,
            _ => Some(t),
        }
    }

    /// Deliver exactly one event to `handler` and return its timestamp, or `None` when nothing
    /// remains to deliver (queue drained, horizon passed, or a stop was requested).
    ///
    /// This is the incremental counterpart of [`Simulator::run`]: repeatedly calling `step`
    /// until it returns `None` delivers the same events in the same order.  The event *budget*
    /// (`with_max_events`) is a [`Simulator::run`] backstop and is not consulted here — the
    /// caller of `step` already controls how many events are delivered.
    pub fn step<H: EventHandler<E>>(&mut self, handler: &mut H) -> Option<SimTime> {
        self.peek_time()?;
        let ev = self.ctl.queue.pop().expect("peek_time reported an event");
        debug_assert!(ev.time >= self.ctl.now, "virtual time must be monotonic");
        self.ctl.now = ev.time;
        handler.handle(&mut self.ctl, ev.event);
        Some(ev.time)
    }

    /// Run until the queue drains, the horizon is reached, the event budget is exhausted or the
    /// handler calls [`SimControl::stop`].
    pub fn run<H: EventHandler<E>>(&mut self, handler: &mut H) -> RunSummary {
        let mut delivered = 0u64;
        loop {
            if self.ctl.stop_requested {
                return RunSummary {
                    end_time: self.ctl.now,
                    events_delivered: delivered,
                    reason: StopReason::StoppedByHandler,
                };
            }
            if let Some(max) = self.max_events {
                if delivered >= max {
                    return RunSummary {
                        end_time: self.ctl.now,
                        events_delivered: delivered,
                        reason: StopReason::EventBudgetExhausted,
                    };
                }
            }
            let next: Option<ScheduledEvent<E>> = match self.ctl.queue.peek_time() {
                None => None,
                Some(t) => {
                    if let Some(h) = self.horizon {
                        if t > h {
                            return RunSummary {
                                end_time: h,
                                events_delivered: delivered,
                                reason: StopReason::HorizonReached,
                            };
                        }
                    }
                    self.ctl.queue.pop()
                }
            };
            match next {
                None => {
                    return RunSummary {
                        end_time: self.ctl.now,
                        events_delivered: delivered,
                        reason: StopReason::QueueEmpty,
                    }
                }
                Some(ev) => {
                    debug_assert!(ev.time >= self.ctl.now, "virtual time must be monotonic");
                    self.ctl.now = ev.time;
                    handler.handle(&mut self.ctl, ev.event);
                    delivered += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Tick {
        Periodic(u32),
        Oneshot,
    }

    #[test]
    fn delivers_events_in_time_order_and_advances_clock() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), 'b');
        sim.schedule_at(SimTime::from_secs(1), 'a');
        let mut seen = Vec::new();
        let mut handler = |ctl: &mut SimControl<char>, ev: char| {
            seen.push((ctl.now().as_millis(), ev));
        };
        let summary = sim.run(&mut handler);
        assert_eq!(seen, vec![(1000, 'a'), (5000, 'b')]);
        assert_eq!(summary.reason, StopReason::QueueEmpty);
        assert_eq!(summary.events_delivered, 2);
        assert_eq!(summary.end_time, SimTime::from_secs(5));
    }

    #[test]
    fn periodic_events_respect_horizon() {
        let mut sim = Simulator::new().with_horizon(SimTime::from_secs(10));
        sim.schedule_at(SimTime::ZERO, Tick::Periodic(0));
        let mut count = 0u32;
        let mut handler = |ctl: &mut SimControl<Tick>, ev: Tick| {
            if let Tick::Periodic(k) = ev {
                count = k + 1;
                ctl.schedule_in(SimDuration::from_secs(1), Tick::Periodic(k + 1));
            }
        };
        let summary = sim.run(&mut handler);
        assert_eq!(summary.reason, StopReason::HorizonReached);
        // Ticks at t = 0..=10 seconds inclusive: 11 deliveries.
        assert_eq!(summary.events_delivered, 11);
        assert_eq!(summary.end_time, SimTime::from_secs(10));
    }

    #[test]
    fn handler_can_stop_the_run() {
        let mut sim = Simulator::new();
        for i in 0..100 {
            sim.schedule_at(SimTime::from_secs(i), Tick::Periodic(i as u32));
        }
        let mut delivered = 0;
        let mut handler = |ctl: &mut SimControl<Tick>, _ev: Tick| {
            delivered += 1;
            if delivered == 10 {
                ctl.stop();
            }
        };
        let summary = sim.run(&mut handler);
        assert_eq!(summary.reason, StopReason::StoppedByHandler);
        assert_eq!(summary.events_delivered, 10);
    }

    #[test]
    fn event_budget_is_enforced() {
        let mut sim = Simulator::new().with_max_events(5);
        sim.schedule_at(SimTime::ZERO, Tick::Oneshot);
        let mut handler = |ctl: &mut SimControl<Tick>, _ev: Tick| {
            // Self-perpetuating event storm.
            ctl.schedule_in(SimDuration::from_millis(1), Tick::Oneshot);
        };
        let summary = sim.run(&mut handler);
        assert_eq!(summary.reason, StopReason::EventBudgetExhausted);
        assert_eq!(summary.events_delivered, 5);
    }

    #[test]
    fn scheduling_in_the_past_does_not_rewind_the_clock() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(10), Tick::Oneshot);
        let mut times = Vec::new();
        let mut first = true;
        let mut handler = |ctl: &mut SimControl<Tick>, _ev: Tick| {
            times.push(ctl.now());
            if first {
                first = false;
                // Attempt to schedule before "now"; must be clamped to now.
                ctl.schedule_at(SimTime::from_secs(1), Tick::Oneshot);
            }
        };
        sim.run(&mut handler);
        assert_eq!(times, vec![SimTime::from_secs(10), SimTime::from_secs(10)]);
    }

    #[test]
    fn step_delivers_the_same_schedule_as_run() {
        let build = || {
            let mut sim = Simulator::new().with_horizon(SimTime::from_secs(10));
            sim.schedule_at(SimTime::ZERO, Tick::Periodic(0));
            sim
        };
        fn handler_into(
            seen: &mut Vec<(u64, u32)>,
        ) -> impl FnMut(&mut SimControl<Tick>, Tick) + '_ {
            move |ctl, ev| {
                if let Tick::Periodic(k) = ev {
                    seen.push((ctl.now().as_millis(), k));
                    ctl.schedule_in(SimDuration::from_secs(1), Tick::Periodic(k + 1));
                }
            }
        }
        let mut run_seen = Vec::new();
        build().run(&mut handler_into(&mut run_seen));

        let mut step_seen = Vec::new();
        let mut sim = build();
        {
            let mut handler = handler_into(&mut step_seen);
            assert_eq!(sim.peek_time(), Some(SimTime::ZERO));
            let mut times = Vec::new();
            while let Some(t) = sim.step(&mut handler) {
                times.push(t);
            }
            // Eleven ticks at t = 0..=10 s; the twelfth lies beyond the horizon.
            assert_eq!(times.len(), 11);
            assert!(sim.peek_time().is_none());
            assert!(sim.step(&mut handler).is_none());
        }
        assert_eq!(run_seen, step_seen);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn empty_run_terminates_immediately() {
        let mut sim: Simulator<()> = Simulator::new();
        let mut handler = |_: &mut SimControl<()>, _: ()| {};
        let summary = sim.run(&mut handler);
        assert_eq!(summary.reason, StopReason::QueueEmpty);
        assert_eq!(summary.events_delivered, 0);
        assert_eq!(summary.end_time, SimTime::ZERO);
    }
}
