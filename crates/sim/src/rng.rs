//! Seeded, splittable random-number utilities.
//!
//! Every stochastic component of the reproduction (topology generation, workflow generation,
//! gossip peer sampling, churn, ...) draws from its own [`SimRng`], derived from a single
//! experiment seed plus a component label.  Deriving independent streams — rather than sharing
//! one RNG — means that changing the number of random draws in one component does not perturb
//! any other component, which keeps regression tests meaningful.
//!
//! The generator is an in-tree ChaCha8 stream cipher RNG (the build environment is offline, so
//! no `rand` / `rand_chacha` dependency): fast, high quality, portable and reproducible across
//! platforms.  The 64-bit ChaCha nonce doubles as the *stream number*, which is what makes the
//! cheap [`SimRng::derive`] label-splitting possible.

/// The ChaCha8 core: 512-bit state, 8 rounds, 64-bit block counter + 64-bit stream nonce.
#[derive(Debug, Clone)]
struct ChaCha8 {
    key: [u32; 8],
    stream: u64,
    counter: u64,
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 means "refill before use".
    idx: usize,
}

/// `"expand 32-byte k"` in little-endian words.
const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8 {
    fn new(key: [u32; 8], stream: u64) -> Self {
        ChaCha8 {
            key,
            stream,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..4 {
            // One double round: a column round followed by a diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// Expand a 64-bit seed into key material (splitmix64, the conventional seed expander).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic random-number generator for simulation components.
///
/// Internally a ChaCha8 stream cipher RNG: fast, high quality, portable and reproducible
/// across platforms.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8,
}

impl SimRng {
    /// Create a generator from a raw 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut s);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        SimRng {
            inner: ChaCha8::new(key, 0),
        }
    }

    /// Derive an independent generator for a named sub-component.
    ///
    /// The derivation hashes the label into the ChaCha stream number, so `derive("gossip")` and
    /// `derive("churn")` from the same parent never overlap.  The child depends only on the
    /// parent's key and the label — never on how many values the parent has already produced.
    pub fn derive(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng {
            inner: ChaCha8::new(self.inner.key, h),
        }
    }

    /// Derive an independent generator for an indexed sub-component (e.g. per node).
    pub fn derive_indexed(&self, label: &str, index: u64) -> SimRng {
        self.derive(&format!("{label}#{index}"))
    }

    /// Sample a value uniformly from `range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (lo, hi, inclusive) = range.bounds();
        T::sample_in(self, lo, hi, inclusive)
    }

    /// Sample a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample a uniform `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.gen_f64() < p
    }

    /// Choose a uniformly random element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.uniform_u64(slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }

    /// Choose `amount` distinct elements of `slice` uniformly at random (fewer if the slice is
    /// shorter), preserving no particular order.
    pub fn choose_multiple<'a, T>(&mut self, slice: &'a [T], amount: usize) -> Vec<&'a T> {
        let amount = amount.min(slice.len());
        // Partial Fisher–Yates over an index vector: the first `amount` positions end up
        // holding a uniform sample without replacement.
        let mut idx: Vec<usize> = (0..slice.len()).collect();
        for i in 0..amount {
            let j = i + self.uniform_u64((slice.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx[..amount].iter().map(|&i| &slice[i]).collect()
    }

    /// Shuffle a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniform integer in `[0, span)` (`span == 0` means the full 64-bit range), using Lemire's
    /// nearly-divisionless rejection method so every value is exactly equally likely.
    fn uniform_u64(&mut self, span: u64) -> u64 {
        if span == 0 {
            return self.inner.next_u64();
        }
        loop {
            let x = self.inner.next_u64();
            let m = (x as u128) * (span as u128);
            let low = m as u64;
            if low < span {
                let threshold = span.wrapping_neg() % span;
                if low < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }
}

/// Types that [`SimRng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    ///
    /// For integers the inclusive upper bound is honoured exactly.  For floats the
    /// distinction is measure-zero, so both range forms sample the continuous `[lo, hi)`
    /// (a degenerate `lo..=lo` returns `lo`).
    fn sample_in(rng: &mut SimRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range types accepted by [`SimRng::gen_range`].
pub trait SampleRange<T> {
    /// Decompose into `(low, high, inclusive)`.
    fn bounds(self) -> (T, T, bool);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        let (lo, hi) = self.into_inner();
        (lo, hi, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(rng: &mut SimRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range called with an empty range");
                // span <= 2^64 for every supported width; 2^64 truncates to 0, which
                // uniform_u64 treats as "full range".
                let offset = rng.uniform_u64(span as u64);
                ((lo as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(rng: &mut SimRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range called with an empty range"
                );
                let v = lo + (hi - lo) * (rng.gen_f64() as $t);
                // `lo + (hi-lo)*f` can round up to exactly `hi` (and the f64→f32 narrowing can
                // round a draw up to 1.0), which would leak the excluded upper bound of the
                // half-open contract; clamp to the largest value below `hi`.
                if v >= hi && hi > lo {
                    hi.next_down()
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.gen_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_streams_are_independent_and_reproducible() {
        let root = SimRng::seed_from_u64(7);
        let mut g1 = root.derive("gossip");
        let mut g2 = root.derive("gossip");
        let mut c1 = root.derive("churn");
        let a: Vec<u64> = (0..16).map(|_| g1.gen_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| g2.gen_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| c1.gen_u64()).collect();
        assert_eq!(a, b, "same label must reproduce the same stream");
        assert_ne!(a, c, "different labels must give different streams");
    }

    #[test]
    fn derive_is_position_independent() {
        // Deriving after consuming values must give the same child stream as deriving first:
        // the child depends only on the key and the label, never on the parent's position.
        let root = SimRng::seed_from_u64(7);
        let mut before = root.derive("x");
        let mut consumed = root.clone();
        let _ = consumed.gen_u64();
        let mut after = consumed.derive("x");
        assert_eq!(before.gen_u64(), after.gen_u64());
    }

    #[test]
    fn derive_indexed_distinguishes_indices() {
        let root = SimRng::seed_from_u64(7);
        let mut n0 = root.derive_indexed("node", 0);
        let mut n1 = root.derive_indexed("node", 1);
        assert_ne!(n0.gen_u64(), n1.gen_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(100..=10_000);
            assert!((100..=10_000).contains(&x));
            let f: f64 = rng.gen_range(0.1..10.0);
            assert!((0.1..10.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::seed_from_u64(11);
        let items = [1, 2, 3, 4, 5];
        assert!(items.contains(rng.choose(&items).unwrap()));
        assert!(rng.choose::<u32>(&[]).is_none());
        let picked = rng.choose_multiple(&items, 3);
        assert_eq!(picked.len(), 3);
        let picked_all = rng.choose_multiple(&items, 50);
        assert_eq!(picked_all.len(), items.len());
        let mut v: Vec<u32> = (0..100).collect();
        let original = v.clone();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must be a permutation");
    }

    #[test]
    fn choose_multiple_is_without_replacement() {
        let mut rng = SimRng::seed_from_u64(13);
        let items: Vec<u32> = (0..50).collect();
        for _ in 0..20 {
            let picked = rng.choose_multiple(&items, 10);
            let unique: std::collections::HashSet<_> = picked.iter().collect();
            assert_eq!(unique.len(), 10, "sampled element twice");
        }
    }

    #[test]
    fn uniform_distribution_is_roughly_flat() {
        let mut rng = SimRng::seed_from_u64(17);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &count in &buckets {
            assert!(
                (800..=1200).contains(&count),
                "bucket count {count} is far from the expected 1000"
            );
        }
    }
}
