//! Seeded, splittable random-number utilities.
//!
//! Every stochastic component of the reproduction (topology generation, workflow generation,
//! gossip peer sampling, churn, ...) draws from its own [`SimRng`], derived from a single
//! experiment seed plus a component label.  Deriving independent streams — rather than sharing
//! one RNG — means that changing the number of random draws in one component does not perturb
//! any other component, which keeps regression tests meaningful.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A deterministic random-number generator for simulation components.
///
/// Internally a ChaCha8 stream cipher RNG: fast, high quality, portable and reproducible
/// across platforms (unlike `SmallRng`, whose algorithm may change between `rand` releases).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Create a generator from a raw 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent generator for a named sub-component.
    ///
    /// The derivation hashes the label into the stream number, so `derive("gossip")` and
    /// `derive("churn")` from the same parent never overlap.
    pub fn derive(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut child = self.inner.clone();
        child.set_stream(h);
        child.set_word_pos(0);
        SimRng { inner: child }
    }

    /// Derive an independent generator for an indexed sub-component (e.g. per node).
    pub fn derive_indexed(&self, label: &str, index: u64) -> SimRng {
        self.derive(&format!("{label}#{index}"))
    }

    /// Sample a value uniformly from `range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Sample a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Sample a uniform `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// Choose a uniformly random element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        slice.choose(&mut self.inner)
    }

    /// Choose `amount` distinct elements of `slice` uniformly at random (fewer if the slice is
    /// shorter), preserving no particular order.
    pub fn choose_multiple<'a, T>(&mut self, slice: &'a [T], amount: usize) -> Vec<&'a T> {
        slice.choose_multiple(&mut self.inner, amount).collect()
    }

    /// Shuffle a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        slice.shuffle(&mut self.inner);
    }

    /// Access the underlying `rand::Rng` implementation (for distributions not wrapped here).
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.gen_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_streams_are_independent_and_reproducible() {
        let root = SimRng::seed_from_u64(7);
        let mut g1 = root.derive("gossip");
        let mut g2 = root.derive("gossip");
        let mut c1 = root.derive("churn");
        let a: Vec<u64> = (0..16).map(|_| g1.gen_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| g2.gen_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| c1.gen_u64()).collect();
        assert_eq!(a, b, "same label must reproduce the same stream");
        assert_ne!(a, c, "different labels must give different streams");
    }

    #[test]
    fn derive_indexed_distinguishes_indices() {
        let root = SimRng::seed_from_u64(7);
        let mut n0 = root.derive_indexed("node", 0);
        let mut n1 = root.derive_indexed("node", 1);
        assert_ne!(n0.gen_u64(), n1.gen_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(100..=10_000);
            assert!((100..=10_000).contains(&x));
            let f: f64 = rng.gen_range(0.1..10.0);
            assert!((0.1..10.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::seed_from_u64(11);
        let items = [1, 2, 3, 4, 5];
        assert!(items.contains(rng.choose(&items).unwrap()));
        assert!(rng.choose::<u32>(&[]).is_none());
        let picked = rng.choose_multiple(&items, 3);
        assert_eq!(picked.len(), 3);
        let picked_all = rng.choose_multiple(&items, 50);
        assert_eq!(picked_all.len(), items.len());
        let mut v: Vec<u32> = (0..100).collect();
        let original = v.clone();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must be a permutation");
    }
}
