//! # p2pgrid-sim — deterministic simulation substrate
//!
//! The ICPP 2010 paper evaluates its scheduler inside the PeerSim simulator.  PeerSim offers
//! two execution models that the paper mixes freely:
//!
//! * a **cycle-driven** model, in which protocols (gossip, periodic scheduling) are invoked on
//!   every node at a fixed period, and
//! * an **event-driven** model, in which asynchronous events (task completions, data-transfer
//!   completions, node churn) are processed in virtual-time order.
//!
//! This crate is the Rust substitute for that substrate.  It provides
//!
//! * [`SimTime`] / [`SimDuration`] — integer virtual time with millisecond resolution, so that
//!   event ordering is exact and runs are bit-for-bit reproducible;
//! * [`EventQueue`] — a deterministic priority queue of timestamped events with stable FIFO
//!   ordering among simultaneous events;
//! * [`Simulator`] — a driver that pops events and hands them to an [`EventHandler`], with
//!   support for stop conditions and periodic *cycle* events;
//! * [`rng`] — seeded, splittable random-number utilities so every component draws from an
//!   independent deterministic stream.
//!
//! The crate is intentionally generic: the event type is a type parameter, so the scheduling
//! core (and the tests of every substrate crate) can define their own event vocabulary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod rng;
pub mod simulator;
pub mod time;

pub use event::{EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use simulator::{EventHandler, RunSummary, SimControl, Simulator, StopReason};
pub use time::{SimDuration, SimTime};
