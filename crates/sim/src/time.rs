//! Virtual time.
//!
//! All simulation timestamps are integer milliseconds.  The paper's quantities (task execution
//! times of seconds to hours, gossip cycles of five minutes, a 36-hour horizon) are comfortably
//! representable, and integer arithmetic keeps event ordering exact so that simulations are
//! reproducible across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in milliseconds since the start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, measured in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Construct from fractional seconds, rounding to the nearest millisecond.
    ///
    /// Negative and non-finite inputs saturate to zero; this mirrors how the paper's estimators
    /// clamp negative queuing delays to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime(0);
        }
        SimTime((secs * 1000.0).round() as u64)
    }

    /// Raw milliseconds since the origin.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Time since the origin in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Time since the origin in fractional hours (the unit of the paper's x-axes).
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Saturating subtraction between two instants.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Duration since `earlier`, panicking if `earlier` is in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            self.0 >= earlier.0,
            "duration_since called with a later instant ({earlier:?} > {self:?})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Checked addition of a duration, returning `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600 * 1000)
    }

    /// Construct from fractional seconds, rounding to the nearest millisecond and saturating
    /// negative or non-finite values to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer factor.
    pub const fn mul_u64(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3000);
        assert_eq!(SimDuration::from_mins(15).as_millis(), 900_000);
        assert_eq!(SimDuration::from_hours(36).as_secs_f64(), 129_600.0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn negative_and_nan_durations_saturate_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_is_saturating() {
        let t = SimTime::from_secs(10);
        assert_eq!((t - SimDuration::from_secs(20)), SimTime::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_secs(2) - SimDuration::from_secs(5),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_since_and_ordering() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(8);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(3));
        assert_eq!(b - a, SimDuration::from_secs(3));
        assert_eq!(a - b, SimDuration::ZERO);
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_future_reference() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(8);
        let _ = a.duration_since(b);
    }

    #[test]
    fn display_formats_in_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    fn hours_conversion_matches_paper_horizon() {
        let horizon = SimDuration::from_hours(36);
        assert!((horizon.as_hours_f64() - 36.0).abs() < 1e-12);
        let t = SimTime::ZERO + horizon;
        assert!((t.as_hours_f64() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_ops() {
        assert_eq!(SimDuration::from_secs(3) * 4, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(12) / 4, SimDuration::from_secs(3));
        assert_eq!(
            SimDuration::from_secs(3).mul_u64(2),
            SimDuration::from_secs(6)
        );
    }
}
