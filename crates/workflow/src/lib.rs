//! # p2pgrid-workflow — the workflow (DAG) model
//!
//! A scientific workflow is a directed acyclic graph whose vertices are tasks (with a
//! computational load in million instructions and a program-image size in megabits) and whose
//! edges are data dependencies (with a transfer size in megabits).  This crate implements the
//! workflow model of Section II of the paper:
//!
//! * [`Workflow`] / [`WorkflowBuilder`] — construction, cycle detection, and the paper's
//!   normalisation rule that gives every workflow a unique zero-cost entry task and exit task;
//! * [`analysis`] — expected execution/transmission times under system-wide averages, the
//!   upward rank (the paper's *rest path makespan*, RPM, estimated with averages), the critical
//!   path, and the expected finish time `eft(f)` of Eq. (1);
//! * [`progress`] — runtime bookkeeping of which tasks have finished and which are currently
//!   *schedule points* (ready to be dispatched), the just-in-time counterpart of the static DAG;
//! * [`generator`] — the random workflow generator matching Table I (2–30 tasks, fan-out 1–5,
//!   loads of 100–10 000 MI, data of 100–10 000 Mb) plus canonical shapes used in examples and
//!   tests (including Montage-, CyberShake- and Epigenomics-like scientific workflows);
//! * [`spec`] — the serializable on-disk workload format (`p2pgrid-workflow/v1` /
//!   `p2pgrid-workload/v1`): [`WorkflowSpec`] / [`WorkloadSpec`] import/export with schema
//!   errors that name the offending JSON field, validated through [`WorkflowBuilder`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod dag;
pub mod generator;
pub mod progress;
pub mod spec;

pub use analysis::{ExpectedCosts, WorkflowAnalysis};
pub use dag::{Task, TaskId, Workflow, WorkflowBuilder, WorkflowError};
pub use generator::{shapes, WorkflowGenerator, WorkflowGeneratorConfig};
pub use progress::ProgressTracker;
pub use spec::{
    HomePolicy, ResolvedEntry, SpecError, TaskSpec, WorkflowSpec, WorkloadEntry, WorkloadSpec,
};
