//! Random workflow generation (Table I) and canonical workflow shapes.

use crate::dag::{Task, TaskId, Workflow, WorkflowBuilder, WorkflowError};
use p2pgrid_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::ops::RangeInclusive;

/// Parameter ranges for the random workflow generator, defaulting to Table I of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowGeneratorConfig {
    /// Number of (real) tasks per workflow.  Table I: 2–30.
    pub tasks: RangeInclusive<u32>,
    /// Fan-out degree of each task.  §IV.A: one to five.
    pub fanout: RangeInclusive<u32>,
    /// Computational load per task in MI.  Table I: 100–10 000.
    pub load_mi: RangeInclusive<f64>,
    /// Program image size per task in Mb.  Table I: 10–100.
    pub image_size_mb: RangeInclusive<f64>,
    /// Dependent data size per edge in Mb.  Table I: 100–10 000.
    pub data_mb: RangeInclusive<f64>,
}

impl Default for WorkflowGeneratorConfig {
    fn default() -> Self {
        WorkflowGeneratorConfig {
            tasks: 2..=30,
            fanout: 1..=5,
            load_mi: 100.0..=10_000.0,
            image_size_mb: 10.0..=100.0,
            data_mb: 100.0..=10_000.0,
        }
    }
}

impl WorkflowGeneratorConfig {
    /// The configuration used by the CCR experiments (Fig. 9/10): override the load and data
    /// ranges while keeping everything else at the Table I defaults.
    pub fn with_load_and_data(load_mi: RangeInclusive<f64>, data_mb: RangeInclusive<f64>) -> Self {
        WorkflowGeneratorConfig {
            load_mi,
            data_mb,
            ..WorkflowGeneratorConfig::default()
        }
    }

    /// Check every parameter range for emptiness/reversal and sign, returning a typed error
    /// instead of panicking (callers in `p2pgrid-core` surface this through `ConfigError`).
    pub fn validate(&self) -> Result<(), WorkflowError> {
        let invalid = |msg: String| Err(WorkflowError::InvalidParameter(msg));
        if *self.tasks.start() < 1 {
            return invalid("workflow task count range must start at 1 or more".into());
        }
        if self.tasks.is_empty() {
            return invalid(format!("empty/reversed task count range {:?}", self.tasks));
        }
        if *self.fanout.start() < 1 {
            return invalid("fan-out range must start at 1 or more".into());
        }
        if self.fanout.is_empty() {
            return invalid(format!("empty/reversed fan-out range {:?}", self.fanout));
        }
        let float_range = |name: &str, r: &RangeInclusive<f64>, min_start: f64| {
            if !r.start().is_finite() || !r.end().is_finite() {
                return invalid(format!("{name} range must be finite, got {r:?}"));
            }
            if *r.start() < min_start {
                return invalid(format!(
                    "{name} range must start at {min_start} or more, got {r:?}"
                ));
            }
            if r.start() > r.end() {
                return invalid(format!("empty/reversed {name} range {r:?}"));
            }
            Ok(())
        };
        float_range("load_mi", &self.load_mi, f64::MIN_POSITIVE)?;
        float_range("image_size_mb", &self.image_size_mb, 0.0)?;
        float_range("data_mb", &self.data_mb, 0.0)?;
        Ok(())
    }
}

/// Random workflow generator.
///
/// Tasks are generated in a fixed order `0..n` and every dependency edge points from a lower to
/// a higher index, which guarantees acyclicity by construction.  Each task is given a fan-out
/// within the configured range (clipped by the number of remaining downstream tasks), and every
/// non-first task that ends up without a precedent is connected to a random earlier task so that
/// the DAG is weakly connected before normalisation.
#[derive(Debug, Clone)]
pub struct WorkflowGenerator {
    config: WorkflowGeneratorConfig,
}

impl WorkflowGenerator {
    /// Create a generator for the given configuration.
    ///
    /// Panics on an invalid configuration; call [`WorkflowGeneratorConfig::validate`] first to
    /// get a typed error instead (as `Scenario::build` does).
    pub fn new(config: WorkflowGeneratorConfig) -> Self {
        config
            .validate()
            .expect("invalid workflow generator configuration");
        WorkflowGenerator { config }
    }

    /// The generator configuration.
    pub fn config(&self) -> &WorkflowGeneratorConfig {
        &self.config
    }

    /// Generate one workflow.
    pub fn generate(&self, rng: &mut SimRng) -> Workflow {
        let cfg = &self.config;
        let n = rng.gen_range(cfg.tasks.clone()) as usize;
        let mut builder = WorkflowBuilder::new();
        let ids: Vec<TaskId> = (0..n)
            .map(|_| {
                builder.add_task(Task::new(
                    rng.gen_range(cfg.load_mi.clone()),
                    rng.gen_range(cfg.image_size_mb.clone()),
                ))
            })
            .collect();

        let mut has_pred = vec![false; n];
        let mut edges: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        for i in 0..n.saturating_sub(1) {
            let remaining = n - i - 1;
            let fanout = (rng.gen_range(cfg.fanout.clone()) as usize).min(remaining);
            // Choose `fanout` distinct successors among the downstream tasks.
            let downstream: Vec<usize> = ((i + 1)..n).collect();
            for &j in rng.choose_multiple(&downstream, fanout) {
                if edges.insert((i, j)) {
                    builder.add_dependency(ids[i], ids[j], rng.gen_range(cfg.data_mb.clone()));
                    has_pred[j] = true;
                }
            }
        }
        // Connect orphan tasks (other than task 0) to a random earlier task.
        for j in 1..n {
            if !has_pred[j] {
                let i = rng.gen_range(0..j);
                if edges.insert((i, j)) {
                    builder.add_dependency(ids[i], ids[j], rng.gen_range(cfg.data_mb.clone()));
                }
            }
        }
        builder
            .build()
            .expect("generated workflows are acyclic by construction")
    }

    /// Generate a batch of `count` workflows.
    pub fn generate_batch(&self, count: usize, rng: &mut SimRng) -> Vec<Workflow> {
        (0..count).map(|_| self.generate(rng)).collect()
    }
}

/// Canonical, hand-shaped workflows used by examples, tests and the quickstart.
pub mod shapes {
    use super::*;

    /// A linear pipeline of `n` stages.
    pub fn chain(n: usize, load_mi: f64, data_mb: f64) -> Workflow {
        assert!(n >= 1);
        let mut b = WorkflowBuilder::new();
        let ids: Vec<TaskId> = (0..n)
            .map(|i| b.add_task(Task::named(format!("stage{i}"), load_mi, 10.0)))
            .collect();
        for w in ids.windows(2) {
            b.add_dependency(w[0], w[1], data_mb);
        }
        b.build().unwrap()
    }

    /// A fork-join: one source fans out to `width` parallel workers that all join into a sink.
    pub fn fork_join(width: usize, load_mi: f64, data_mb: f64) -> Workflow {
        assert!(width >= 1);
        let mut b = WorkflowBuilder::new();
        let src = b.add_task(Task::named("split", load_mi / 10.0, 10.0));
        let sink = b.add_task(Task::named("merge", load_mi / 10.0, 10.0));
        for i in 0..width {
            let w = b.add_task(Task::named(format!("worker{i}"), load_mi, 10.0));
            b.add_dependency(src, w, data_mb);
            b.add_dependency(w, sink, data_mb);
        }
        b.build().unwrap()
    }

    /// A two-level "diamond": entry, two middle tasks of different weight, exit.
    pub fn diamond(light_mi: f64, heavy_mi: f64, data_mb: f64) -> Workflow {
        let mut b = WorkflowBuilder::new();
        let entry = b.add_task(Task::named("entry", light_mi / 2.0, 10.0));
        let light = b.add_task(Task::named("light", light_mi, 10.0));
        let heavy = b.add_task(Task::named("heavy", heavy_mi, 10.0));
        let exit = b.add_task(Task::named("exit", light_mi / 2.0, 10.0));
        b.add_dependency(entry, light, data_mb);
        b.add_dependency(entry, heavy, data_mb);
        b.add_dependency(light, exit, data_mb);
        b.add_dependency(heavy, exit, data_mb);
        b.build().unwrap()
    }

    /// A small Montage-like astronomy workflow: re-projection fan-out, pairwise background
    /// fitting, then a final mosaic — the classic motivating workload for grid workflow papers.
    pub fn montage_like(width: usize, load_mi: f64, data_mb: f64) -> Workflow {
        assert!(width >= 2);
        let mut b = WorkflowBuilder::new();
        let stage_in = b.add_task(Task::named("stage-in", load_mi / 10.0, 20.0));
        let projections: Vec<TaskId> = (0..width)
            .map(|i| b.add_task(Task::named(format!("mProject{i}"), load_mi, 30.0)))
            .collect();
        for &p in &projections {
            b.add_dependency(stage_in, p, data_mb / 2.0);
        }
        let diffs: Vec<TaskId> = (0..width - 1)
            .map(|i| b.add_task(Task::named(format!("mDiffFit{i}"), load_mi / 2.0, 20.0)))
            .collect();
        for (i, &d) in diffs.iter().enumerate() {
            b.add_dependency(projections[i], d, data_mb);
            b.add_dependency(projections[i + 1], d, data_mb);
        }
        let model = b.add_task(Task::named("mBgModel", load_mi * 2.0, 20.0));
        for &d in &diffs {
            b.add_dependency(d, model, data_mb / 4.0);
        }
        let mosaic = b.add_task(Task::named("mAdd", load_mi * 3.0, 50.0));
        for &p in &projections {
            b.add_dependency(p, mosaic, data_mb);
        }
        b.add_dependency(model, mosaic, data_mb / 4.0);
        b.build().unwrap()
    }

    /// A CyberShake-like seismic-hazard workflow: per-site SGT extraction fans out into
    /// `synthesis_per_site` seismogram-synthesis tasks each, every synthesis feeds a cheap
    /// peak-value calculation, and everything merges into one zip/aggregation sink.  CyberShake
    /// is the canonical *data-heavy, shallow* fan-out/fan-in workload (edges carry much more
    /// data than Montage).
    pub fn cybershake_like(
        sites: usize,
        synthesis_per_site: usize,
        load_mi: f64,
        data_mb: f64,
    ) -> Workflow {
        assert!(sites >= 1 && synthesis_per_site >= 1);
        let mut b = WorkflowBuilder::new();
        let preprocess = b.add_task(Task::named("preCVM", load_mi / 5.0, 20.0));
        let zip = b.add_task(Task::named("zipPSA", load_mi / 2.0, 30.0));
        for s in 0..sites {
            let extract = b.add_task(Task::named(format!("extractSGT{s}"), load_mi, 40.0));
            b.add_dependency(preprocess, extract, data_mb / 4.0);
            for k in 0..synthesis_per_site {
                let synth = b.add_task(Task::named(
                    format!("seisSynth{s}_{k}"),
                    load_mi * 2.0,
                    30.0,
                ));
                let peak = b.add_task(Task::named(format!("peakVal{s}_{k}"), load_mi / 10.0, 10.0));
                b.add_dependency(extract, synth, data_mb);
                b.add_dependency(synth, peak, data_mb / 10.0);
                b.add_dependency(peak, zip, data_mb / 20.0);
            }
        }
        b.build().unwrap()
    }

    /// An Epigenomics-like genome-sequencing workflow: `lanes` independent deep pipelines
    /// (split → filter → convert → map) whose mapped reads fan in to a merge, followed by a
    /// short indexing/pileup tail.  Epigenomics is the canonical *compute-heavy, deep-chain*
    /// workload with a single global fan-in.
    pub fn epigenomics_like(lanes: usize, load_mi: f64, data_mb: f64) -> Workflow {
        assert!(lanes >= 1);
        let mut b = WorkflowBuilder::new();
        let split = b.add_task(Task::named("fastqSplit", load_mi / 10.0, 20.0));
        let merge = b.add_task(Task::named("mapMerge", load_mi / 2.0, 20.0));
        for l in 0..lanes {
            let filter = b.add_task(Task::named(
                format!("filterContams{l}"),
                load_mi / 2.0,
                15.0,
            ));
            let convert = b.add_task(Task::named(format!("sol2sanger{l}"), load_mi / 4.0, 15.0));
            let tobfq = b.add_task(Task::named(format!("fastq2bfq{l}"), load_mi / 4.0, 15.0));
            let map = b.add_task(Task::named(format!("map{l}"), load_mi * 4.0, 40.0));
            b.add_dependency(split, filter, data_mb);
            b.add_dependency(filter, convert, data_mb / 2.0);
            b.add_dependency(convert, tobfq, data_mb / 2.0);
            b.add_dependency(tobfq, map, data_mb / 2.0);
            b.add_dependency(map, merge, data_mb / 4.0);
        }
        let index = b.add_task(Task::named("maqIndex", load_mi, 20.0));
        let pileup = b.add_task(Task::named("pileup", load_mi * 2.0, 20.0));
        b.add_dependency(merge, index, data_mb / 4.0);
        b.add_dependency(index, pileup, data_mb / 4.0);
        b.build().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generated_task_count_and_parameters_follow_table_i() {
        let gen = WorkflowGenerator::new(WorkflowGeneratorConfig::default());
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            let w = gen.generate(&mut rng);
            let real: Vec<_> = w
                .task_ids()
                .map(|t| w.task(t).clone())
                .filter(|t| !t.is_virtual())
                .collect();
            assert!((2..=30).contains(&real.len()), "task count {}", real.len());
            for t in &real {
                assert!((100.0..=10_000.0).contains(&t.load_mi));
                assert!((10.0..=100.0).contains(&t.image_size_mb));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = WorkflowGenerator::new(WorkflowGeneratorConfig::default());
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        for _ in 0..10 {
            let wa = gen.generate(&mut a);
            let wb = gen.generate(&mut b);
            assert_eq!(wa.task_count(), wb.task_count());
            assert_eq!(wa.edge_count(), wb.edge_count());
            assert_eq!(wa.total_load_mi(), wb.total_load_mi());
        }
    }

    #[test]
    fn batch_generation_produces_requested_count() {
        let gen = WorkflowGenerator::new(WorkflowGeneratorConfig::default());
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(gen.generate_batch(25, &mut rng).len(), 25);
    }

    #[test]
    fn ccr_config_shifts_communication_ratio() {
        let mut rng = SimRng::seed_from_u64(7);
        let compute_heavy = WorkflowGenerator::new(WorkflowGeneratorConfig::with_load_and_data(
            1000.0..=10_000.0,
            10.0..=100.0,
        ));
        let data_heavy = WorkflowGenerator::new(WorkflowGeneratorConfig::with_load_and_data(
            10.0..=100.0,
            1000.0..=10_000.0,
        ));
        let avg_ccr = |g: &WorkflowGenerator, rng: &mut SimRng| {
            (0..30).map(|_| g.generate(rng).ccr(6.2, 5.0)).sum::<f64>() / 30.0
        };
        let low = avg_ccr(&compute_heavy, &mut rng);
        let high = avg_ccr(&data_heavy, &mut rng);
        assert!(
            high > low * 10.0,
            "CCR should rise sharply with data size: {low} vs {high}"
        );
    }

    #[test]
    fn shapes_have_expected_structure() {
        let c = shapes::chain(5, 100.0, 10.0);
        assert_eq!(c.task_count(), 5);
        assert_eq!(c.edge_count(), 4);
        assert_eq!(c.max_fanout(), 1);

        let fj = shapes::fork_join(4, 100.0, 10.0);
        assert_eq!(fj.task_count(), 6);
        assert_eq!(fj.edge_count(), 8);
        assert_eq!(fj.max_fanout(), 4);

        let d = shapes::diamond(10.0, 1000.0, 5.0);
        assert_eq!(d.task_count(), 4);

        let m = shapes::montage_like(4, 500.0, 100.0);
        assert!(m.task_count() >= 10);
        assert!(m.edge_count() >= 14);
        // Montage has a single stage-in entry and a single mosaic exit, so no virtual tasks.
        assert!(!m.task(m.entry()).is_virtual());
        assert!(!m.task(m.exit()).is_virtual());
    }

    #[test]
    fn validate_rejects_bad_ranges_with_typed_errors() {
        let ok = WorkflowGeneratorConfig::default();
        assert!(ok.validate().is_ok());

        let reject = |mutate: fn(&mut WorkflowGeneratorConfig)| {
            let mut cfg = WorkflowGeneratorConfig::default();
            mutate(&mut cfg);
            assert!(
                matches!(cfg.validate(), Err(WorkflowError::InvalidParameter(_))),
                "{cfg:?} should be rejected"
            );
        };
        reject(|c| c.tasks = 0..=5); // zero task count
        #[allow(clippy::reversed_empty_ranges)]
        reject(|c| c.tasks = 10..=2); // reversed task range
        reject(|c| c.fanout = 0..=3);
        #[allow(clippy::reversed_empty_ranges)]
        reject(|c| c.fanout = 5..=1);
        reject(|c| c.load_mi = 0.0..=100.0); // zero load
        #[allow(clippy::reversed_empty_ranges)]
        reject(|c| c.load_mi = 100.0..=10.0); // reversed load range
        reject(|c| c.load_mi = 1.0..=f64::INFINITY);
        reject(|c| c.image_size_mb = -1.0..=5.0);
        #[allow(clippy::reversed_empty_ranges)]
        reject(|c| c.data_mb = 100.0..=10.0); // reversed data range
        reject(|c| c.data_mb = f64::NAN..=10.0);
    }

    #[test]
    fn cybershake_and_epigenomics_shapes_have_expected_structure() {
        let cs = shapes::cybershake_like(2, 2, 1000.0, 500.0);
        // preCVM + zipPSA + 2×(extractSGT + 2×(synth + peak)) = 12, no virtual tasks needed.
        assert_eq!(cs.task_count(), 12);
        assert!(!cs.task(cs.entry()).is_virtual());
        assert!(!cs.task(cs.exit()).is_virtual());
        assert_eq!(cs.task(cs.entry()).name.as_deref(), Some("preCVM"));
        assert_eq!(cs.task(cs.exit()).name.as_deref(), Some("zipPSA"));

        let epi = shapes::epigenomics_like(3, 1000.0, 500.0);
        // split + merge + 3×4 lane tasks + index + pileup = 16.
        assert_eq!(epi.task_count(), 16);
        assert_eq!(epi.task(epi.entry()).name.as_deref(), Some("fastqSplit"));
        assert_eq!(epi.task(epi.exit()).name.as_deref(), Some("pileup"));
        // Deep chains: the critical path is long relative to the width.
        assert!(epi.topological_order().len() == 16);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every generated workflow is a valid DAG with fan-out within the configured range
        /// (virtual entry/exit tasks excepted) and a consistent topological order.
        #[test]
        fn prop_generated_workflows_are_well_formed(seed in 0u64..10_000) {
            let gen = WorkflowGenerator::new(WorkflowGeneratorConfig::default());
            let mut rng = SimRng::seed_from_u64(seed);
            let w = gen.generate(&mut rng);
            // Fan-out bound: real tasks have at most 5 successors... plus possibly edges added
            // to adopt orphan tasks, which can only add one extra successor per orphan.  The
            // paper's bound applies to the generator's intent; we check a slightly relaxed bound.
            for t in w.task_ids() {
                if !w.task(t).is_virtual() {
                    prop_assert!(w.successors(t).len() <= 5 + w.task_count());
                }
                for e in w.successors(t) {
                    prop_assert!((100.0..=10_000.0).contains(&e.data_mb) || e.data_mb == 0.0);
                }
            }
            // Topological order covers every task exactly once.
            let order = w.topological_order();
            prop_assert_eq!(order.len(), w.task_count());
            let unique: std::collections::HashSet<_> = order.iter().collect();
            prop_assert_eq!(unique.len(), w.task_count());
        }
    }
}
